//! Churn suite for the dynamic maintenance layer (`oms-dynamic`): on
//! er/ba/rmat graphs at fixed seeds, the incrementally maintained partition
//! must stay within a committed factor of a cold restream of the same graph
//! state at *every* checkpoint, a snapshotted service must resume
//! byte-identically, and (in release builds, where timing means something)
//! applying deltas must be at least 5× cheaper than restreaming at every
//! checkpoint.

use oms::gen::RmatParams;
use oms::graph::io::{write_stream_file, DiskStream};
use oms::prelude::*;

/// The committed quality bound: incremental cut ≤ `CUT_FACTOR` × the
/// cold-restream cut at every checkpoint.
const CUT_FACTOR: f64 = 2.0;

/// Committed cost bound (release builds): the whole churn trace applies at
/// least this many times faster than restreaming at every checkpoint.
const MIN_SPEEDUP: f64 = 5.0;

fn corpus() -> Vec<(&'static str, CsrGraph, ChurnScheme, JobSpec)> {
    vec![
        (
            "er",
            erdos_renyi_gnm(600, 2400, 11),
            ChurnScheme::Uniform,
            "fennel:8".parse().unwrap(),
        ),
        (
            "ba",
            barabasi_albert(600, 4, 12),
            ChurnScheme::CommunityDrift { communities: 6 },
            "ldg:8".parse().unwrap(),
        ),
        (
            "rmat",
            rmat_graph(9, 2400, RmatParams::GRAPH500, 13),
            ChurnScheme::Burst { window: 0.08 },
            "fennel:8@repair=local".parse().unwrap(),
        ),
    ]
}

fn run_churn(
    graph: &CsrGraph,
    scheme: ChurnScheme,
    job: &JobSpec,
    batches: usize,
    ops: usize,
    seed: u64,
) -> (PartitionState, Vec<CheckpointComparison>) {
    let trace = churn_trace(
        graph,
        &ChurnConfig {
            scheme,
            batches,
            ops_per_batch: ops,
            seed,
            ..ChurnConfig::default()
        },
    );
    let mut state = PartitionState::new(job, &mut InMemoryStream::new(graph)).unwrap();
    // The job's `window=` knob drives the shared checkpoint cadence (the
    // same helper the CLI and `drive_windows` use), so the final batch is
    // always compared even when the trace length is not a multiple of it.
    let cadence = Checkpoints::every(job.window);
    let mut checkpoints = Vec::new();
    let mut window_deltas = 0usize;
    let mut window_seconds = 0.0;
    for (i, batch) in trace.iter().enumerate() {
        let stats = state.apply(batch).unwrap();
        window_deltas += stats.deltas;
        window_seconds += stats.seconds;
        if !cadence.is_checkpoint(i, trace.len()) {
            continue;
        }
        let (restream_cut, restream_imbalance, restream_seconds) =
            state.cold_restream_reference().unwrap();
        checkpoints.push(CheckpointComparison {
            checkpoint: checkpoints.len(),
            deltas: window_deltas,
            incremental_cut: state.edge_cut(),
            incremental_imbalance: state.imbalance(),
            incremental_seconds: window_seconds,
            restream_cut,
            restream_imbalance,
            restream_seconds,
        });
        window_deltas = 0;
        window_seconds = 0.0;
    }
    (state, checkpoints)
}

/// At every checkpoint of every corpus entry, the incrementally maintained
/// cut stays within [`CUT_FACTOR`] of a cold restream of the current graph,
/// and the balance constraint does not silently erode.
#[test]
fn churn_quality_tracks_cold_restream() {
    for (name, graph, scheme, job) in corpus() {
        let (state, checkpoints) = run_churn(&graph, scheme, &job, 6, 60, 0xD1CE);
        assert_eq!(checkpoints.len(), 6, "{name}: one checkpoint per batch");
        for c in &checkpoints {
            assert!(
                c.cut_ratio() <= CUT_FACTOR,
                "{name}: checkpoint {} cut {} exceeds {CUT_FACTOR}x the cold-restream cut {}",
                c.checkpoint,
                c.incremental_cut,
                c.restream_cut
            );
            assert!(
                c.incremental_imbalance <= 0.25,
                "{name}: checkpoint {} imbalance {} out of bounds",
                c.checkpoint,
                c.incremental_imbalance
            );
        }
        assert!(
            state.counters().deltas_applied > 0,
            "{name}: trace applied no deltas"
        );
    }
}

/// Regression: when the trace length is not a multiple of the window
/// cadence, the final partial window still closes with a checkpoint, so no
/// trailing deltas escape the quality comparison. (The old hard-coded
/// cadence compared after every batch and could not express this case at
/// all; the shared [`Checkpoints`] helper pins the corrected rule.)
#[test]
fn partial_final_window_still_checkpoints() {
    let graph = erdos_renyi_gnm(400, 1_600, 31);
    let job: JobSpec = "fennel:8@window=4".parse().unwrap();
    let (state, checkpoints) = run_churn(&graph, ChurnScheme::Uniform, &job, 6, 40, 0xACE5);
    // 6 batches at window 4 close after batches 4 and 6 — the helper and
    // the observed comparisons must agree.
    assert_eq!(checkpoints.len(), Checkpoints::every(4).count(6));
    assert_eq!(checkpoints.len(), 2);
    let compared: usize = checkpoints.iter().map(|c| c.deltas).sum();
    assert_eq!(
        compared as u64,
        state.counters().deltas_applied,
        "every applied delta must fall inside some compared window"
    );
}

/// Exceeding the drift threshold falls back to a full restream, and the
/// fallback resets the drift measure.
#[test]
fn drift_fallback_restreams_and_resets() {
    let graph = erdos_renyi_gnm(600, 2400, 11);
    let job: JobSpec = "fennel:8@drift=0.000001".parse().unwrap();
    let (state, _) = run_churn(&graph, ChurnScheme::Uniform, &job, 3, 40, 0xD1CE);
    assert!(
        state.counters().restreams > 0,
        "a near-zero drift threshold must trigger restream fallbacks"
    );
    assert!(
        state.drift() <= 1.0,
        "drift is reset by the fallback, got {}",
        state.drift()
    );
}

/// A service killed after a snapshot resumes byte-identically: same
/// assignments, same cut, same counters as a service that never stopped.
#[test]
fn snapshot_resume_is_byte_identical_across_restarts() {
    let graph = erdos_renyi_gnm(500, 2000, 21);
    let job: JobSpec = "fennel:6".parse().unwrap();
    let trace = churn_trace(
        &graph,
        &ChurnConfig {
            scheme: ChurnScheme::CommunityDrift { communities: 5 },
            batches: 4,
            ops_per_batch: 50,
            seed: 0xBEEF,
            ..ChurnConfig::default()
        },
    );
    let dir = std::env::temp_dir().join(format!("oms_dynamic_quality_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.oms");
    write_stream_file(&graph, &path).unwrap();

    // The control service never stops.
    let mut control = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
    for batch in &trace {
        control.apply(batch).unwrap();
    }

    // The disk-backed service applies half the trace, snapshots, dies, and
    // a fresh process resumes it.
    let mut disk = DiskStream::open(&path).unwrap();
    let mut service = PartitionState::new(&job, &mut disk).unwrap();
    for batch in &trace[..2] {
        service.apply(batch).unwrap();
    }
    service.save(&disk).unwrap();
    drop(service);
    drop(disk);

    let mut disk = DiskStream::open(&path).unwrap();
    let (mut resumed, cursor) = PartitionState::resume(&job, &mut disk, &trace).unwrap();
    assert_eq!((cursor.batch, cursor.op), (2, 0));
    for batch in &trace[cursor.batch..] {
        resumed.apply(batch).unwrap();
    }

    assert_eq!(resumed.assignments(), control.assignments());
    assert_eq!(resumed.edge_cut(), control.edge_cut());
    assert_eq!(resumed.counters(), control.counters());
    std::fs::remove_dir_all(&dir).ok();
}

/// Release-gated cost bound: applying the whole churn trace is at least
/// [`MIN_SPEEDUP`]× faster than restreaming the graph at every checkpoint.
/// Debug builds skip the assertion — unoptimised timings measure the build
/// profile, not the algorithm.
#[test]
fn incremental_apply_is_at_least_5x_faster_than_restreaming() {
    if cfg!(debug_assertions) {
        return;
    }
    let graph = erdos_renyi_gnm(20_000, 80_000, 31);
    // A huge drift threshold isolates the repair path: no fallbacks, so the
    // timing compares pure delta ingestion against full restreams.
    let job: JobSpec = "fennel:16@drift=1000000000".parse().unwrap();
    let (state, checkpoints) = run_churn(&graph, ChurnScheme::Uniform, &job, 5, 200, 0xFA57);
    assert_eq!(state.counters().restreams, 0);
    let speedup = repair_vs_restream_speedup(&checkpoints);
    assert!(
        speedup >= MIN_SPEEDUP,
        "delta ingestion is only {speedup:.1}x faster than restreaming"
    );
}
