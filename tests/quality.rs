//! Golden quality-regression suite.
//!
//! Every registered algorithm family runs over a small scaled `oms-gen`
//! corpus (one instance per generator family: er / ba / rmat / grid / sbm)
//! at fixed seeds, and the resulting edge-cut and imbalance are checked
//! against committed per-(graph, algorithm) bounds. A quality regression —
//! a scorer change that silently cuts more edges, a balance constraint
//! that drifts — now fails CI exactly like a correctness bug.
//!
//! The bounds were measured on the committed implementation and carry
//! ~10 % headroom on the edge-cut (quality may fluctuate slightly when
//! scoring internals are legitimately reworked) and +0.02 absolute on the
//! imbalance. If an intentional improvement lowers a cut far below its
//! bound, tighten the bound so the gain is locked in: regenerate the table
//! with `cargo test --test quality print_actuals -- --nocapture --ignored`
//! and re-apply the headroom.

use oms::gen::RmatParams;
use oms::prelude::*;

/// The corpus: one instance per generator family, at fixed seeds, so every
/// run sees byte-identical graphs.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", erdos_renyi_gnm(1200, 4800, 42)),
        ("ba", barabasi_albert(1200, 4, 42)),
        ("rmat", rmat_graph(10, 8192, RmatParams::GRAPH500, 42)),
        ("grid", grid_2d(35, 35)),
        ("sbm", planted_partition(1200, 8, 0.1, 0.01, 42)),
    ]
}

/// The job strings under regression control (`k = 8` everywhere, fixed
/// seed). Every algorithm family in the registry is represented: the flat
/// one-pass baselines, OMS/nh-OMS, restreaming, the in-memory baselines
/// and buffered streaming.
fn jobs() -> Vec<&'static str> {
    vec![
        "hashing:8@seed=3",
        "ldg:8@seed=3",
        "fennel:8@seed=3",
        "oms:2:2:2@seed=3",
        "nh-oms:8@seed=3",
        "fennel:8@seed=3,passes=3",
        "multilevel:8@seed=3",
        "rms:2:2:2@seed=3",
        "buffered:8@seed=3,buf=128",
    ]
}

/// Committed bounds: `(graph, job, max edge-cut, max imbalance)`.
const BOUNDS: &[(&str, &str, u64, f64)] = &[
    ("er", "hashing:8@seed=3", 4584, 0.1733),
    ("er", "ldg:8@seed=3", 3230, 0.0267),
    ("er", "fennel:8@seed=3", 3228, 0.0333),
    ("er", "oms:2:2:2@seed=3", 3313, 0.0400),
    ("er", "nh-oms:8@seed=3", 3259, 0.0333),
    ("er", "fennel:8@seed=3,passes=3", 3001, 0.0267),
    ("er", "multilevel:8@seed=3", 2944, 0.0533),
    ("er", "rms:2:2:2@seed=3", 3086, 0.0867),
    ("er", "buffered:8@seed=3,buf=128", 4086, 0.0533),
    ("ba", "hashing:8@seed=3", 4647, 0.1733),
    ("ba", "ldg:8@seed=3", 3380, 0.0533),
    ("ba", "fennel:8@seed=3", 3270, 0.0533),
    ("ba", "oms:2:2:2@seed=3", 3803, 0.0533),
    ("ba", "nh-oms:8@seed=3", 3532, 0.0533),
    ("ba", "fennel:8@seed=3,passes=3", 3130, 0.0533),
    ("ba", "multilevel:8@seed=3", 3007, 0.0533),
    ("ba", "rms:2:2:2@seed=3", 3221, 0.1133),
    ("ba", "buffered:8@seed=3,buf=128", 4063, 0.0533),
    ("rmat", "hashing:8@seed=3", 7793, 0.1372),
    ("rmat", "ldg:8@seed=3", 5763, 0.0512),
    ("rmat", "fennel:8@seed=3", 5082, 0.0512),
    ("rmat", "oms:2:2:2@seed=3", 5334, 0.0512),
    ("rmat", "nh-oms:8@seed=3", 5243, 0.0512),
    ("rmat", "fennel:8@seed=3,passes=3", 5011, 0.0512),
    ("rmat", "multilevel:8@seed=3", 6084, 0.0512),
    ("rmat", "rms:2:2:2@seed=3", 4869, 0.1216),
    ("rmat", "buffered:8@seed=3,buf=128", 6815, 0.0356),
    ("grid", "hashing:8@seed=3", 2277, 0.1563),
    ("grid", "ldg:8@seed=3", 250, 0.0518),
    ("grid", "fennel:8@seed=3", 538, 0.0518),
    ("grid", "oms:2:2:2@seed=3", 541, 0.0518),
    ("grid", "nh-oms:8@seed=3", 588, 0.0518),
    ("grid", "fennel:8@seed=3,passes=3", 492, 0.0518),
    ("grid", "multilevel:8@seed=3", 357, 0.0518),
    ("grid", "rms:2:2:2@seed=3", 350, 0.0845),
    ("grid", "buffered:8@seed=3,buf=128", 568, 0.0518),
    ("sbm", "hashing:8@seed=3", 14825, 0.1733),
    ("sbm", "ldg:8@seed=3", 11827, 0.0333),
    ("sbm", "fennel:8@seed=3", 11953, 0.0533),
    ("sbm", "oms:2:2:2@seed=3", 11816, 0.0533),
    ("sbm", "nh-oms:8@seed=3", 12149, 0.0533),
    ("sbm", "fennel:8@seed=3,passes=3", 11299, 0.0533),
    ("sbm", "multilevel:8@seed=3", 8430, 0.0533),
    ("sbm", "rms:2:2:2@seed=3", 9740, 0.0733),
    ("sbm", "buffered:8@seed=3,buf=128", 12084, 0.0533),
];

fn bound_for(graph: &str, job: &str) -> (u64, f64) {
    BOUNDS
        .iter()
        .find(|&&(g, j, _, _)| g == graph && j == job)
        .map(|&(_, _, cut, imb)| (cut, imb))
        .unwrap_or_else(|| panic!("no committed bound for ({graph}, {job}) — add it to BOUNDS"))
}

#[test]
fn corpus_quality_stays_within_committed_bounds() {
    register_multilevel_algorithms();
    let mut failures = Vec::new();
    for (name, graph) in corpus() {
        for job in jobs() {
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            assert_eq!(
                report.partition.num_nodes(),
                graph.num_nodes(),
                "({name}, {job}): incomplete partition"
            );
            let (max_cut, max_imbalance) = bound_for(name, job);
            if report.edge_cut > max_cut {
                failures.push(format!(
                    "({name}, {job}): edge-cut {} exceeds the committed bound {max_cut}",
                    report.edge_cut
                ));
            }
            if report.imbalance > max_imbalance {
                failures.push(format!(
                    "({name}, {job}): imbalance {:.4} exceeds the committed bound {max_imbalance}",
                    report.imbalance
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "quality regressions detected:\n{}",
        failures.join("\n")
    );
}

/// The multi-pass acceptance criterion: on the corpus, restreaming
/// trajectories are non-increasing in edge-cut, and a convergence threshold
/// makes the early exit fire before the pass budget is exhausted.
#[test]
fn restreaming_improves_monotonically_and_converges_on_the_corpus() {
    register_multilevel_algorithms();
    for (name, graph) in corpus() {
        for job in ["fennel:8@seed=3,passes=4", "ldg:8@seed=3,passes=4"] {
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            assert!(!report.trajectory.is_empty(), "({name}, {job})");
            assert!(
                report
                    .trajectory
                    .windows(2)
                    .all(|w| w[1].edge_cut <= w[0].edge_cut),
                "({name}, {job}): trajectory must be non-increasing: {:?}",
                report.trajectory
            );
            assert_eq!(
                report.trajectory.last().unwrap().edge_cut,
                report.edge_cut,
                "({name}, {job}): the reported cut is the final accepted pass"
            );
        }
        // With an unreachable improvement requirement (100 % per pass) the
        // convergence exit must fire long before the 20-pass budget.
        let report = JobSpec::parse("fennel:8@seed=3,passes=20,conv=1.0")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        assert!(
            report.trajectory.len() <= 2,
            "({name}): conv=1.0 must stop after at most one extra pass, got {:?}",
            report.trajectory
        );
    }
}

// --------------------------------------------------------- weighted corpus

/// The weighted corpus: the er/ba/rmat instances of [`corpus`] reweighted
/// with the `full` scheme (power-law node weights + degree-proportional
/// edge weights) at a fixed seed, so the *weighted* quality path — weighted
/// scoring, weight-capacity `L_max`, weighted cut and imbalance — is under
/// the same golden-bound regression control as the unweighted one.
fn weighted_corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "er-w",
            WeightScheme::Full.apply(&erdos_renyi_gnm(1200, 4800, 42), 42),
        ),
        (
            "ba-w",
            WeightScheme::Full.apply(&barabasi_albert(1200, 4, 42), 42),
        ),
        (
            "rmat-w",
            WeightScheme::Full.apply(&rmat_graph(10, 8192, RmatParams::GRAPH500, 42), 42),
        ),
    ]
}

/// The weighted job strings under regression control.
fn weighted_jobs() -> Vec<&'static str> {
    vec![
        "ldg:8@seed=3",
        "fennel:8@seed=3",
        "oms:2:2:2@seed=3",
        "nh-oms:8@seed=3",
        "fennel:8@seed=3,passes=3",
        "multilevel:8@seed=3",
        "buffered:8@seed=3,buf=128",
    ]
}

/// Committed weighted bounds: `(graph, job, max weighted cut, max
/// imbalance)`. Regenerate with
/// `cargo test --release --test quality print_weighted_actuals -- --nocapture --ignored`
/// and re-apply ~10 % cut headroom / +0.02 imbalance headroom.
const WEIGHTED_BOUNDS: &[(&str, &str, u64, f64)] = &[
    ("er-w", "ldg:8@seed=3", 31241, 0.0373),
    ("er-w", "fennel:8@seed=3", 31746, 0.0518),
    ("er-w", "oms:2:2:2@seed=3", 33721, 0.0518),
    ("er-w", "nh-oms:8@seed=3", 32998, 0.0518),
    ("er-w", "fennel:8@seed=3,passes=3", 28793, 0.0518),
    ("er-w", "multilevel:8@seed=3", 29278, 0.0518),
    ("er-w", "buffered:8@seed=3,buf=128", 40681, 0.0518),
    ("ba-w", "ldg:8@seed=3", 68168, 0.0518),
    ("ba-w", "fennel:8@seed=3", 68470, 0.0518),
    ("ba-w", "oms:2:2:2@seed=3", 73440, 0.0518),
    ("ba-w", "nh-oms:8@seed=3", 70887, 0.0518),
    ("ba-w", "fennel:8@seed=3,passes=3", 67714, 0.0518),
    ("ba-w", "multilevel:8@seed=3", 61777, 0.0518),
    ("ba-w", "buffered:8@seed=3,buf=128", 79626, 0.0518),
    ("rmat-w", "ldg:8@seed=3", 306516, 0.0507),
    ("rmat-w", "fennel:8@seed=3", 303882, 0.0507),
    ("rmat-w", "oms:2:2:2@seed=3", 316811, 0.0507),
    ("rmat-w", "nh-oms:8@seed=3", 310940, 0.0507),
    ("rmat-w", "fennel:8@seed=3,passes=3", 300839, 0.0507),
    ("rmat-w", "multilevel:8@seed=3", 319459, 0.0507),
    ("rmat-w", "buffered:8@seed=3,buf=128", 345474, 0.0608),
];

fn weighted_bound_for(graph: &str, job: &str) -> (u64, f64) {
    WEIGHTED_BOUNDS
        .iter()
        .find(|&&(g, j, _, _)| g == graph && j == job)
        .map(|&(_, _, cut, imb)| (cut, imb))
        .unwrap_or_else(|| {
            panic!("no committed weighted bound for ({graph}, {job}) — add it to WEIGHTED_BOUNDS")
        })
}

#[test]
fn weighted_corpus_quality_stays_within_committed_bounds() {
    register_multilevel_algorithms();
    let mut failures = Vec::new();
    for (name, graph) in weighted_corpus() {
        assert!(!graph.is_unweighted(), "{name} must be weighted");
        for job in weighted_jobs() {
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            assert_eq!(
                report.partition.num_nodes(),
                graph.num_nodes(),
                "({name}, {job}): incomplete partition"
            );
            assert_eq!(
                report.total_node_weight(),
                graph.total_node_weight(),
                "({name}, {job}): block weights must sum to c(V)"
            );
            let (max_cut, max_imbalance) = weighted_bound_for(name, job);
            if report.edge_cut > max_cut {
                failures.push(format!(
                    "({name}, {job}): weighted cut {} exceeds the committed bound {max_cut}",
                    report.edge_cut
                ));
            }
            if report.imbalance > max_imbalance {
                failures.push(format!(
                    "({name}, {job}): weighted imbalance {:.4} exceeds the committed bound {max_imbalance}",
                    report.imbalance
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "weighted quality regressions detected:\n{}",
        failures.join("\n")
    );
}

/// Weighted restreaming trajectories are non-increasing in the *weighted*
/// cut and end on the reported value — the multi-pass engine's guarantees
/// carry over verbatim to weighted graphs.
#[test]
fn weighted_restreaming_improves_monotonically() {
    register_multilevel_algorithms();
    for (name, graph) in weighted_corpus() {
        for job in ["fennel:8@seed=3,passes=4", "ldg:8@seed=3,passes=4"] {
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            assert!(!report.trajectory.is_empty(), "({name}, {job})");
            assert!(
                report
                    .trajectory
                    .windows(2)
                    .all(|w| w[1].edge_cut <= w[0].edge_cut),
                "({name}, {job}): weighted trajectory must be non-increasing: {:?}",
                report.trajectory
            );
            assert_eq!(
                report.trajectory.last().unwrap().edge_cut,
                report.edge_cut,
                "({name}, {job}): the reported weighted cut is the final accepted pass"
            );
        }
    }
}

/// Regenerates the `BOUNDS` table (run manually, see the module docs).
#[test]
#[ignore = "manual helper for regenerating the BOUNDS table"]
fn print_actuals() {
    register_multilevel_algorithms();
    for (name, graph) in corpus() {
        for job in jobs() {
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            println!(
                "(\"{name}\", \"{job}\", {}, {:.4}),",
                report.edge_cut, report.imbalance
            );
        }
    }
}

/// Regenerates the `WEIGHTED_BOUNDS` table (run manually).
#[test]
#[ignore = "manual helper for regenerating the WEIGHTED_BOUNDS table"]
fn print_weighted_actuals() {
    register_multilevel_algorithms();
    for (name, graph) in weighted_corpus() {
        for job in weighted_jobs() {
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            println!(
                "(\"{name}\", \"{job}\", {}, {:.4}),",
                report.edge_cut, report.imbalance
            );
        }
    }
}
