//! Acceptance suite for the observability layer (`oms-obs`).
//!
//! Three properties are gated here:
//!
//! 1. **Trace determinism.** The recorded event trace is a pure function
//!    of `(stream, seed)`: the same run produces a byte-identical
//!    JSON-lines trace and an equal event-log hash no matter whether the
//!    stream comes from memory, chunked batches or disk — for the flat
//!    engine, the sharded engine (S ∈ {1, 4}), dynamic maintenance and
//!    traffic replay. Wall-clock never enters the trace, so this holds on
//!    any machine.
//! 2. **Bounded recording.** The flight recorder keeps the *newest*
//!    events when it overflows, counts the evicted ones, and the log hash
//!    still covers every event ever recorded.
//! 3. **Round-tripping.** A trace written by `--trace` parses back,
//!    recomputes to the footer's hash (`oms trace`'s check), and its
//!    counters reconcile with the `PartitionReport` of the run.
//!
//! Observability must also be *inert*: recording a run must not change
//! its result, and the disabled (default) observer must leave the engines
//! untouched — the throughput bench's committed baseline gates the
//! latter's cost in CI.

use oms::graph::io::{write_stream_file, DiskStream};
use oms::graph::ChunkedStream;
use oms::obs::{self, CounterId, Event};
use oms::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_stream_file(graph: &CsrGraph, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oms-obs-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_stream_file(graph, &path).unwrap();
    path
}

/// Runs `f` under a fresh recording observer and returns its result plus
/// the JSON-lines trace and the event-log hash.
fn record<T>(f: impl FnOnce() -> T) -> (T, String, u64) {
    let (core, guard) = obs::recording(obs::DEFAULT_CAPACITY);
    let out = f();
    drop(guard);
    let hash = core.log_hash();
    (out, obs::trace_jsonl(&core), hash)
}

// ------------------------------------------------------------ determinism

#[test]
fn flat_trace_is_identical_across_sources() {
    let graph = planted_partition(600, 8, 0.1, 0.005, 11);
    let path = temp_stream_file(&graph, "flat-sources.oms");
    for spec in ["fennel:8@seed=3,passes=3", "ldg:8@seed=5,passes=2"] {
        let job = JobSpec::parse(spec).unwrap();
        let run = |stream: &mut dyn NodeStream| {
            let partitioner = job.build().unwrap();
            record(|| partitioner.run(stream).unwrap())
        };
        let (_, memory, memory_hash) = run(&mut InMemoryStream::new(&graph));
        let (_, chunked, chunked_hash) =
            run(&mut ChunkedStream::new(&graph, NodeOrdering::Natural));
        let (_, disk, disk_hash) = run(&mut DiskStream::open(&path).unwrap());
        assert_eq!(memory, chunked, "{spec}: chunked trace differs");
        assert_eq!(memory, disk, "{spec}: disk trace differs");
        assert_eq!(memory_hash, chunked_hash, "{spec}: chunked hash differs");
        assert_eq!(memory_hash, disk_hash, "{spec}: disk hash differs");
        assert!(
            memory.contains("\"event\":\"pass_end\""),
            "{spec}: no passes traced"
        );
    }
}

#[test]
fn sharded_trace_is_identical_across_sources_and_repeats() {
    let graph = planted_partition(600, 8, 0.1, 0.005, 11);
    let path = temp_stream_file(&graph, "shard-sources.oms");
    let job = JobSpec::parse("fennel:8@seed=3,passes=2").unwrap();
    for shards in [1usize, 4] {
        let run = |stream: &mut dyn NodeStream| {
            let sharded = ShardedFlat::new(8, job.one_pass_config(), FlatObjective::Fennel, shards)
                .passes(job.passes)
                .round_nodes(64);
            record(|| sharded.run(stream).unwrap())
        };
        let (_, memory, memory_hash) = run(&mut InMemoryStream::new(&graph));
        let (_, chunked, _) = run(&mut ChunkedStream::new(&graph, NodeOrdering::Natural));
        let (_, disk, _) = run(&mut DiskStream::open(&path).unwrap());
        let (_, repeat, repeat_hash) = run(&mut InMemoryStream::new(&graph));
        assert_eq!(memory, chunked, "S={shards}: chunked trace differs");
        assert_eq!(memory, disk, "S={shards}: disk trace differs");
        assert_eq!(memory, repeat, "S={shards}: rerun trace differs");
        assert_eq!(memory_hash, repeat_hash, "S={shards}: rerun hash differs");
        assert!(
            memory.contains("\"event\":\"shard_round\""),
            "S={shards}: no rounds traced"
        );
        assert!(
            memory.contains("\"event\":\"shard_summary\""),
            "S={shards}: no summary traced"
        );
        if shards > 1 {
            assert!(
                memory.contains("\"event\":\"exchange_phase\""),
                "S={shards}: no exchange phases traced"
            );
        }
    }
}

#[test]
fn dynamic_trace_is_identical_across_sources() {
    let graph = planted_partition(500, 8, 0.1, 0.005, 11);
    let path = temp_stream_file(&graph, "dynamic-sources.oms");
    let job = JobSpec::parse("fennel:8@seed=3").unwrap().drift(0.15);
    let trace = churn_trace(
        &graph,
        &ChurnConfig {
            scheme: ChurnScheme::Uniform,
            batches: 5,
            ops_per_batch: 80,
            seed: 7,
            ..ChurnConfig::default()
        },
    );
    let run = |stream: &mut dyn NodeStream| {
        record(|| {
            let mut state = PartitionState::new(&job, stream).unwrap();
            for batch in &trace {
                state.apply(batch).unwrap();
            }
            state.edge_cut()
        })
    };
    let (memory_cut, memory, memory_hash) = run(&mut InMemoryStream::new(&graph));
    let (disk_cut, disk, disk_hash) = run(&mut DiskStream::open(&path).unwrap());
    assert_eq!(
        memory_cut, disk_cut,
        "maintained cut differs across sources"
    );
    assert_eq!(memory, disk, "dynamic trace differs across sources");
    assert_eq!(memory_hash, disk_hash);
    assert!(memory.contains("\"event\":\"delta_batch_applied\""));
}

#[test]
fn replay_trace_is_identical_across_sources() {
    let graph = planted_partition(500, 8, 0.1, 0.005, 11);
    let path = temp_stream_file(&graph, "replay-sources.oms");
    let partitioner = JobSpec::parse("fennel:8@seed=3").unwrap().build().unwrap();
    let assignments = partitioner
        .partition(&mut InMemoryStream::new(&graph))
        .unwrap()
        .assignments()
        .to_vec();
    let config = ReplayConfig {
        requests: 400,
        seed: 9,
        ..ReplayConfig::default()
    };
    let run = |stream: &mut dyn NodeStream| {
        record(|| {
            replay_stream(stream, &assignments, &config)
                .unwrap()
                .request_log_hash
        })
    };
    let (memory_req_hash, memory, memory_hash) = run(&mut InMemoryStream::new(&graph));
    let (chunked_req_hash, chunked, _) =
        run(&mut ChunkedStream::new(&graph, NodeOrdering::Natural));
    let (disk_req_hash, disk, disk_hash) = run(&mut DiskStream::open(&path).unwrap());
    assert_eq!(memory, chunked, "replay trace differs from chunked source");
    assert_eq!(memory, disk, "replay trace differs from disk source");
    assert_eq!(memory_hash, disk_hash);
    assert_eq!(memory_req_hash, chunked_req_hash);
    assert_eq!(memory_req_hash, disk_req_hash);
    assert!(memory.contains("\"event\":\"replay_summary\""));
}

// ------------------------------------------------------------ bounded ring

#[test]
fn ring_overflow_keeps_newest_events_and_counts_dropped() {
    let (core, guard) = obs::recording(8);
    let partitioner = JobSpec::parse("fennel:8@seed=3,passes=6")
        .unwrap()
        .build()
        .unwrap();
    let graph = planted_partition(400, 8, 0.1, 0.005, 11);
    partitioner.run(&mut InMemoryStream::new(&graph)).unwrap();
    drop(guard);

    assert!(
        core.recorded() > 8,
        "run must emit more events than the ring holds"
    );
    assert_eq!(core.dropped(), core.recorded() - 8);
    assert_eq!(
        core.metrics().counter(CounterId::EventsDropped),
        core.dropped()
    );
    let events = core.events();
    assert_eq!(events.len(), 8);
    // Newest survive: the retained sequence numbers are the final ones.
    let first_kept = core.recorded() - 8;
    for (i, (seq, _)) in events.iter().enumerate() {
        assert_eq!(*seq, first_kept + i as u64);
    }
    // The hash covers evicted events too, so a truncated trace cannot
    // silently pose as complete: the summary skips verification.
    let summary = obs::summarize(&obs::trace_jsonl(&core)).unwrap();
    assert_eq!(summary.hash_verified(), None);
    assert_ne!(summary.recomputed_hash, core.log_hash());
}

// ------------------------------------------------------------ round-trip

#[test]
fn recorded_trace_round_trips_through_the_summary() {
    let graph = planted_partition(600, 8, 0.1, 0.005, 11);
    let partitioner = JobSpec::parse("fennel:8@seed=3,passes=3")
        .unwrap()
        .build()
        .unwrap();
    let (report, text, _) = record(|| partitioner.run(&mut InMemoryStream::new(&graph)).unwrap());
    let summary = obs::summarize(&text).expect("recorded trace parses back");
    assert_eq!(summary.hash_verified(), Some(true), "hash must recompute");
    assert_eq!(summary.retained as u64, summary.footer.unwrap().events);
    assert!(summary.nodes_scored >= graph.num_nodes() as u64);
    assert_eq!(
        summary.final_edge_cut,
        Some(report.edge_cut),
        "summary's final cut must match the report"
    );
}

#[test]
fn counters_reconcile_with_the_partition_report() {
    let graph = planted_partition(600, 8, 0.1, 0.005, 11);
    let (core, guard) = obs::recording(obs::DEFAULT_CAPACITY);
    let partitioner = JobSpec::parse("fennel:8@seed=3").unwrap().build().unwrap();
    let report = partitioner.run(&mut InMemoryStream::new(&graph)).unwrap();
    drop(guard);

    // Single pass, no reverts: every streamed node is scored exactly once.
    let n = graph.num_nodes() as u64;
    assert_eq!(report.partition.num_nodes() as u64, n);
    assert_eq!(core.metrics().counter(CounterId::NodesScored), n);
    let pass_nodes: u64 = core
        .events()
        .iter()
        .map(|&(_, e)| match e {
            Event::PassEnd { nodes, .. } => nodes,
            _ => 0,
        })
        .sum();
    assert_eq!(pass_nodes, n, "pass_end payloads must cover the stream");
    assert_eq!(core.metrics().counter(CounterId::RestreamPasses), 1);
    assert!(core.metrics().counter(CounterId::DegLe2FastPath) <= n);
}

// ------------------------------------------------------------ inertness

#[test]
fn recording_does_not_perturb_the_partition() {
    let graph = planted_partition(600, 8, 0.1, 0.005, 11);
    let run = || {
        let partitioner = JobSpec::parse("fennel:8@seed=3,passes=3")
            .unwrap()
            .build()
            .unwrap();
        partitioner
            .partition(&mut InMemoryStream::new(&graph))
            .unwrap()
            .assignments()
            .to_vec()
    };
    let bare = run();
    let (recorded, _, _) = record(run);
    let noop = {
        let _guard = obs::install(Arc::new(obs::NoopObserver));
        run()
    };
    assert_eq!(bare, recorded, "recording changed the partition");
    assert_eq!(bare, noop, "the no-op observer changed the partition");
    assert!(
        !obs::is_enabled(),
        "guards must restore the disabled default"
    );
}

// ------------------------------------------------------------ histograms

#[test]
fn histogram_buckets_are_monotone_and_cover_every_value() {
    let mut previous_bound = None;
    for b in 0..obs::HIST_BUCKETS {
        let bound = obs::bucket_bound(b);
        if let Some(prev) = previous_bound {
            assert!(bound > prev, "bucket bounds must strictly increase");
        }
        previous_bound = Some(bound);
    }
    let mut previous_index = 0;
    for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
        let index = obs::bucket_index(v);
        assert!(
            index >= previous_index,
            "bucket index must be monotone in v"
        );
        assert!(
            v <= obs::bucket_bound(index),
            "value must fall inside its bucket"
        );
        if index > 0 {
            assert!(
                v > obs::bucket_bound(index - 1),
                "value must exceed the bucket below"
            );
        }
        previous_index = index;
    }
}

#[test]
fn histogram_merge_is_commutative_and_associative() {
    // A tiny deterministic generator; `rand` stays out of the obs layer.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let sample = |next: &mut dyn FnMut() -> u64, n: usize| {
        let h = obs::Histogram::default();
        for _ in 0..n {
            h.record(next() >> (next() % 60));
        }
        h.snapshot()
    };
    let a = sample(&mut next, 257);
    let b = sample(&mut next, 131);
    let c = sample(&mut next, 89);

    let mut ab = a;
    ab.merge(&b);
    let mut ba = b;
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must be commutative");

    let mut ab_c = ab;
    ab_c.merge(&c);
    let mut bc = b;
    bc.merge(&c);
    let mut a_bc = a;
    a_bc.merge(&bc);
    assert_eq!(ab_c, a_bc, "merge must be associative");
    assert_eq!(ab_c.count, 477);
    assert!(ab_c.quantile_bound(1.0) >= ab_c.quantile_bound(0.5));
}
