//! Golden quality-regression and equivalence suite for the vertex-cut
//! (edge-partitioning) pipeline.
//!
//! Mirrors `tests/quality.rs` for the replication-factor objective: every
//! registered edge algorithm runs over the er/ba/rmat corpus at fixed
//! seeds, and the resulting replication factor and edge-load imbalance are
//! checked against committed per-(graph, job) bounds. On top of the golden
//! bounds the suite pins the acceptance criteria of the subsystem:
//!
//! * `e-greedy` beats `e-hash` on replication factor on every ba/rmat
//!   golden job (the hub-dominated corpora vertex-cut exists for);
//! * multi-pass trajectories are non-increasing in the total replica count
//!   and end on the returned assignment;
//! * all three edge partitioners produce **byte-identical** edge
//!   assignments across memory / chunked / disk (v1 and v2, synchronous
//!   and double-buffered) sources at 1 and 3 passes, on unit-weight and
//!   weighted graphs alike;
//! * the incrementally maintained replication summary agrees with the
//!   independent recount in `oms-metrics::vertex_cut`.
//!
//! The bounds were measured on the committed implementation and carry ~5 %
//! headroom on the replication factor and +0.02 absolute on the imbalance.
//! Regenerate with
//! `cargo test --test edgepart_quality print_actuals -- --nocapture --ignored`.

use oms::gen::RmatParams;
use oms::graph::io::{write_stream_file, write_stream_file_v1, DiskStream};
use oms::graph::ChunkedStream;
use oms::metrics::vertex_cut::vertex_cut_metrics;
use oms::prelude::*;
use std::path::PathBuf;

/// The corpus: the er/ba/rmat instances of the node-side golden suite, at
/// the same fixed seeds. The rmat instance carries multiplicity edge
/// weights (the generator folds parallel edges into weights), so the
/// weighted scoring path is under golden control too.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", erdos_renyi_gnm(1200, 4800, 42)),
        ("ba", barabasi_albert(1200, 4, 42)),
        ("rmat", rmat_graph(10, 8192, RmatParams::GRAPH500, 42)),
    ]
}

/// The job strings under regression control (`k = 8`, fixed seed): every
/// registered edge algorithm, the λ knob at both ends, and multi-pass.
fn jobs() -> Vec<&'static str> {
    vec![
        "e-hash:8@seed=3",
        "e-dbh:8@seed=3",
        "e-greedy:8@seed=3",
        "e-greedy:8@seed=3,lambda=5",
        "e-greedy:8@seed=3,passes=3",
        "e-dbh:8@seed=3,passes=3",
    ]
}

/// Committed bounds: `(graph, job, max replication factor, max edge-load
/// imbalance)`.
const BOUNDS: &[(&str, &str, f64, f64)] = &[
    ("er", "e-hash:8@seed=3", 5.29, 0.1083),
    ("er", "e-dbh:8@seed=3", 3.72, 0.1717),
    ("er", "e-greedy:8@seed=3", 3.08, 0.0250),
    ("er", "e-greedy:8@seed=3,lambda=5", 4.22, 0.0200),
    ("er", "e-greedy:8@seed=3,passes=3", 2.65, 0.0200),
    ("er", "e-dbh:8@seed=3,passes=3", 3.57, 0.2317),
    ("ba", "e-hash:8@seed=3", 4.78, 0.0722),
    ("ba", "e-dbh:8@seed=3", 2.95, 0.1757),
    ("ba", "e-greedy:8@seed=3", 2.99, 0.0505),
    ("ba", "e-greedy:8@seed=3,lambda=5", 3.60, 0.0204),
    ("ba", "e-greedy:8@seed=3,passes=3", 2.56, 0.0505),
    ("ba", "e-dbh:8@seed=3,passes=3", 2.91, 0.1891),
    // rmat carries multiplicity edge weights: at λ = 1 the count capacity
    // is tight but the *weight* imbalance runs free (hub edges are heavy);
    // λ = 5 buys weight balance for ~0.45 RF.
    ("rmat", "e-hash:8@seed=3", 4.67, 0.1161),
    ("rmat", "e-dbh:8@seed=3", 2.73, 0.2184),
    ("rmat", "e-greedy:8@seed=3", 3.06, 0.7844),
    ("rmat", "e-greedy:8@seed=3,lambda=5", 3.53, 0.0216),
    ("rmat", "e-greedy:8@seed=3,passes=3", 2.77, 0.1520),
    ("rmat", "e-dbh:8@seed=3,passes=3", 2.69, 0.1908),
];

fn bound_for(graph: &str, job: &str) -> (f64, f64) {
    BOUNDS
        .iter()
        .find(|&&(g, j, _, _)| g == graph && j == job)
        .map(|&(_, _, rf, imb)| (rf, imb))
        .unwrap_or_else(|| panic!("no committed bound for ({graph}, {job}) — add it to BOUNDS"))
}

fn report_for(job: &str, graph: &CsrGraph) -> EdgePartitionReport {
    let spec = JobSpec::parse(job).unwrap();
    build_edge_partitioner(&spec)
        .unwrap()
        .run(&mut EdgesOf(InMemoryStream::new(graph)))
        .unwrap_or_else(|e| panic!("{job}: {e}"))
}

#[test]
fn corpus_replication_stays_within_committed_bounds() {
    let mut failures = Vec::new();
    for (name, graph) in corpus() {
        for job in jobs() {
            let report = report_for(job, &graph);
            assert_eq!(
                report.partition.num_edges(),
                graph.num_edges(),
                "({name}, {job}): incomplete edge partition"
            );
            assert!(report.partition.validate(), "({name}, {job})");
            assert_eq!(
                report.partition.total_load(),
                graph.total_edge_weight(),
                "({name}, {job}): block loads must sum to ω(E)"
            );
            let (max_rf, max_imbalance) = bound_for(name, job);
            if report.replication_factor > max_rf {
                failures.push(format!(
                    "({name}, {job}): replication factor {:.4} exceeds the committed bound {max_rf}",
                    report.replication_factor
                ));
            }
            if report.imbalance > max_imbalance {
                failures.push(format!(
                    "({name}, {job}): imbalance {:.4} exceeds the committed bound {max_imbalance}",
                    report.imbalance
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "vertex-cut quality regressions detected:\n{}",
        failures.join("\n")
    );
}

/// The headline acceptance criterion: on the hub-dominated corpora (ba,
/// rmat) the HDRF-style greedy must beat oblivious edge hashing on the
/// replication factor, for every golden job configuration.
#[test]
fn e_greedy_beats_e_hash_on_every_ba_rmat_golden_job() {
    for (name, graph) in corpus() {
        if name == "er" {
            continue; // the criterion targets the power-law corpora
        }
        for k in [8u32, 32] {
            for passes in [1usize, 3] {
                let hash = report_for(&format!("e-hash:{k}@seed=3,passes={passes}"), &graph);
                let greedy = report_for(&format!("e-greedy:{k}@seed=3,passes={passes}"), &graph);
                assert!(
                    greedy.replication_factor < hash.replication_factor,
                    "({name}, k={k}, passes={passes}): e-greedy RF {:.4} must beat e-hash RF {:.4}",
                    greedy.replication_factor,
                    hash.replication_factor
                );
            }
        }
    }
}

/// Multi-pass trajectories are non-increasing in the exact quality scalar
/// (total replicas), end on the returned assignment, and the e-hash fixed
/// point exits after at most one extra pass.
#[test]
fn multi_pass_trajectories_are_non_increasing_on_the_corpus() {
    for (name, graph) in corpus() {
        for job in [
            "e-greedy:8@seed=3,passes=4",
            "e-dbh:8@seed=3,passes=4",
            "e-greedy:8@seed=3,passes=6,conv=0.01",
        ] {
            let report = report_for(job, &graph);
            assert!(!report.trajectory.is_empty(), "({name}, {job})");
            assert!(
                report
                    .trajectory
                    .windows(2)
                    .all(|w| w[1].total_replicas <= w[0].total_replicas),
                "({name}, {job}): trajectory must be non-increasing: {:?}",
                report.trajectory
            );
            assert_eq!(
                report.trajectory.last().unwrap().total_replicas,
                report.partition.total_replicas(),
                "({name}, {job}): the trajectory ends on the returned assignment"
            );
        }
        let hash = report_for("e-hash:8@seed=3,passes=9", &graph);
        assert!(
            hash.trajectory.len() <= 2,
            "({name}): e-hash must reach its fixed point after one extra pass: {:?}",
            hash.trajectory
        );
    }
}

/// The sink's incrementally maintained replication summary must agree with
/// the independent cold recount in `oms-metrics::vertex_cut` — two
/// implementations, one truth.
#[test]
fn incremental_summary_agrees_with_the_metrics_crate() {
    for (name, graph) in corpus() {
        for job in ["e-hash:8@seed=3", "e-greedy:8@seed=3,passes=3"] {
            let report = report_for(job, &graph);
            let metrics = vertex_cut_metrics(&graph, report.partition.assignments(), 8);
            assert_eq!(
                metrics.total_replicas, report.total_replicas,
                "({name}, {job})"
            );
            assert_eq!(metrics.max_replicas, report.max_replicas, "({name}, {job})");
            assert!(
                (metrics.replication_factor - report.replication_factor).abs() < 1e-12,
                "({name}, {job})"
            );
            assert!(
                (metrics.imbalance - report.imbalance).abs() < 1e-12,
                "({name}, {job})"
            );
            assert_eq!(
                metrics.block_loads,
                report.partition.block_loads(),
                "({name}, {job})"
            );
        }
    }
}

// ------------------------------------------------------ source equivalence

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("oms-edgepart-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn edge_assignments(job: &str, stream: &mut dyn EdgeStream) -> (Vec<BlockId>, Vec<u64>) {
    let spec = JobSpec::parse(job).unwrap();
    let (partition, trajectory) = build_edge_partitioner(&spec)
        .unwrap()
        .partition_edges_tracked(stream)
        .unwrap_or_else(|e| panic!("{job}: {e}"));
    let replicas: Vec<u64> = trajectory.iter().map(|s| s.total_replicas).collect();
    (partition.assignments().to_vec(), replicas)
}

/// Every edge algorithm × passes ∈ {1, 3} must produce byte-identical edge
/// assignments (and per-pass replica trajectories) no matter which source
/// streams the graph — in-memory, chunked, disk v1, disk v2, synchronous
/// or double-buffered ingest — on unit-weight and weighted graphs alike.
#[test]
fn edge_assignments_are_byte_identical_across_sources_and_passes() {
    let unit = planted_partition(600, 8, 0.1, 0.005, 23);
    assert!(unit.is_unweighted());
    let weighted = WeightScheme::Full.apply(&unit, 7);
    assert!(!weighted.is_unweighted());

    let dir = temp_dir();
    for (label, graph) in [("unit", &unit), ("weighted", &weighted)] {
        let v1_path = dir.join(format!("{label}-v1.oms"));
        let v2_path = dir.join(format!("{label}-v2.oms"));
        write_stream_file_v1(graph, &v1_path).unwrap();
        write_stream_file(graph, &v2_path).unwrap();

        for algo in ["e-hash", "e-dbh", "e-greedy"] {
            for passes in [1usize, 3] {
                let job = format!("{algo}:8@seed=3,passes={passes}");
                let reference = edge_assignments(&job, &mut EdgesOf(InMemoryStream::new(graph)));
                assert_eq!(reference.0.len(), graph.num_edges(), "{label}/{job}");

                let chunked = edge_assignments(
                    &job,
                    &mut EdgesOf(ChunkedStream::new(graph, NodeOrdering::Natural)),
                );
                assert_eq!(reference, chunked, "{label}/{job}: chunked stream differs");

                for (name, path) in [("disk v1", &v1_path), ("disk v2", &v2_path)] {
                    for double_buffered in [false, true] {
                        let disk = DiskStream::open(path)
                            .unwrap()
                            .double_buffered(double_buffered);
                        let from_disk = edge_assignments(&job, &mut EdgesOf(disk));
                        assert_eq!(
                            reference, from_disk,
                            "{label}/{job}: {name} (double_buffered = {double_buffered}) differs"
                        );
                    }
                }
            }
        }
        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }
}

/// Multi-pass edge partitioning over a corrupt (truncated) disk file dies
/// with the typed truncation error — the edge adapter inherits the disk
/// stream's re-open-and-revalidate discipline.
#[test]
fn multi_pass_over_a_corrupt_disk_file_fails_with_the_typed_error() {
    let graph = planted_partition(200, 4, 0.1, 0.01, 31);
    let dir = temp_dir();
    let path = dir.join("corrupt.oms");
    write_stream_file(&graph, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();

    let spec = JobSpec::parse("e-greedy:4@seed=3,passes=3").unwrap();
    let err = build_edge_partitioner(&spec)
        .unwrap()
        .partition_edges(&mut EdgesOf(DiskStream::open(&path).unwrap()))
        .map(|p| p.num_edges())
        .unwrap_err();
    assert!(
        err.to_string().contains("truncated"),
        "expected the typed truncation error, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// Regenerates the `BOUNDS` table (run manually, see the module docs).
#[test]
#[ignore = "manual helper for regenerating the BOUNDS table"]
fn print_actuals() {
    for (name, graph) in corpus() {
        for job in jobs() {
            let report = report_for(job, &graph);
            println!(
                "(\"{name}\", \"{job}\", {:.4}, {:.4}),",
                report.replication_factor, report.imbalance
            );
        }
    }
}
