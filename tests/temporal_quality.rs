//! Temporal workload suite: quality **over time** under realistic churn.
//!
//! The temporal generators (`oms-gen`'s preferential attachment, community
//! drift and burst arrivals) produce timestamped delta traces; the dynamic
//! maintenance layer ingests them through the shared sliding-window
//! cadence (`oms-dynamic`'s [`Checkpoints`]). At every window close the
//! suite pins:
//!
//! * **cut tracking** — the incrementally maintained cut stays within a
//!   committed factor of a cold restream of the same graph state, so
//!   quality cannot silently erode as the graph evolves;
//! * **curve agreement** — the one-call [`PartitionState::drive_windows`]
//!   curve matches a hand-rolled apply loop field for field;
//! * **monotone counters** — cumulative drift counters only ever grow, and
//!   every traced operation is accounted for;
//! * **served quality over time** (release builds) — replaying a Zipf
//!   workload against the maintained partition at every checkpoint keeps
//!   p99 latency under a committed ceiling for the whole trace.

use oms::gen::RmatParams;
use oms::prelude::*;

/// Incremental cut ≤ `CUT_FACTOR` × the cold-restream cut at every window.
const CUT_FACTOR: f64 = 2.0;

/// Release-gated ceiling on replay p99 latency at every checkpoint,
/// per temporal scheme (measured max plus ~15 % headroom).
const P99_CEILINGS: &[(&str, u64)] = &[("pa", 140), ("drift", 140), ("burst", 140)];

fn corpus() -> Vec<(&'static str, CsrGraph, TemporalScheme)> {
    vec![
        (
            "pa",
            barabasi_albert(600, 4, 12),
            TemporalScheme::PreferentialAttachment { edges_per_node: 3 },
        ),
        (
            "drift",
            erdos_renyi_gnm(600, 2_400, 11),
            TemporalScheme::CommunityDrift { communities: 6 },
        ),
        (
            "burst",
            rmat_graph(9, 2_400, RmatParams::GRAPH500, 13),
            TemporalScheme::BurstArrivals { period: 4 },
        ),
    ]
}

fn trace_for(graph: &CsrGraph, scheme: TemporalScheme) -> Vec<oms::graph::DeltaBatch> {
    temporal_trace(
        graph,
        &TemporalConfig {
            scheme,
            batches: 8,
            ops_per_batch: 64,
            seed: 0x7E4A,
            ..TemporalConfig::default()
        },
    )
}

fn job() -> JobSpec {
    "fennel:8@window=2".parse().unwrap()
}

/// At every sliding-window checkpoint of every temporal scheme, the
/// incrementally maintained cut stays within [`CUT_FACTOR`] of a cold
/// restream of the evolved graph, and balance does not erode.
#[test]
fn temporal_windows_track_cold_restream() {
    for (name, graph, scheme) in corpus() {
        let trace = trace_for(&graph, scheme);
        let job = job();
        let cadence = Checkpoints::every(job.window);
        let mut state = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
        let mut windows = 0usize;
        for (i, batch) in trace.iter().enumerate() {
            state.apply(batch).unwrap();
            if !cadence.is_checkpoint(i, trace.len()) {
                continue;
            }
            windows += 1;
            let (restream_cut, _, _) = state.cold_restream_reference().unwrap();
            let bound = (restream_cut as f64 * CUT_FACTOR).max(1.0);
            assert!(
                (state.edge_cut() as f64) <= bound,
                "{name}: window at batch {i} cut {} exceeds {CUT_FACTOR}x \
                 the cold-restream cut {restream_cut}",
                state.edge_cut()
            );
            assert!(
                state.imbalance() <= 0.25,
                "{name}: window at batch {i} imbalance {} out of bounds",
                state.imbalance()
            );
        }
        assert_eq!(
            windows,
            cadence.count(trace.len()),
            "{name}: cadence helper and manual loop disagree on window count"
        );
    }
}

/// `drive_windows` is the one-call version of the manual loop above: same
/// cadence, same deterministic per-window fields.
#[test]
fn drive_windows_matches_manual_apply_loop() {
    for (name, graph, scheme) in corpus() {
        let trace = trace_for(&graph, scheme);
        let job = job();

        // Manual loop, recording the deterministic fields at each window.
        let cadence = Checkpoints::every(job.window);
        let mut state = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
        let mut manual = Vec::new();
        let mut window_deltas = 0usize;
        for (i, batch) in trace.iter().enumerate() {
            let stats = state.apply(batch).unwrap();
            window_deltas += stats.deltas;
            if cadence.is_checkpoint(i, trace.len()) {
                manual.push((manual.len(), i, window_deltas, state.edge_cut()));
                window_deltas = 0;
            }
        }

        let mut fresh = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
        let curve = fresh.drive_windows(&trace).unwrap();
        assert_eq!(curve.len(), manual.len(), "{name}: window counts differ");
        for (w, (checkpoint, batch_index, deltas, cut)) in curve.iter().zip(&manual) {
            assert_eq!(w.checkpoint, *checkpoint, "{name}: checkpoint index");
            assert_eq!(w.batch_index, *batch_index, "{name}: batch index");
            assert_eq!(w.deltas, *deltas, "{name}: window delta count");
            assert_eq!(w.edge_cut, *cut, "{name}: window edge cut");
        }
    }
}

/// Cumulative drift counters are monotone across the whole trace, and the
/// final tally accounts for every traced operation.
#[test]
fn drift_counters_are_monotone_and_complete() {
    for (name, graph, scheme) in corpus() {
        let trace = trace_for(&graph, scheme);
        let mut state = PartitionState::new(&job(), &mut InMemoryStream::new(&graph)).unwrap();
        let mut prev = state.counters();
        assert_eq!(prev.deltas_applied, 0, "{name}: fresh service starts at 0");
        for batch in &trace {
            state.apply(batch).unwrap();
            let now = state.counters();
            assert!(
                now.deltas_applied > prev.deltas_applied,
                "{name}: deltas_applied must strictly grow per non-empty batch"
            );
            assert!(
                now.restreams >= prev.restreams,
                "{name}: restream count can never shrink"
            );
            prev = now;
        }
        let total_ops: u64 = trace.iter().map(|b| b.len() as u64).sum();
        assert_eq!(
            prev.deltas_applied, total_ops,
            "{name}: every traced op must be applied exactly once"
        );
    }
}

/// Release-gated: the *served* quality curve. At every window checkpoint a
/// fixed Zipf workload replays against the maintained partition; p99
/// simulated latency must stay under the committed per-scheme ceiling for
/// the entire trace. Debug builds skip it for runtime, not determinism —
/// the replay itself is integer-tick exact in both profiles.
#[test]
fn replay_p99_stays_bounded_across_windows() {
    if cfg!(debug_assertions) {
        return;
    }
    let replay_config = ReplayConfig {
        requests: 1_000,
        ..ReplayConfig::default()
    };
    for (name, graph, scheme) in corpus() {
        let ceiling = P99_CEILINGS
            .iter()
            .find(|(s, _)| *s == name)
            .map(|(_, p)| *p)
            .unwrap();
        let trace = trace_for(&graph, scheme);
        let job = job();
        let cadence = Checkpoints::every(job.window);
        let mut state = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
        for (i, batch) in trace.iter().enumerate() {
            state.apply(batch).unwrap();
            if !cadence.is_checkpoint(i, trace.len()) {
                continue;
            }
            let assignments = state.assignments().to_vec();
            let report = replay_stream(state.graph_stream(), &assignments, &replay_config).unwrap();
            println!(
                "{name}: batch {i} replay p99 {} (<= {ceiling}), hop rate {:.4}",
                report.p99_latency,
                report.cross_block_hop_rate()
            );
            assert!(
                report.p99_latency <= ceiling,
                "{name}: replay p99 {} at batch {i} exceeds ceiling {ceiling}",
                report.p99_latency
            );
        }
    }
}
