//! Shim-level allocation counting: proves the flat scoring kernel performs
//! **zero heap allocations per node** once warm.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warm pass (which sizes the connectivity arena, the dirty list and the
//! penalty arena), a second full pass over an in-memory stream must not
//! allocate at all — the per-node hot path runs entirely on pre-sized
//! buffers. CI runs this in release, where an accidental allocation in the
//! inlined kernel would otherwise be invisible.
//!
//! Everything lives in a single `#[test]` because the counter is global:
//! parallel test threads would attribute each other's allocations.

use oms::core::{BatchExecutor, FlatObjective, OnePassConfig, RepairSink, StreamingPartitioner};
use oms::prelude::{planted_partition, Fennel, InMemoryStream, Ldg};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Warm steady-state passes of both flat objectives over graphs of two
/// sizes: the second pass must be allocation-free, independent of `n`.
#[test]
fn steady_state_scoring_is_allocation_free() {
    let k = 32;
    let cfg = OnePassConfig::default();
    for n in [2_000usize, 8_000] {
        let g = planted_partition(n, 8, 0.05, 0.005, 11);
        for objective in [FlatObjective::Fennel, FlatObjective::Ldg] {
            let mut stream = InMemoryStream::new(&g);
            let mut sink = RepairSink::new(
                k,
                g.num_nodes(),
                g.num_edges(),
                g.total_node_weight(),
                cfg,
                objective,
            )
            .unwrap();
            let executor = BatchExecutor::default();
            // Warm pass: grows the dirty list / arenas to their final size.
            executor.run(&mut stream, &mut sink).unwrap();
            let allocs = allocations_during(|| {
                executor.run(&mut stream, &mut sink).unwrap();
            });
            assert_eq!(
                allocs, 0,
                "{objective:?} steady-state pass over n={n} allocated {allocs} times; \
                 the hot path must run on pre-sized buffers only"
            );
        }
    }

    // The one-shot partitioners allocate their state per call, but that
    // setup must stay O(k + n) one-time work, not O(n) *per-node* churn: a
    // 4x bigger graph may not cost 4x the allocations.
    let small = planted_partition(2_000, 8, 0.05, 0.005, 11);
    let large = planted_partition(8_000, 8, 0.05, 0.005, 11);
    let count = |g: &oms::graph::CsrGraph| {
        allocations_during(|| {
            Fennel::new(k, cfg)
                .partition_stream(&mut InMemoryStream::new(g))
                .unwrap();
            Ldg::new(k, cfg)
                .partition_stream(&mut InMemoryStream::new(g))
                .unwrap();
        })
    };
    let (a_small, a_large) = (count(&small), count(&large));
    assert!(
        a_large < a_small + 64,
        "allocation count grew with n ({a_small} -> {a_large}): a per-node allocation \
         crept into the single-pass pipeline"
    );
}
