//! Regression suite for the deterministic sharded engine.
//!
//! Three properties are gated here:
//!
//! 1. **S=1 byte-equivalence.** A one-shard run replays the buffered
//!    stream in order against a single replica, so it must reproduce the
//!    classic sequential engine bit for bit — for every registered
//!    algorithm (via the `shards=1` job knob, which routes to the classic
//!    engine) and for the sharded engine driven directly, across memory
//!    and disk sources.
//! 2. **S>1 quality.** Multi-shard runs assign against round-stale load
//!    views; the committed golden bounds below pin their edge-cut and
//!    imbalance exactly like `tests/quality.rs` does for the classic
//!    engine. Regenerate with
//!    `cargo test --test shard_equivalence print_actuals -- --nocapture --ignored`
//!    and re-apply ~10 % cut headroom / +0.02 imbalance.
//! 3. **Seeded message determinism.** Two runs with the same seed must
//!    produce identical partitions *and* identical message logs (per-shard
//!    counts and the delivery-ordered log hash); changing the seed must
//!    change the delivery order hash.

use oms::graph::io::{write_stream_file, DiskStream};
use oms::prelude::*;
use std::path::PathBuf;

fn temp_stream_file(graph: &CsrGraph, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oms-shard-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_stream_file(graph, &path).unwrap();
    path
}

fn assignments(partitioner: &dyn Partitioner, stream: &mut dyn NodeStream) -> Vec<BlockId> {
    partitioner
        .partition(stream)
        .expect("partitioning succeeds")
        .assignments()
        .to_vec()
}

/// Every registered algorithm family, as in `tests/equivalence.rs`.
fn all_algorithm_specs() -> Vec<&'static str> {
    vec![
        "fennel:8@seed=3",
        "ldg:8@seed=3",
        "hashing:8@seed=3",
        "oms:2:2:2@seed=3",
        "nh-oms:8@seed=3",
        "fennel:8@seed=3,passes=3",
        "ldg:8@seed=3,passes=2",
        "multilevel:8@seed=3",
        "rms:2:2:2@seed=3",
        "buffered:8@seed=3,buf=100",
    ]
}

/// `shards=1` must be a no-op for every registered algorithm: the knob
/// routes to the classic engine, so assignments are byte-identical to the
/// spec without it.
#[test]
fn one_shard_is_identity_for_every_registered_algorithm() {
    register_multilevel_algorithms();
    let graph = planted_partition(700, 8, 0.1, 0.005, 17);
    for spec in all_algorithm_specs() {
        let classic = JobSpec::parse(spec).unwrap().build().unwrap();
        let sharded = JobSpec::parse(spec).unwrap().shards(1).build().unwrap();
        assert_eq!(
            assignments(&*classic, &mut InMemoryStream::new(&graph)),
            assignments(&*sharded, &mut InMemoryStream::new(&graph)),
            "{spec}: shards=1 must be byte-identical to the classic engine"
        );
    }
}

/// The sharded engine itself, driven with one shard, must reproduce the
/// classic engine bit for bit — from memory and from disk.
#[test]
fn sharded_engine_with_one_shard_matches_classic_across_sources() {
    let graph = planted_partition(700, 8, 0.1, 0.005, 17);
    let path = temp_stream_file(&graph, "s1-sources.oms");
    for (objective, spec) in [
        (FlatObjective::Fennel, "fennel:8@seed=3,passes=3"),
        (FlatObjective::Ldg, "ldg:8@seed=3,passes=2"),
    ] {
        let job = JobSpec::parse(spec).unwrap();
        let classic = job.build().unwrap();
        let sharded = ShardedFlat::new(8, job.one_pass_config(), objective, 1).passes(job.passes);
        let reference = assignments(&*classic, &mut InMemoryStream::new(&graph));
        assert_eq!(
            reference,
            assignments(&sharded, &mut InMemoryStream::new(&graph)),
            "{spec}: S=1 from memory"
        );
        let mut disk = DiskStream::open(&path).unwrap();
        assert_eq!(
            reference,
            assignments(&sharded, &mut disk),
            "{spec}: S=1 from disk"
        );
    }
}

/// The S>1 corpus: one instance per generator family, as in
/// `tests/quality.rs`.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", erdos_renyi_gnm(1200, 4800, 42)),
        ("ba", barabasi_albert(1200, 4, 42)),
        ("grid", grid_2d(35, 35)),
        ("sbm", planted_partition(1200, 8, 0.1, 0.01, 42)),
    ]
}

fn sharded_jobs() -> Vec<&'static str> {
    vec![
        "fennel:8@seed=3,shards=2",
        "fennel:8@seed=3,shards=4",
        "ldg:8@seed=3,shards=4",
        "fennel:8@seed=3,shards=4,passes=3",
    ]
}

/// Committed golden bounds: `(graph, job, max edge-cut, max imbalance)`.
const BOUNDS: &[(&str, &str, u64, f64)] = &[
    ("er", "fennel:8@seed=3,shards=2", 3243, 0.0333),
    ("er", "fennel:8@seed=3,shards=4", 3246, 0.0400),
    ("er", "ldg:8@seed=3,shards=4", 3247, 0.0400),
    ("er", "fennel:8@seed=3,shards=4,passes=3", 2994, 0.0333),
    ("ba", "fennel:8@seed=3,shards=2", 3162, 0.0600),
    ("ba", "fennel:8@seed=3,shards=4", 3179, 0.0533),
    ("ba", "ldg:8@seed=3,shards=4", 3422, 0.1133),
    ("ba", "fennel:8@seed=3,shards=4,passes=3", 3065, 0.0600),
    ("grid", "fennel:8@seed=3,shards=2", 499, 0.0976),
    ("grid", "fennel:8@seed=3,shards=4", 488, 0.1237),
    ("grid", "ldg:8@seed=3,shards=4", 235, 0.1955),
    ("grid", "fennel:8@seed=3,shards=4,passes=3", 448, 0.1106),
    ("sbm", "fennel:8@seed=3,shards=2", 12186, 0.0533),
    ("sbm", "fennel:8@seed=3,shards=4", 12130, 0.1133),
    ("sbm", "ldg:8@seed=3,shards=4", 11961, 0.0400),
    ("sbm", "fennel:8@seed=3,shards=4,passes=3", 11847, 0.0733),
];

#[test]
fn multi_shard_runs_stay_within_golden_bounds() {
    for (name, graph) in corpus() {
        for job in sharded_jobs() {
            let (_, _, max_cut, max_imbalance) = BOUNDS
                .iter()
                .find(|(g, j, _, _)| *g == name && *j == job)
                .unwrap_or_else(|| panic!("no committed bound for ({name}, {job})"));
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            assert!(
                report.edge_cut <= *max_cut,
                "({name}, {job}): edge-cut {} exceeds bound {max_cut}",
                report.edge_cut
            );
            assert!(
                report.imbalance <= *max_imbalance + 1e-9,
                "({name}, {job}): imbalance {:.4} exceeds bound {max_imbalance}",
                report.imbalance
            );
            let stats = report.shard_stats.expect("sharded run reports stats");
            assert!(stats.total_messages() > 0, "({name}, {job})");
        }
    }
}

/// Two same-seed runs must agree on the partition AND the entire message
/// log (per-shard counts, totals, delivery-order hash); a different seed
/// must change the delivery-order hash.
#[test]
fn message_log_is_a_pure_function_of_the_seed() {
    let graph = barabasi_albert(1500, 5, 7);
    let run = |seed: u64| {
        let report = JobSpec::parse("fennel:8@shards=4,passes=2")
            .unwrap()
            .seed(seed)
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        let stats = report.shard_stats.expect("sharded run reports stats");
        (report.partition.assignments().to_vec(), stats)
    };
    let (p1, s1) = run(3);
    let (p2, s2) = run(3);
    assert_eq!(p1, p2, "same seed, same partition");
    assert_eq!(s1, s2, "same seed, same message log");
    assert_eq!(s1.shards, 4);
    assert_eq!(s1.messages_sent.len(), 4);
    assert_eq!(
        s1.messages_sent.iter().sum::<u64>(),
        s1.messages_received.iter().sum::<u64>(),
        "every sent message is received"
    );

    let (_, other_seed) = run(4);
    assert_ne!(
        s1.log_hash, other_seed.log_hash,
        "the delivery order is seeded"
    );
}

/// Disk and memory sources must agree for S>1 too: the engine only sees
/// the node sequence, not where it came from.
#[test]
fn sharded_runs_match_across_sources() {
    let graph = planted_partition(900, 8, 0.08, 0.005, 23);
    let path = temp_stream_file(&graph, "s4-sources.oms");
    let job = JobSpec::parse("fennel:8@seed=3,shards=4").unwrap();
    let partitioner = job.build().unwrap();
    let memory = assignments(&*partitioner, &mut InMemoryStream::new(&graph));
    let mut disk = DiskStream::open(&path).unwrap();
    let from_disk = assignments(&*partitioner, &mut disk);
    assert_eq!(memory, from_disk);
}

/// Prints the actual (cut, imbalance) table for the committed bounds;
/// ignored by default.
#[test]
#[ignore]
fn print_actuals() {
    for (name, graph) in corpus() {
        for job in sharded_jobs() {
            let report = JobSpec::parse(job)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            println!(
                "(\"{name}\", \"{job}\", {}, {:.4}),",
                report.edge_cut, report.imbalance
            );
        }
    }
}
