//! Cross-crate integration tests: end-to-end pipelines combining generators,
//! streaming partitioners, the in-memory baseline, process mapping and
//! metrics — the same compositions the benchmark harness and the examples
//! rely on.

use oms::graph::io::{read_metis_str, write_metis_string, write_stream_file, DiskStream};
use oms::prelude::*;

/// The relationships of Fig. 2a/2b on a single structured instance:
/// in-memory multilevel ≤ streaming (Fennel/OMS) ≤ Hashing for both
/// objectives.
#[test]
fn quality_ordering_matches_the_paper() {
    let graph = planted_partition(1_500, 16, 0.04, 0.001, 11);
    let k = 64u32;
    let hierarchy = HierarchySpec::parse("4:4:4").unwrap();
    let topology = Topology::parse("4:4:4", "1:10:100").unwrap();

    let hashing = Hashing::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let fennel = Fennel::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let nh_oms = OnlineMultiSection::flat(k, OmsConfig::default())
        .unwrap()
        .partition_graph(&graph)
        .unwrap();
    let oms = OnlineMultiSection::with_hierarchy(hierarchy.clone(), OmsConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let multilevel = MultilevelPartitioner::new(k, MultilevelConfig::default())
        .partition(&graph)
        .unwrap();
    let offline = RecursiveMultisection::new(hierarchy, MultilevelConfig::default())
        .partition(&graph)
        .unwrap();

    // Edge-cut ordering (Fig. 2b).
    let cut = |p: &Partition| edge_cut(&graph, p.assignments());
    assert!(
        cut(&multilevel) <= cut(&fennel),
        "multilevel must beat fennel"
    );
    assert!(cut(&fennel) < cut(&hashing), "fennel must beat hashing");
    assert!(cut(&nh_oms) < cut(&hashing), "nh-oms must beat hashing");

    // Mapping-cost ordering (Fig. 2a).
    let j = |p: &Partition| mapping_cost(&graph, p.assignments(), &topology);
    assert!(
        j(&offline) <= j(&oms),
        "offline mapping must beat streaming OMS"
    );
    assert!(j(&oms) < j(&hashing), "OMS must beat hashing");

    // Everything streaming stays balanced at the paper's 3 %.
    for p in [&hashing, &fennel, &nh_oms, &oms] {
        assert_eq!(p.num_nodes(), graph.num_nodes());
    }
    for p in [&fennel, &nh_oms, &oms] {
        assert!(p.is_balanced(0.03 + 1e-9), "imbalance {}", p.imbalance());
    }
}

/// OMS exploits the hierarchy: its mapping cost should not be worse than the
/// hierarchy-oblivious Fennel partition evaluated under the same topology
/// (the paper reports 41 % better on average).
#[test]
fn oms_mapping_not_worse_than_fennel_identity_mapping() {
    let graph = barabasi_albert(3_000, 5, 3);
    let topology = Topology::parse("4:4:4", "1:10:100").unwrap();
    let k = topology.num_pes();

    let fennel = Fennel::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let oms = OnlineMultiSection::with_hierarchy(
        HierarchySpec::parse("4:4:4").unwrap(),
        OmsConfig::default(),
    )
    .partition_graph(&graph)
    .unwrap();

    let fennel_j = mapping_cost(&graph, fennel.assignments(), &topology);
    let oms_j = mapping_cost(&graph, oms.assignments(), &topology);
    assert!(
        oms_j as f64 <= 1.1 * fennel_j as f64,
        "OMS mapping {oms_j} should be at least comparable to Fennel {fennel_j}"
    );
}

/// Streaming from disk and from memory must give identical results — the
/// one-pass model only ever sees one node at a time either way.
#[test]
fn disk_stream_and_memory_stream_agree() {
    let graph = random_geometric_graph(3_000, 9);
    let path = std::env::temp_dir().join("oms-integration-disk-stream.oms");
    write_stream_file(&graph, &path).unwrap();

    let oms = OnlineMultiSection::flat(128, OmsConfig::default()).unwrap();
    let from_memory = oms.partition_graph(&graph).unwrap();
    let mut disk = DiskStream::open(&path).unwrap();
    let from_disk = oms.partition_stream(&mut disk).unwrap();
    assert_eq!(from_memory, from_disk);

    let fennel = Fennel::new(128, OnePassConfig::default());
    let mut disk = DiskStream::open(&path).unwrap();
    assert_eq!(
        fennel.partition_graph(&graph).unwrap(),
        fennel.partition_stream(&mut disk).unwrap()
    );
    std::fs::remove_file(&path).ok();
}

/// METIS round-trip composed with partitioning: the partition of a re-read
/// graph is identical because the graph is identical.
#[test]
fn metis_roundtrip_preserves_partitioning() {
    let graph = delaunay_graph(1_000, 5);
    let text = write_metis_string(&graph).unwrap();
    let reread = read_metis_str(&text).unwrap();
    assert_eq!(graph, reread);

    let oms = OnlineMultiSection::flat(32, OmsConfig::default()).unwrap();
    assert_eq!(
        oms.partition_graph(&graph).unwrap(),
        oms.partition_graph(&reread).unwrap()
    );
}

/// The parallel driver produces valid, balanced partitions whose quality is
/// in the same ballpark as the sequential pass (it relaxes only the
/// visibility of concurrent assignments).
#[test]
fn parallel_oms_quality_close_to_sequential() {
    let graph = planted_partition(2_000, 32, 0.03, 0.001, 17);
    let hierarchy = HierarchySpec::parse("4:4:4").unwrap();
    let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());

    let sequential = oms.partition_graph(&graph).unwrap();
    let parallel = oms.partition_graph_parallel(&graph, 4).unwrap();

    assert_eq!(parallel.num_nodes(), graph.num_nodes());
    assert!(
        parallel.imbalance() < 0.2,
        "imbalance {}",
        parallel.imbalance()
    );
    let seq_cut = edge_cut(&graph, sequential.assignments()) as f64;
    let par_cut = edge_cut(&graph, parallel.assignments()) as f64;
    assert!(
        par_cut <= 2.0 * seq_cut + 100.0,
        "parallel cut {par_cut} too far from sequential {seq_cut}"
    );
}

/// Offline remapping of a hierarchy-oblivious partition (greedy + local
/// search over the block communication graph) never increases the mapping
/// cost.
#[test]
fn offline_remapping_improves_fennel() {
    let graph = rmat_graph(12, 40_000, oms::gen::RmatParams::GRAPH500, 3);
    let topology = Topology::parse("2:2:2:2:2:2", "1:2:4:8:16:32").unwrap();
    let k = topology.num_pes();
    let fennel = Fennel::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let before = mapping_cost(&graph, fennel.assignments(), &topology);
    let remapped = remap_partition(&fennel, &offline_block_mapping(&graph, &fennel, &topology));
    let after = mapping_cost(&graph, &remapped, &topology);
    assert!(
        after <= before,
        "remapping {after} must not exceed {before}"
    );
}

/// The whole synthetic corpus can be generated, streamed and partitioned —
/// the smoke test behind every benchmark binary.
#[test]
fn corpus_smoke_test() {
    for (name, _class, graph) in oms::gen::scaled_corpus(0.01, 7) {
        let k = 16;
        let p = OnlineMultiSection::flat(k, OmsConfig::default())
            .unwrap()
            .partition_graph(&graph)
            .unwrap();
        assert_eq!(p.num_nodes(), graph.num_nodes(), "{name}");
        assert!(p.is_balanced(0.031), "{name}: imbalance {}", p.imbalance());
    }
}

/// Every algorithm in the shared dispatch registry — streaming baselines,
/// OMS/nh-OMS, and the in-memory baselines contributed by `oms-multilevel`
/// — builds from a single `JobSpec` string and produces a complete, valid,
/// balanced partition on the quickstart community graph.
#[test]
fn every_registered_algorithm_partitions_the_quickstart_graph() {
    register_multilevel_algorithms();
    let graph = planted_partition(600, 8, 0.1, 0.005, 42);

    let registered: Vec<String> = registered_algorithms()
        .iter()
        .map(|a| a.name.to_string())
        .collect();
    for required in [
        "hashing",
        "ldg",
        "fennel",
        "oms",
        "nh-oms",
        "multilevel",
        "rms",
    ] {
        assert!(
            registered.iter().any(|n| n == required),
            "registry is missing '{required}' (has: {registered:?})"
        );
    }

    for algo in registered_algorithms() {
        // rms insists on a hierarchy; give every hierarchy-aware algorithm
        // one and the rest a flat k = 8.
        let spec = if algo.supports_hierarchy {
            format!("{}:2:2:2", algo.name)
        } else {
            format!("{}:8", algo.name)
        };
        let job = JobSpec::parse(&spec).unwrap();
        let partitioner = job.build().unwrap_or_else(|e| panic!("{spec}: {e}"));
        let report = partitioner
            .run(&mut InMemoryStream::new(&graph))
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(report.partition.num_nodes(), 600, "{spec}");
        assert_eq!(report.num_blocks(), 8, "{spec}");
        assert!(report.partition.validate(graph.node_weights()), "{spec}");
        // Hashing ignores the balance constraint but must stay statistically
        // balanced; everything else respects the paper's 3 %.
        if algo.name == "hashing" {
            assert!(
                report.imbalance < 0.5,
                "{spec}: imbalance {}",
                report.imbalance
            );
        } else {
            assert!(
                report.is_balanced(0.1),
                "{spec}: imbalance {}",
                report.imbalance
            );
        }
    }
}

/// The execution-mode modifiers — restreaming `passes=` and shared-memory
/// `threads=` — are part of the same job string and drive the restreaming
/// and parallel drivers through the identical `Box<dyn Partitioner>` entry
/// point.
#[test]
fn jobspec_modifiers_drive_restreaming_and_parallel_variants() {
    let graph = planted_partition(600, 8, 0.1, 0.005, 43);
    for spec in [
        "fennel:8@passes=3",
        "ldg:8@passes=2",
        "oms:8@passes=2",
        "fennel:8@threads=4",
        "ldg:8@threads=4",
        "hashing:8@threads=4",
        "oms:2:2:2@threads=4",
    ] {
        let report = JobSpec::parse(spec)
            .unwrap()
            .build()
            .unwrap_or_else(|e| panic!("{spec}: {e}"))
            .run(&mut InMemoryStream::new(&graph))
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(report.partition.num_nodes(), 600, "{spec}");
        assert!(report.partition.validate(graph.node_weights()), "{spec}");
        assert!(
            report.imbalance < 0.25,
            "{spec}: imbalance {}",
            report.imbalance
        );
    }
}

/// Restreaming (the ReFennel-style extension) never loses to the single-pass
/// run on edge-cut.
#[test]
fn restreaming_improves_or_matches_single_pass() {
    let graph = planted_partition(1_200, 8, 0.05, 0.002, 23);
    let k = 32;
    let single = Fennel::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let restreamed = oms::core::restream::ReFennel::new(k, OnePassConfig::default(), 3)
        .partition_graph(&graph)
        .unwrap();
    assert!(
        edge_cut(&graph, restreamed.assignments()) <= edge_cut(&graph, single.assignments()),
        "restreaming must not worsen the cut"
    );
}
