//! Golden traffic-replay suite: quality bounds users would actually feel.
//!
//! Fixed-seed corpora are partitioned by the registered streaming
//! algorithms and then served by the `oms-workload` replay simulator. The
//! suite pins three things:
//!
//! * **golden bounds** — cross-block hop rate and p99 simulated latency for
//!   every (graph, job) pair stay under committed ceilings (~10 % headroom
//!   over the measured values), so a scoring regression that would degrade
//!   *served* quality fails loudly;
//! * **ordering** — multi-pass Fennel beats hashing on hop rate AND p99
//!   latency on every corpus: the paper's quality claims must survive
//!   contact with a simulated workload, not just edge-cut arithmetic;
//! * **determinism** — the full `ReplayReport` is byte-identical no matter
//!   which stream source (in-memory, chunked, disk) fed the replay, and the
//!   FNV-1a request-log hash is reproducible per seed.
//!
//! Everything is integer-tick arithmetic on seeded corpora: the numbers
//! here are exact on every platform, not statistical.

use oms::gen::RmatParams;
use oms::graph::io::{write_stream_file, DiskStream};
use oms::graph::ChunkedStream;
use oms::prelude::*;
use std::path::PathBuf;

/// Replay workload shared by every check in this suite.
fn replay_config() -> ReplayConfig {
    ReplayConfig {
        requests: 2_000,
        ..ReplayConfig::default()
    }
}

/// The fixed-seed corpora. Both are hub-heavy, which is exactly where a
/// partitioner's hub placement decides serving quality.
fn corpus() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("ba", barabasi_albert(1_200, 4, 42)),
        ("rmat", rmat_graph(10, 8_192, RmatParams::GRAPH500, 42)),
    ]
}

const JOBS: &[&str] = &[
    "hashing:8@seed=3",
    "ldg:8@seed=3",
    "fennel:8@seed=3",
    "fennel:8@seed=3,passes=3",
];

/// Committed ceilings: (graph, job, max cross-block hop rate, max p99).
/// Measured values carry ~10 % headroom so noise-free improvements pass
/// and regressions that eat the margin fail.
const GOLDEN_BOUNDS: &[(&str, &str, f64, u64)] = &[
    // measured: 0.7936 / 145, 0.5777 / 120, 0.5576 / 121, 0.5372 / 119
    ("ba", "hashing:8@seed=3", 0.88, 160),
    ("ba", "ldg:8@seed=3", 0.64, 132),
    ("ba", "fennel:8@seed=3", 0.62, 134),
    ("ba", "fennel:8@seed=3,passes=3", 0.60, 132),
    // measured: 0.7847 / 137, 0.6169 / 129, 0.5741 / 121, 0.5624 / 120
    ("rmat", "hashing:8@seed=3", 0.87, 151),
    ("rmat", "ldg:8@seed=3", 0.68, 142),
    ("rmat", "fennel:8@seed=3", 0.64, 134),
    ("rmat", "fennel:8@seed=3,passes=3", 0.62, 132),
];

fn partition_assignments(graph: &CsrGraph, spec: &str) -> Vec<BlockId> {
    JobSpec::parse(spec)
        .unwrap()
        .build()
        .unwrap()
        .partition(&mut InMemoryStream::new(graph))
        .unwrap()
        .assignments()
        .to_vec()
}

fn replay(graph: &CsrGraph, spec: &str) -> ReplayReport {
    let assignments = partition_assignments(graph, spec);
    replay_graph(graph, &assignments, &replay_config())
}

#[test]
fn golden_replay_bounds_hold() {
    for (name, graph) in corpus() {
        for spec in JOBS {
            let report = replay(&graph, spec);
            let (_, _, max_hop_rate, max_p99) = GOLDEN_BOUNDS
                .iter()
                .find(|(g, j, _, _)| *g == name && j == spec)
                .copied()
                .unwrap_or_else(|| panic!("no golden bound for {name}/{spec}"));
            println!(
                "{name}/{spec}: hop rate {:.4} (<= {max_hop_rate}), p99 {} (<= {max_p99})",
                report.cross_block_hop_rate(),
                report.p99_latency
            );
            assert!(
                report.cross_block_hop_rate() <= max_hop_rate,
                "{name}/{spec}: cross-block hop rate {:.4} exceeds golden bound {max_hop_rate}",
                report.cross_block_hop_rate()
            );
            assert!(
                report.p99_latency <= max_p99,
                "{name}/{spec}: p99 latency {} exceeds golden bound {max_p99}",
                report.p99_latency
            );
            assert_eq!(report.requests, report.served + report.rejected);
        }
    }
}

#[test]
fn fennel_beats_hashing_on_served_quality() {
    // The acceptance bar for the whole workload subsystem: the partitioner
    // the paper advocates must serve the simulated users strictly better
    // than random placement on BOTH user-facing metrics.
    for (name, graph) in corpus() {
        let hash = replay(&graph, "hashing:8@seed=3");
        let fennel = replay(&graph, "fennel:8@seed=3,passes=3");
        assert!(
            fennel.cross_block_hop_rate() < hash.cross_block_hop_rate(),
            "{name}: fennel hop rate {:.4} must beat hashing {:.4}",
            fennel.cross_block_hop_rate(),
            hash.cross_block_hop_rate()
        );
        assert!(
            fennel.p99_latency < hash.p99_latency,
            "{name}: fennel p99 {} must beat hashing {}",
            fennel.p99_latency,
            hash.p99_latency
        );
    }
}

fn temp_stream_file(graph: &CsrGraph, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oms-replay-quality-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_stream_file(graph, &path).unwrap();
    path
}

#[test]
fn replay_report_identical_across_stream_sources() {
    // The replay walks the stream to materialize adjacency; the stream
    // source is an I/O detail and must not perturb a single field of the
    // report — not the latencies, not the queue loads, not the log hash.
    let config = replay_config();
    for (name, graph) in corpus() {
        let assignments = partition_assignments(&graph, "fennel:8@seed=3");
        let reference =
            replay_stream(&mut InMemoryStream::new(&graph), &assignments, &config).unwrap();

        let chunked = replay_stream(
            &mut ChunkedStream::new(&graph, NodeOrdering::Natural),
            &assignments,
            &config,
        )
        .unwrap();
        assert_eq!(reference, chunked, "{name}: chunked replay differs");

        let path = temp_stream_file(&graph, &format!("replay-{name}.oms"));
        let disk =
            replay_stream(&mut DiskStream::open(&path).unwrap(), &assignments, &config).unwrap();
        assert_eq!(reference, disk, "{name}: disk replay differs");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn replay_is_seed_deterministic() {
    let (_, graph) = corpus().remove(0);
    let assignments = partition_assignments(&graph, "fennel:8@seed=3");
    let config = replay_config();
    let a = replay_graph(&graph, &assignments, &config);
    let b = replay_graph(&graph, &assignments, &config);
    assert_eq!(a, b, "same seed must reproduce the identical report");

    let other = ReplayConfig {
        seed: config.seed + 1,
        ..config
    };
    let c = replay_graph(&graph, &assignments, &other);
    assert_ne!(
        a.request_log_hash, c.request_log_hash,
        "a different replay seed must change the request log"
    );
}
