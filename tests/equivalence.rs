//! Equivalence suite for the batch executor.
//!
//! The batched streaming pipeline must be a pure execution-model change:
//! for a fixed seed, every registered algorithm has to produce **byte
//! identical** assignments no matter
//!
//! * how the stream is batched (the per-node path — batch size 1, via
//!   [`PerNodeBatches`] — against the default batched path), and
//! * where the stream comes from (in-memory, chunked, or disk, with disk
//!   ingest both synchronous and double-buffered).

use oms::graph::io::{write_stream_file, DiskStream};
use oms::graph::ChunkedStream;
use oms::prelude::*;
use std::path::PathBuf;

fn temp_stream_file(graph: &CsrGraph, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oms-equivalence-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_stream_file(graph, &path).unwrap();
    path
}

/// The per-node algorithm families, pinned to a fixed seed. Their scorers
/// only ever see one node at a time, so batching must not change anything.
fn per_node_algorithm_specs() -> Vec<&'static str> {
    vec![
        "fennel:8@seed=3",
        "ldg:8@seed=3",
        "hashing:8@seed=3",
        "oms:2:2:2@seed=3",
        "nh-oms:8@seed=3",
        "fennel:8@seed=3,passes=3",
        "oms:8@seed=3,passes=2",
        "ldg:8@seed=3,passes=2",
        "hashing:8@seed=3,passes=2",
        "fennel:8@seed=3,passes=4,conv=0.01",
        "multilevel:8@seed=3",
        "multilevel:8@seed=3,passes=2",
        "rms:2:2:2@seed=3",
    ]
}

/// Everything above plus `buffered`, whose batches are part of the
/// algorithm (the batch is the model graph) — it is therefore only included
/// where the batch size is held fixed, i.e. the cross-source checks.
fn all_algorithm_specs() -> Vec<&'static str> {
    let mut specs = per_node_algorithm_specs();
    specs.push("buffered:8@seed=3,buf=100");
    specs.push("buffered:8@seed=3,buf=100,passes=2");
    specs
}

fn assignments(partitioner: &dyn Partitioner, stream: &mut dyn NodeStream) -> Vec<BlockId> {
    partitioner
        .partition(stream)
        .expect("partitioning succeeds")
        .assignments()
        .to_vec()
}

#[test]
fn batch_executor_matches_per_node_path_for_every_algorithm() {
    register_multilevel_algorithms();
    let graph = planted_partition(700, 8, 0.1, 0.005, 17);
    for spec in per_node_algorithm_specs() {
        let partitioner = JobSpec::parse(spec).unwrap().build().unwrap();
        let batched = assignments(&*partitioner, &mut InMemoryStream::new(&graph));
        let per_node = assignments(
            &*partitioner,
            &mut PerNodeBatches(InMemoryStream::new(&graph)),
        );
        assert_eq!(
            batched, per_node,
            "{spec}: batched and per-node assignments must be byte-identical"
        );
    }
}

#[test]
fn all_stream_sources_produce_identical_assignments() {
    register_multilevel_algorithms();
    let graph = planted_partition(600, 8, 0.1, 0.005, 23);
    let path = temp_stream_file(&graph, "sources.oms");
    for spec in all_algorithm_specs() {
        let partitioner = JobSpec::parse(spec).unwrap().build().unwrap();
        let reference = assignments(&*partitioner, &mut InMemoryStream::new(&graph));

        let chunked = assignments(
            &*partitioner,
            &mut ChunkedStream::new(&graph, NodeOrdering::Natural),
        );
        assert_eq!(reference, chunked, "{spec}: chunked stream differs");

        let mut disk_sync = DiskStream::open(&path).unwrap().double_buffered(false);
        assert_eq!(
            reference,
            assignments(&*partitioner, &mut disk_sync),
            "{spec}: synchronous disk stream differs"
        );

        let mut disk_buffered = DiskStream::open(&path).unwrap();
        assert_eq!(
            reference,
            assignments(&*partitioner, &mut disk_buffered),
            "{spec}: double-buffered disk stream differs"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_size_does_not_change_sequential_results() {
    // The executor's batch size is an implementation detail of the drive
    // loop; streaming scorers only ever see one node at a time, so any
    // batching must yield the same partition.
    let graph = planted_partition(500, 8, 0.12, 0.005, 29);
    let fennel = Fennel::new(8, OnePassConfig::default().seed(7));
    let reference = fennel
        .partition_stream(&mut PerNodeBatches(InMemoryStream::new(&graph)))
        .unwrap();
    for permuted in [false, true] {
        let mut stream = if permuted {
            InMemoryStream::with_ordering(&graph, NodeOrdering::Random(5))
        } else {
            InMemoryStream::new(&graph)
        };
        let batched = fennel.partition_stream(&mut stream).unwrap();
        if !permuted {
            assert_eq!(reference, batched);
        } else {
            // A different stream order legitimately changes the result; it
            // must still be a complete, valid partition.
            assert_eq!(batched.num_nodes(), 500);
            assert!(batched.validate(&vec![1; 500]));
        }
    }
}

#[test]
fn restreaming_equivalence_holds_across_sources() {
    // Multi-pass algorithms re-open the stream once per pass; disk and
    // memory must still agree pass for pass.
    let graph = planted_partition(400, 4, 0.15, 0.01, 31);
    let path = temp_stream_file(&graph, "restream.oms");
    let job = JobSpec::parse("fennel:4@seed=1,passes=4").unwrap();
    let partitioner = job.build().unwrap();
    let memory = assignments(&*partitioner, &mut InMemoryStream::new(&graph));
    let mut disk = DiskStream::open(&path).unwrap();
    assert_eq!(memory, assignments(&*partitioner, &mut disk));
    std::fs::remove_file(&path).ok();
}

#[test]
fn multi_pass_over_a_corrupt_disk_file_fails_with_the_typed_error() {
    // The multi-pass engine rewinds the stream between passes; over a
    // truncated file every pass must die with the typed truncation error —
    // never stream short and partition a prefix.
    let graph = planted_partition(200, 4, 0.1, 0.01, 31);
    let path = temp_stream_file(&graph, "corrupt-multipass.oms");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
    let mut stream = DiskStream::open(&path).unwrap();
    let partitioner = JobSpec::parse("fennel:4@seed=3,passes=3")
        .unwrap()
        .build()
        .unwrap();
    let err = partitioner.partition(&mut stream).unwrap_err();
    assert!(
        err.to_string().contains("truncated"),
        "expected the typed truncation error, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn multi_pass_trajectories_agree_across_stream_sources() {
    // Not only the final assignment: the whole per-pass quality trajectory
    // (cuts, moved counts, early-exit behavior) must be identical no matter
    // where the stream comes from.
    register_multilevel_algorithms();
    let graph = planted_partition(500, 8, 0.1, 0.005, 37);
    let path = temp_stream_file(&graph, "trajectory-sources.oms");
    for spec in [
        "fennel:8@seed=3,passes=4",
        "ldg:8@seed=3,passes=3,conv=0.01",
        "buffered:8@seed=3,buf=100,passes=3",
    ] {
        let partitioner = JobSpec::parse(spec).unwrap().build().unwrap();
        let strip = |t: Vec<oms::core::PassStats>| -> Vec<(usize, u64, usize)> {
            t.into_iter()
                .map(|s| (s.pass, s.edge_cut, s.moved))
                .collect()
        };
        let (_, reference) = partitioner
            .partition_tracked(&mut InMemoryStream::new(&graph))
            .unwrap();
        let reference = strip(reference.stats);
        assert!(!reference.is_empty(), "{spec}");

        let (_, chunked) = partitioner
            .partition_tracked(&mut ChunkedStream::new(&graph, NodeOrdering::Natural))
            .unwrap();
        assert_eq!(reference, strip(chunked.stats), "{spec}: chunked differs");

        let mut disk = DiskStream::open(&path).unwrap();
        let (_, disk_t) = partitioner.partition_tracked(&mut disk).unwrap();
        assert_eq!(reference, strip(disk_t.stats), "{spec}: disk differs");
    }
    std::fs::remove_file(&path).ok();
}
