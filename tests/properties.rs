//! Property-based tests (proptest) on the core invariants of the framework:
//! whatever the random graph, stream order, hierarchy or `k`, the streaming
//! partitioners must produce complete, in-range, balance-respecting
//! assignments, the multi-section tree must stay structurally sound, and the
//! quality/mapping metrics must obey their algebraic identities.

use oms::prelude::*;
use proptest::prelude::*;

/// Strategy: a random undirected graph with `n ∈ [nmin, nmax]` nodes and a
/// random edge list (self loops and duplicates are removed by the builder).
fn arbitrary_graph(nmin: usize, nmax: usize) -> impl Strategy<Value = CsrGraph> {
    (nmin..=nmax).prop_flat_map(|n| {
        let max_edges = (n * 3).max(1);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every streaming partitioner assigns every node to a block < k.
    #[test]
    fn streaming_partitioners_assign_every_node(
        graph in arbitrary_graph(1, 120),
        k in 1u32..20,
        seed in 0u64..1000,
    ) {
        let cfg = OnePassConfig::default().seed(seed);
        for partition in [
            Hashing::new(k, cfg).partition_graph(&graph).unwrap(),
            Ldg::new(k, cfg).partition_graph(&graph).unwrap(),
            Fennel::new(k, cfg).partition_graph(&graph).unwrap(),
        ] {
            prop_assert_eq!(partition.num_nodes(), graph.num_nodes());
            prop_assert!(partition.assignments().iter().all(|&b| b < k));
            prop_assert!(partition.validate(graph.node_weights()));
        }
    }

    /// Fennel and LDG respect the paper's balance constraint
    /// `L_max = ⌈(1+ε)·c(V)/k⌉` on unit-weight graphs whenever a feasible
    /// assignment exists (k ≤ n guarantees it).
    #[test]
    fn one_pass_baselines_respect_balance(
        graph in arbitrary_graph(20, 150),
        k in 2u32..10,
    ) {
        let cfg = OnePassConfig::default();
        let capacity = Partition::capacity(graph.total_node_weight(), k, 0.03);
        for partition in [
            Ldg::new(k, cfg).partition_graph(&graph).unwrap(),
            Fennel::new(k, cfg).partition_graph(&graph).unwrap(),
        ] {
            prop_assert!(partition.max_block_weight() <= capacity);
        }
    }

    /// nh-OMS produces complete, balanced partitions for arbitrary k and
    /// bases, including k values that are not powers of the base.
    #[test]
    fn nh_oms_valid_for_arbitrary_k_and_base(
        graph in arbitrary_graph(30, 150),
        k in 1u32..40,
        base in 2u32..6,
    ) {
        let oms = OnlineMultiSection::flat(k, OmsConfig::default().base_b(base)).unwrap();
        let partition = oms.partition_graph(&graph).unwrap();
        prop_assert_eq!(partition.num_blocks(), k);
        prop_assert_eq!(partition.num_nodes(), graph.num_nodes());
        prop_assert!(partition.assignments().iter().all(|&b| b < k));
        let capacity = Partition::capacity(graph.total_node_weight(), k, 0.03);
        prop_assert!(partition.max_block_weight() <= capacity);
    }

    /// OMS along a hierarchy assigns within range and matches the edge-cut
    /// computed independently by the metrics crate.
    #[test]
    fn oms_hierarchy_consistent_with_metrics(
        graph in arbitrary_graph(20, 120),
        factors in proptest::collection::vec(2u32..4, 1..4),
        seed in 0u64..100,
    ) {
        let hierarchy = HierarchySpec::new(factors).unwrap();
        let k = hierarchy.total_blocks();
        let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default().seed(seed));
        let partition = oms.partition_graph(&graph).unwrap();
        prop_assert_eq!(partition.num_blocks(), k);
        prop_assert_eq!(
            partition.edge_cut(&graph),
            edge_cut(&graph, partition.assignments())
        );
    }

    /// The stream order changes the result but never its validity.
    #[test]
    fn stream_order_does_not_break_validity(
        graph in arbitrary_graph(10, 100),
        seed in 0u64..500,
    ) {
        let oms = OnlineMultiSection::flat(8, OmsConfig::default()).unwrap();
        for ordering in [
            NodeOrdering::Natural,
            NodeOrdering::Random(seed),
            NodeOrdering::Bfs,
            NodeOrdering::DegreeDescending,
        ] {
            let mut stream = InMemoryStream::with_ordering(&graph, ordering);
            let partition = oms.partition_stream(&mut stream).unwrap();
            prop_assert_eq!(partition.num_nodes(), graph.num_nodes());
            prop_assert!(partition.validate(graph.node_weights()));
        }
    }

    /// Mapping cost is bounded below by the edge-cut (every cut edge pays at
    /// least the smallest distance d1 ≥ 1) and above by cut · d_max.
    #[test]
    fn mapping_cost_bounds(
        graph in arbitrary_graph(10, 100),
        factors in proptest::collection::vec(2u32..4, 2..4),
    ) {
        let hierarchy = HierarchySpec::new(factors.clone()).unwrap();
        let spec = hierarchy.to_string_spec();
        let distances: Vec<String> =
            (0..factors.len()).map(|i| (10u64.pow(i as u32)).to_string()).collect();
        let topology = Topology::parse(&spec, &distances.join(":")).unwrap();
        let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
        let partition = oms.partition_graph(&graph).unwrap();

        let cut = edge_cut(&graph, partition.assignments());
        let j = mapping_cost(&graph, partition.assignments(), &topology);
        let d_max = 10u64.pow((factors.len() - 1) as u32);
        prop_assert!(j >= cut);
        prop_assert!(j <= cut * d_max);
    }

    /// The multi-section tree keeps Lemma 1's O(k) bound and its coverage
    /// counts always sum up along the tree, for arbitrary k and base.
    #[test]
    fn multisection_tree_invariants(k in 1u32..200, base in 2u32..6) {
        let tree = oms::core::MultisectionTree::flat(k, base);
        prop_assert!(tree.num_nodes() <= 2 * k as usize + 1);
        prop_assert_eq!(tree.covered(tree.root()), k);
        for node in 0..tree.num_nodes() as u32 {
            let children = tree.children(node);
            if children.is_empty() {
                prop_assert!(tree.leaf_block(node).is_some() || k == 1);
            } else {
                let sum: u32 = children.iter().map(|&c| tree.covered(c)).sum();
                prop_assert_eq!(sum, tree.covered(node));
                prop_assert!(children.len() <= base as usize);
            }
        }
        // Every block has a unique leaf.
        let mut leaves: Vec<u32> = (0..k).map(|b| tree.leaf_of_block(b)).collect();
        leaves.sort_unstable();
        leaves.dedup();
        prop_assert_eq!(leaves.len(), k as usize);
    }

    /// PE coordinates and shared levels of the hierarchy are consistent:
    /// the shared level is the first level at which the coordinates agree
    /// when read from the top.
    #[test]
    fn hierarchy_shared_level_consistent_with_coordinates(
        factors in proptest::collection::vec(2u32..5, 1..4),
        a in 0u32..500,
        b in 0u32..500,
    ) {
        let hierarchy = HierarchySpec::new(factors).unwrap();
        let k = hierarchy.total_blocks();
        let a = a % k;
        let b = b % k;
        let level = hierarchy.shared_level(a, b);
        if a == b {
            prop_assert_eq!(level, 0);
        } else {
            let ca = hierarchy.coordinates(a);
            let cb = hierarchy.coordinates(b);
            // They must differ somewhere at or below `level` and agree above.
            prop_assert!(ca[..level] != cb[..level]);
            prop_assert_eq!(&ca[level..], &cb[level..]);
        }
    }

    /// Restreaming never increases the edge-cut relative to a single pass.
    #[test]
    fn restreaming_monotone(graph in arbitrary_graph(30, 120), k in 2u32..10) {
        let cfg = OnePassConfig::default();
        let single = Fennel::new(k, cfg).partition_graph(&graph).unwrap();
        let re = oms::core::restream::ReFennel::new(k, cfg, 2)
            .partition_graph(&graph)
            .unwrap();
        prop_assert!(
            edge_cut(&graph, re.assignments()) <= edge_cut(&graph, single.assignments())
        );
    }

    /// The multilevel baseline produces valid partitions on arbitrary graphs.
    #[test]
    fn multilevel_valid_on_arbitrary_graphs(
        graph in arbitrary_graph(40, 150),
        k in 2u32..8,
    ) {
        let p = MultilevelPartitioner::new(k, MultilevelConfig::default())
            .partition(&graph)
            .unwrap();
        prop_assert_eq!(p.num_nodes(), graph.num_nodes());
        prop_assert!(p.validate(graph.node_weights()));
    }
}
