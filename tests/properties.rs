//! Property-based tests on the core invariants of the framework: whatever
//! the random graph, stream order, hierarchy or `k`, the streaming
//! partitioners must produce complete, in-range, balance-respecting
//! assignments, the multi-section tree must stay structurally sound, and the
//! quality/mapping metrics must obey their algebraic identities.
//!
//! The build environment has no crates.io access, so instead of proptest
//! these tests use a small self-contained harness: [`run_cases`] drives a
//! deterministic ChaCha8 generator through a fixed number of random cases
//! and reports the case seed on failure so a run can be reproduced exactly.

use oms::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic random-case driver: runs `cases` cases, each with a fresh
/// seeded generator, and labels panics with the failing case number.
fn run_cases(cases: u64, test: impl Fn(&mut ChaCha8Rng)) {
    for case in 0..cases {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE ^ case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "property failed on case {case} (seed {:#x})",
                0xC0FFEEu64 ^ case
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// A random undirected graph with `n ∈ [nmin, nmax]` nodes and a random edge
/// list (self loops and duplicates are removed by the builder).
fn arbitrary_graph(rng: &mut ChaCha8Rng, nmin: usize, nmax: usize) -> CsrGraph {
    let n = rng.gen_range(nmin..nmax + 1);
    let max_edges = (n * 3).max(1);
    let num_edges = rng.gen_range(0..max_edges);
    let edges: Vec<(u32, u32)> = (0..num_edges)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    CsrGraph::from_edges(n, &edges).unwrap()
}

/// Every streaming partitioner assigns every node to a block < k.
#[test]
fn streaming_partitioners_assign_every_node() {
    run_cases(48, |rng| {
        let graph = arbitrary_graph(rng, 1, 120);
        let k = rng.gen_range(1u32..20);
        let seed = rng.gen_range(0u64..1000);
        let cfg = OnePassConfig::default().seed(seed);
        for partition in [
            Hashing::new(k, cfg).partition_graph(&graph).unwrap(),
            Ldg::new(k, cfg).partition_graph(&graph).unwrap(),
            Fennel::new(k, cfg).partition_graph(&graph).unwrap(),
        ] {
            assert_eq!(partition.num_nodes(), graph.num_nodes());
            assert!(partition.assignments().iter().all(|&b| b < k));
            assert!(partition.validate(graph.node_weights()));
        }
    });
}

/// Fennel and LDG respect the paper's balance constraint
/// `L_max = ⌈(1+ε)·c(V)/k⌉` on unit-weight graphs whenever a feasible
/// assignment exists (k ≤ n guarantees it).
#[test]
fn one_pass_baselines_respect_balance() {
    run_cases(48, |rng| {
        let graph = arbitrary_graph(rng, 20, 150);
        let k = rng.gen_range(2u32..10);
        let cfg = OnePassConfig::default();
        let capacity = Partition::capacity(graph.total_node_weight(), k, 0.03);
        for partition in [
            Ldg::new(k, cfg).partition_graph(&graph).unwrap(),
            Fennel::new(k, cfg).partition_graph(&graph).unwrap(),
        ] {
            assert!(partition.max_block_weight() <= capacity);
        }
    });
}

/// nh-OMS produces complete, balanced partitions for arbitrary k and bases,
/// including k values that are not powers of the base.
#[test]
fn nh_oms_valid_for_arbitrary_k_and_base() {
    run_cases(48, |rng| {
        let graph = arbitrary_graph(rng, 30, 150);
        let k = rng.gen_range(1u32..40);
        let base = rng.gen_range(2u32..6);
        let oms = OnlineMultiSection::flat(k, OmsConfig::default().base_b(base)).unwrap();
        let partition = oms.partition_graph(&graph).unwrap();
        assert_eq!(partition.num_blocks(), k);
        assert_eq!(partition.num_nodes(), graph.num_nodes());
        assert!(partition.assignments().iter().all(|&b| b < k));
        let capacity = Partition::capacity(graph.total_node_weight(), k, 0.03);
        assert!(partition.max_block_weight() <= capacity);
    });
}

fn arbitrary_factors(rng: &mut ChaCha8Rng, len_min: usize, len_max: usize, max: u32) -> Vec<u32> {
    let len = rng.gen_range(len_min..len_max);
    (0..len).map(|_| rng.gen_range(2u32..max)).collect()
}

/// OMS along a hierarchy assigns within range and matches the edge-cut
/// computed independently by the metrics crate.
#[test]
fn oms_hierarchy_consistent_with_metrics() {
    run_cases(48, |rng| {
        let graph = arbitrary_graph(rng, 20, 120);
        let factors = arbitrary_factors(rng, 1, 4, 4);
        let seed = rng.gen_range(0u64..100);
        let hierarchy = HierarchySpec::new(factors).unwrap();
        let k = hierarchy.total_blocks();
        let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default().seed(seed));
        let partition = oms.partition_graph(&graph).unwrap();
        assert_eq!(partition.num_blocks(), k);
        assert_eq!(
            partition.edge_cut(&graph),
            edge_cut(&graph, partition.assignments())
        );
    });
}

/// The stream order changes the result but never its validity.
#[test]
fn stream_order_does_not_break_validity() {
    run_cases(32, |rng| {
        let graph = arbitrary_graph(rng, 10, 100);
        let seed = rng.gen_range(0u64..500);
        let oms = OnlineMultiSection::flat(8, OmsConfig::default()).unwrap();
        for ordering in [
            NodeOrdering::Natural,
            NodeOrdering::Random(seed),
            NodeOrdering::Bfs,
            NodeOrdering::DegreeDescending,
        ] {
            let mut stream = InMemoryStream::with_ordering(&graph, ordering);
            let partition = oms.partition_stream(&mut stream).unwrap();
            assert_eq!(partition.num_nodes(), graph.num_nodes());
            assert!(partition.validate(graph.node_weights()));
        }
    });
}

/// Mapping cost is bounded below by the edge-cut (every cut edge pays at
/// least the smallest distance d1 ≥ 1) and above by cut · d_max.
#[test]
fn mapping_cost_bounds() {
    run_cases(48, |rng| {
        let graph = arbitrary_graph(rng, 10, 100);
        let factors = arbitrary_factors(rng, 2, 4, 4);
        let hierarchy = HierarchySpec::new(factors.clone()).unwrap();
        let spec = hierarchy.to_string_spec();
        let distances: Vec<String> = (0..factors.len())
            .map(|i| (10u64.pow(i as u32)).to_string())
            .collect();
        let topology = Topology::parse(&spec, &distances.join(":")).unwrap();
        let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
        let partition = oms.partition_graph(&graph).unwrap();

        let cut = edge_cut(&graph, partition.assignments());
        let j = mapping_cost(&graph, partition.assignments(), &topology);
        let d_max = 10u64.pow((factors.len() - 1) as u32);
        assert!(j >= cut);
        assert!(j <= cut * d_max);
    });
}

/// The multi-section tree keeps Lemma 1's O(k) bound and its coverage counts
/// always sum up along the tree, for arbitrary k and base.
#[test]
fn multisection_tree_invariants() {
    run_cases(64, |rng| {
        let k = rng.gen_range(1u32..200);
        let base = rng.gen_range(2u32..6);
        let tree = oms::core::MultisectionTree::flat(k, base);
        assert!(tree.num_nodes() <= 2 * k as usize + 1);
        assert_eq!(tree.covered(tree.root()), k);
        for node in 0..tree.num_nodes() as u32 {
            let children = tree.children(node);
            if children.is_empty() {
                assert!(tree.leaf_block(node).is_some() || k == 1);
            } else {
                let sum: u32 = children.iter().map(|&c| tree.covered(c)).sum();
                assert_eq!(sum, tree.covered(node));
                assert!(children.len() <= base as usize);
            }
        }
        // Every block has a unique leaf.
        let mut leaves: Vec<u32> = (0..k).map(|b| tree.leaf_of_block(b)).collect();
        leaves.sort_unstable();
        leaves.dedup();
        assert_eq!(leaves.len(), k as usize);
    });
}

/// PE coordinates and shared levels of the hierarchy are consistent: the
/// shared level is the first level at which the coordinates agree when read
/// from the top.
#[test]
fn hierarchy_shared_level_consistent_with_coordinates() {
    run_cases(64, |rng| {
        let factors = arbitrary_factors(rng, 1, 4, 5);
        let hierarchy = HierarchySpec::new(factors).unwrap();
        let k = hierarchy.total_blocks();
        let a = rng.gen_range(0u32..500) % k;
        let b = rng.gen_range(0u32..500) % k;
        let level = hierarchy.shared_level(a, b);
        if a == b {
            assert_eq!(level, 0);
        } else {
            let ca = hierarchy.coordinates(a);
            let cb = hierarchy.coordinates(b);
            // They must differ somewhere at or below `level` and agree above.
            assert!(ca[..level] != cb[..level]);
            assert_eq!(&ca[level..], &cb[level..]);
        }
    });
}

/// Restreaming never increases the edge-cut relative to a single pass.
#[test]
fn restreaming_monotone() {
    run_cases(24, |rng| {
        let graph = arbitrary_graph(rng, 30, 120);
        let k = rng.gen_range(2u32..10);
        let cfg = OnePassConfig::default();
        let single = Fennel::new(k, cfg).partition_graph(&graph).unwrap();
        let re = oms::core::restream::ReFennel::new(k, cfg, 2)
            .partition_graph(&graph)
            .unwrap();
        assert!(edge_cut(&graph, re.assignments()) <= edge_cut(&graph, single.assignments()));
    });
}

/// A random, canonical-form [`JobSpec`]: hierarchies always have at least
/// two levels (single-level shapes are written as flat `k`).
fn arbitrary_jobspec(rng: &mut ChaCha8Rng) -> JobSpec {
    let algorithms = [
        "hashing",
        "ldg",
        "fennel",
        "oms",
        "nh-oms",
        "multilevel",
        "rms",
        "e-hash",
        "e-dbh",
        "e-greedy",
    ];
    let algorithm = algorithms[rng.gen_range(0..algorithms.len())];
    let mut spec = if rng.gen_range(0..2usize) == 0 {
        JobSpec::flat(algorithm, rng.gen_range(1u32..512))
    } else {
        let factors = arbitrary_factors(rng, 2, 5, 9);
        JobSpec::hierarchical(algorithm, HierarchySpec::new(factors).unwrap())
    };
    if rng.gen_range(0..2usize) == 0 {
        spec = spec.epsilon([0.0, 0.01, 0.05, 0.1, 0.5][rng.gen_range(0..5usize)]);
    }
    if rng.gen_range(0..2usize) == 0 {
        spec = spec.seed(rng.gen_range(1u64..1_000_000));
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.threads(rng.gen_range(2usize..64));
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.passes(rng.gen_range(2usize..8));
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.convergence([0.01, 0.02, 0.05, 0.25][rng.gen_range(0..4usize)]);
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.base_b(rng.gen_range(2u32..8));
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.hashing_bottom_layers(rng.gen_range(1usize..4));
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.lambda([0.0, 0.1, 0.5, 1.5, 4.0][rng.gen_range(0..5usize)]);
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.drift([0.01, 0.05, 0.2, 0.5, 2.0][rng.gen_range(0..5usize)]);
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.repair(
            [
                RepairPolicy::Off,
                RepairPolicy::Local,
                RepairPolicy::Boundary,
            ][rng.gen_range(0..3usize)],
        );
    }
    if rng.gen_range(0..3usize) == 0 {
        let levels = rng.gen_range(1usize..5);
        let distances: Vec<u64> = (0..levels).map(|_| rng.gen_range(1u64..1000)).collect();
        spec = spec.distances(DistanceSpec::new(distances).unwrap());
    }
    if rng.gen_range(0..3usize) == 0 {
        spec = spec.window(rng.gen_range(2usize..12));
    }
    spec
}

/// `JobSpec` round-trips through its canonical string form: whatever the
/// algorithm, shape and option combination, `parse(to_string(spec)) == spec`.
#[test]
fn jobspec_display_parse_round_trip() {
    run_cases(256, |rng| {
        let spec = arbitrary_jobspec(rng);
        let text = spec.to_string();
        let reparsed = JobSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical form '{text}' must parse: {e}"));
        assert_eq!(reparsed, spec, "round trip through '{text}'");
        // And the canonical form is a fixed point of parse ∘ display.
        assert_eq!(reparsed.to_string(), text);
    });
}

/// The multilevel baseline produces valid partitions on arbitrary graphs.
#[test]
fn multilevel_valid_on_arbitrary_graphs() {
    run_cases(24, |rng| {
        let graph = arbitrary_graph(rng, 40, 150);
        let k = rng.gen_range(2u32..8);
        let p = MultilevelPartitioner::new(k, MultilevelConfig::default())
            .partition(&graph)
            .unwrap();
        assert_eq!(p.num_nodes(), graph.num_nodes());
        assert!(p.validate(graph.node_weights()));
    });
}

/// A restreaming run with `passes=1` is byte-identical to the plain
/// single-pass algorithm: the multi-pass engine must be a pure superset of
/// today's single-pass behavior.
#[test]
fn single_pass_restream_is_byte_identical_to_one_pass() {
    run_cases(32, |rng| {
        let graph = arbitrary_graph(rng, 20, 150);
        let k = rng.gen_range(1u32..12);
        let seed = rng.gen_range(0u64..1000);
        for (multi, single) in [
            (
                format!("fennel:{k}@seed={seed},passes=1"),
                format!("fennel:{k}@seed={seed}"),
            ),
            (
                format!("ldg:{k}@seed={seed},passes=1"),
                format!("ldg:{k}@seed={seed}"),
            ),
            (
                format!("hashing:{k}@seed={seed},passes=1"),
                format!("hashing:{k}@seed={seed}"),
            ),
            (
                format!("nh-oms:{k}@seed={seed},passes=1"),
                format!("nh-oms:{k}@seed={seed}"),
            ),
        ] {
            let a = JobSpec::parse(&multi)
                .unwrap()
                .build()
                .unwrap()
                .partition(&mut InMemoryStream::new(&graph))
                .unwrap();
            let b = JobSpec::parse(&single)
                .unwrap()
                .build()
                .unwrap()
                .partition(&mut InMemoryStream::new(&graph))
                .unwrap();
            assert_eq!(a, b, "{multi} vs {single}");
        }
    });
}

/// Multi-pass restreaming keeps the balance constraint
/// `L_max = ⌈(1+ε)·c(V)/k⌉` in *every* accepted pass, and the recorded
/// edge-cut trajectory is non-increasing (the engine reverts a pass that
/// overshoots).
#[test]
fn multi_pass_balance_holds_and_cut_never_increases() {
    run_cases(24, |rng| {
        let graph = arbitrary_graph(rng, 30, 150);
        let n = graph.num_nodes() as u64;
        let k = rng.gen_range(2u32..8);
        let seed = rng.gen_range(0u64..1000);
        let passes = rng.gen_range(2usize..5);
        let capacity = Partition::capacity(graph.total_node_weight(), k, 0.03);
        let allowed = capacity as f64 / (n as f64 / k as f64) - 1.0;
        for algo in ["fennel", "ldg", "nh-oms"] {
            let spec = format!("{algo}:{k}@seed={seed},passes={passes}");
            let report = JobSpec::parse(&spec)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&graph))
                .unwrap();
            assert!(!report.trajectory.is_empty(), "{spec}");
            assert!(
                report
                    .trajectory
                    .windows(2)
                    .all(|w| w[1].edge_cut <= w[0].edge_cut),
                "{spec}: non-increasing trajectory violated: {:?}",
                report.trajectory
            );
            for stats in &report.trajectory {
                assert!(
                    stats.imbalance <= allowed + 1e-9,
                    "{spec}: pass {} violates L_max: {stats:?} (allowed {allowed:.4})",
                    stats.pass
                );
            }
            assert_eq!(
                report.trajectory.last().unwrap().edge_cut,
                report.edge_cut,
                "{spec}: final pass is the returned partition"
            );
            assert!(report.partition.max_block_weight() <= capacity, "{spec}");
        }
    });
}

/// Traffic replay conserves its accounting on arbitrary graphs,
/// assignments and admission policies: every request is either served or
/// rejected, the per-block queue totals sum to exactly the request-hop
/// count, cross-block hops never exceed total hops, and the percentile
/// ordering holds. A stress variant (all requests at tick 0 against a tiny
/// backlog cap) forces the rejection path.
#[test]
fn replay_conservation_holds_for_arbitrary_workloads() {
    run_cases(32, |rng| {
        let graph = arbitrary_graph(rng, 2, 120);
        let k = rng.gen_range(1u32..10);
        let assignments: Vec<BlockId> = (0..graph.num_nodes())
            .map(|_| rng.gen_range(0..k))
            .collect();
        let base = ReplayConfig {
            requests: rng.gen_range(1usize..400),
            hops: rng.gen_range(0usize..12),
            zipf_exponent: [0.0, 0.8, 1.1, 1.6][rng.gen_range(0..4usize)],
            hop_penalty: rng.gen_range(0u64..10),
            arrival_every: rng.gen_range(0u64..4),
            max_backlog: 0,
            seed: rng.gen_range(0u64..1000),
        };
        let stress = ReplayConfig {
            arrival_every: 0,
            max_backlog: rng.gen_range(1u64..6),
            ..base
        };
        for config in [base, stress] {
            let report = replay_graph(&graph, &assignments, &config);
            assert_eq!(report.requests, report.served + report.rejected);
            assert_eq!(
                report.block_load.iter().sum::<u64>(),
                report.total_hops,
                "per-block queue totals must sum to the request-hop count"
            );
            assert!(report.cross_block_hops <= report.total_hops);
            assert!(report.p50_latency <= report.p99_latency);
            if report.served > 0 {
                assert!(report.total_hops >= report.served as u64);
            } else {
                assert_eq!(report.total_hops, 0);
            }
        }
    });
}

/// The Zipf sampler is sane: samples stay in range, a skewed exponent
/// prefers the top rank over the bottom rank, and a fixed seed reproduces
/// the exact draw sequence.
#[test]
fn zipf_sampler_is_skewed_in_range_and_deterministic() {
    run_cases(32, |rng| {
        let n = rng.gen_range(2usize..200);
        let exponent = [0.8, 1.1, 1.5][rng.gen_range(0..3usize)];
        let sampler = ZipfSampler::new(n, exponent);
        let seed = rng.gen_range(0u64..1000);
        let mut counts = vec![0u64; n];
        let mut draw_rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..2000 {
            let rank = sampler.sample(&mut draw_rng);
            assert!(rank < n, "sampled rank {rank} out of range 0..{n}");
            counts[rank] += 1;
        }
        assert!(
            counts[0] >= counts[n - 1],
            "rank 0 ({}) must be drawn at least as often as rank {} ({})",
            counts[0],
            n - 1,
            counts[n - 1]
        );
        // Reproducibility: the same seed replays the identical sequence.
        let mut a = ChaCha8Rng::seed_from_u64(seed);
        let mut b = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut a), sampler.sample(&mut b));
        }
    });
}

/// The engine's fixed-point exit: once a pass moves no node, further
/// passes are skipped — a generous pass budget therefore never runs the
/// full budget on a converged instance (hashing converges after pass 1 by
/// construction).
#[test]
fn fixed_point_exit_fires_for_hashing() {
    run_cases(24, |rng| {
        let graph = arbitrary_graph(rng, 10, 100);
        let k = rng.gen_range(1u32..8);
        let seed = rng.gen_range(0u64..1000);
        let report = JobSpec::parse(&format!("hashing:{k}@seed={seed},passes=9"))
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        assert!(
            report.trajectory.len() <= 2,
            "hashing must reach its fixed point after one pass: {:?}",
            report.trajectory
        );
    });
}
