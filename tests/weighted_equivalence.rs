//! Unit-weight equivalence suite (the C-FAR contract of the weighted
//! pipeline).
//!
//! Threading node and edge weights through the stream format, the scorers,
//! the capacity constraint and the metrics must leave the unweighted world
//! *exactly* as it was: a graph whose weights are all 1 has to produce
//! **byte-identical** assignments and per-pass trajectories no matter
//!
//! * whether the weights are implicit (no weight sections on disk, the
//!   pre-existing unweighted path) or explicit (forced weight sections full
//!   of 1s, the weighted path),
//! * which stream source delivers the nodes (in-memory, chunked, disk v1,
//!   disk v2 — synchronous and double-buffered), and
//! * how many restreaming passes run (1 or 3).
//!
//! On top of the unit-weight contract, the suite checks that *weighted*
//! runs are themselves source-independent, that the balance constraint
//! bounds block **weights** (not node counts), and that the one shared
//! weighted-cut implementation agrees with the in-memory reference.

use oms::graph::io::{
    write_stream_file, write_stream_file_v1, write_stream_file_with, DiskStream, StreamWriteOptions,
};
use oms::graph::{ChunkedStream, GraphError, NodeWeight};
use oms::prelude::*;
use std::path::PathBuf;

/// A trajectory stripped to its comparable fields (pass, cut, imbalance,
/// moved).
type Trajectory = Vec<(usize, u64, f64, usize)>;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("oms-weighted-equivalence-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every registered algorithm family × passes ∈ {1, 3}, pinned to a fixed
/// seed.
fn registry_specs() -> Vec<String> {
    let bases = [
        "fennel:8@seed=3",
        "ldg:8@seed=3",
        "hashing:8@seed=3",
        "oms:2:2:2@seed=3",
        "nh-oms:8@seed=3",
        "multilevel:8@seed=3",
        "rms:2:2:2@seed=3",
        "buffered:8@seed=3,buf=100",
    ];
    let mut specs = Vec::new();
    for base in bases {
        specs.push(base.to_string());
        specs.push(format!("{base},passes=3"));
    }
    specs
}

fn strip(t: PassTrajectory) -> Trajectory {
    t.stats
        .into_iter()
        .map(|s| (s.pass, s.edge_cut, s.imbalance, s.moved))
        .collect()
}

fn run(partitioner: &dyn Partitioner, stream: &mut dyn NodeStream) -> (Vec<BlockId>, Trajectory) {
    let (partition, trajectory) = partitioner
        .partition_tracked(stream)
        .expect("partitioning succeeds");
    (partition.assignments().to_vec(), strip(trajectory))
}

/// The heart of the suite: a unit-weight graph streamed through every
/// weighted representation must reproduce the classic unweighted run
/// byte for byte — assignments *and* trajectories.
#[test]
fn unit_weights_are_byte_identical_across_all_sources_and_passes() {
    register_multilevel_algorithms();
    let graph = planted_partition(600, 8, 0.1, 0.005, 23);
    assert!(graph.is_unweighted());

    // The same topology with *explicit* unit weights, built through the
    // weighted APIs.
    let explicit = graph
        .with_node_weights(vec![1; graph.num_nodes()])
        .unwrap()
        .map_edge_weights(|_, _, w| w)
        .unwrap();
    assert_eq!(graph, explicit);

    let dir = temp_dir();
    let v1_path = dir.join("unit-v1.oms");
    let v2_path = dir.join("unit-v2.oms");
    let forced_path = dir.join("unit-v2-forced.oms");
    write_stream_file_v1(&graph, &v1_path).unwrap();
    write_stream_file(&graph, &v2_path).unwrap();
    // Forced sections: the file carries full weight arrays of 1s, so the
    // decoder takes the weighted path end to end.
    write_stream_file_with(
        &graph,
        &forced_path,
        StreamWriteOptions {
            force_node_weights: true,
            force_edge_weights: true,
            ..StreamWriteOptions::default()
        },
    )
    .unwrap();

    for spec in registry_specs() {
        let partitioner = JobSpec::parse(&spec).unwrap().build().unwrap();
        // The pre-existing unweighted path: in-memory, implicit weights.
        let reference = run(&*partitioner, &mut InMemoryStream::new(&graph));
        assert_eq!(
            reference.0.len(),
            graph.num_nodes(),
            "{spec}: incomplete partition"
        );

        let explicit_mem = run(&*partitioner, &mut InMemoryStream::new(&explicit));
        assert_eq!(
            reference, explicit_mem,
            "{spec}: explicit in-memory weights differ"
        );

        let chunked = run(
            &*partitioner,
            &mut ChunkedStream::new(&graph, NodeOrdering::Natural),
        );
        assert_eq!(reference, chunked, "{spec}: chunked stream differs");

        for (name, path) in [
            ("disk v1", &v1_path),
            ("disk v2", &v2_path),
            ("disk v2 forced weights", &forced_path),
        ] {
            for double_buffered in [false, true] {
                let mut disk = DiskStream::open(path)
                    .unwrap()
                    .double_buffered(double_buffered);
                assert_eq!(
                    reference,
                    run(&*partitioner, &mut disk),
                    "{spec}: {name} (double_buffered = {double_buffered}) differs"
                );
            }
        }
    }
    for path in [&v1_path, &v2_path, &forced_path] {
        std::fs::remove_file(path).ok();
    }
}

/// Genuinely weighted runs must be just as source-independent as
/// unweighted ones: memory, chunked and both disk versions agree byte for
/// byte on a node- and edge-weighted graph.
#[test]
fn weighted_runs_are_source_independent() {
    register_multilevel_algorithms();
    let base = planted_partition(500, 8, 0.1, 0.005, 29);
    let graph = WeightScheme::Full.apply(&base, 11);
    assert!(!graph.is_unweighted());

    let dir = temp_dir();
    let v1_path = dir.join("weighted-v1.oms");
    let v2_path = dir.join("weighted-v2.oms");
    write_stream_file_v1(&graph, &v1_path).unwrap();
    write_stream_file(&graph, &v2_path).unwrap();
    // v2 states c(V) in the header, v1 derives it with a counting pass —
    // both must agree before any algorithm runs.
    assert_eq!(
        DiskStream::open(&v1_path).unwrap().total_node_weight(),
        graph.total_node_weight()
    );
    assert_eq!(
        DiskStream::open(&v2_path).unwrap().total_node_weight(),
        graph.total_node_weight()
    );

    for spec in registry_specs() {
        let partitioner = JobSpec::parse(&spec).unwrap().build().unwrap();
        let reference = run(&*partitioner, &mut InMemoryStream::new(&graph));
        let chunked = run(
            &*partitioner,
            &mut ChunkedStream::new(&graph, NodeOrdering::Natural),
        );
        assert_eq!(
            reference, chunked,
            "{spec}: chunked differs on weighted graph"
        );
        for (name, path) in [("disk v1", &v1_path), ("disk v2", &v2_path)] {
            let mut disk = DiskStream::open(path).unwrap();
            assert_eq!(
                reference,
                run(&*partitioner, &mut disk),
                "{spec}: {name} differs on weighted graph"
            );
        }
    }
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
}

/// `L_max` is a *weight* capacity: on a weighted graph, the streaming
/// scorers must keep every block's total node weight within
/// `⌈(1+ε)·c(V)/k⌉` whenever a feasible block exists, and the partition's
/// bookkeeping must sum weights, not node counts.
#[test]
fn balance_constraint_bounds_block_weights() {
    register_multilevel_algorithms();
    let base = erdos_renyi_gnm(800, 3200, 7);
    let graph = WeightScheme::Nodes.apply(&base, 13);
    let capacity = Partition::capacity(graph.total_node_weight(), 8, 0.03);
    for spec in ["fennel:8@seed=3", "ldg:8@seed=3", "oms:2:2:2@seed=3"] {
        let report = JobSpec::parse(spec)
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        assert_eq!(
            report.total_node_weight(),
            graph.total_node_weight(),
            "{spec}: block weights must sum to c(V)"
        );
        // A single node may weigh up to DEFAULT_MAX_NODE_WEIGHT; the greedy
        // fallback can overfill by at most one node's weight.
        let slack = oms::gen::weights::DEFAULT_MAX_NODE_WEIGHT;
        assert!(
            report.max_block_weight() <= capacity + slack,
            "{spec}: max block weight {} far exceeds L_max {capacity}",
            report.max_block_weight()
        );
        assert!(
            report.partition.validate(graph.node_weights()),
            "{spec}: cached block weights disagree with the node weights"
        );
    }
}

/// The one shared weighted-cut implementation: the stream-side cut
/// (`measure_pass` / `stream_edge_cut`) and the in-memory
/// `Partition::edge_cut` agree on weighted graphs, and the multi-pass
/// trajectory's final entry is the weighted cut of the returned partition.
#[test]
fn weighted_cut_agrees_between_stream_and_memory() {
    let base = barabasi_albert(600, 3, 17);
    let graph = WeightScheme::Full.apply(&base, 19);
    let report = JobSpec::parse("fennel:8@seed=3,passes=3")
        .unwrap()
        .build()
        .unwrap()
        .run(&mut InMemoryStream::new(&graph))
        .unwrap();
    assert_eq!(report.edge_cut, report.partition.edge_cut(&graph));
    assert_eq!(
        oms::core::stream_edge_cut(
            &mut InMemoryStream::new(&graph),
            report.partition.assignments()
        )
        .unwrap(),
        report.edge_cut
    );
    assert_eq!(
        oms::metrics::edge_cut(&graph, report.partition.assignments()),
        report.edge_cut
    );
    let last = report.trajectory.last().expect("multi-pass trajectory");
    assert_eq!(last.edge_cut, report.edge_cut);
}

/// Weighted multi-pass runs over a corrupted weighted file die with the
/// typed error on every pass — never with a panic, and never partitioning a
/// prefix.
#[test]
fn weighted_multi_pass_over_corrupt_files_is_a_typed_error() {
    let base = planted_partition(300, 4, 0.1, 0.01, 31);
    let graph = WeightScheme::Full.apply(&base, 5);
    let dir = temp_dir();

    // Truncated weighted v2 file.
    let path = dir.join("weighted-truncated.oms");
    write_stream_file(&graph, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
    let mut stream = DiskStream::open(&path).unwrap();
    let partitioner = JobSpec::parse("fennel:4@seed=3,passes=3")
        .unwrap()
        .build()
        .unwrap();
    let err = partitioner.partition(&mut stream).unwrap_err();
    assert!(
        err.to_string().contains("truncated"),
        "expected the typed truncation error, got: {err}"
    );

    // Zero node weight smuggled into the body (header total adjusted so the
    // zero-weight check, not the total check, fires).
    let zero_path = dir.join("weighted-zero.oms");
    write_stream_file(&graph, &zero_path).unwrap();
    let mut bytes = std::fs::read(&zero_path).unwrap();
    let w0 = graph.node_weight(0);
    bytes[33..41].copy_from_slice(&0u64.to_le_bytes());
    bytes[24..32].copy_from_slice(&(graph.total_node_weight() - w0).to_le_bytes());
    std::fs::write(&zero_path, &bytes).unwrap();
    let mut stream = DiskStream::open(&zero_path).unwrap();
    match partitioner.partition(&mut stream).unwrap_err() {
        oms::core::PartitionError::Graph(GraphError::WeightOutOfRange { what, value, .. }) => {
            assert_eq!(what, "node");
            assert_eq!(value, 0);
        }
        other => panic!("expected WeightOutOfRange, got: {other}"),
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&zero_path).ok();
}

/// METIS round trip composed with the weighted pipeline: write → parse →
/// partition gives the identical report for the original and re-read graph.
#[test]
fn weighted_metis_roundtrip_preserves_partitioning() {
    use oms::graph::io::{read_metis_str, write_metis_string};
    let base = erdos_renyi_gnm(400, 1600, 3);
    let graph = WeightScheme::Full.apply(&base, 7);
    let text = write_metis_string(&graph).unwrap();
    let reread = read_metis_str(&text).unwrap();
    assert_eq!(graph, reread);
    let partitioner = JobSpec::parse("oms:2:2:2@seed=3").unwrap().build().unwrap();
    let a = partitioner.run(&mut InMemoryStream::new(&graph)).unwrap();
    let b = partitioner.run(&mut InMemoryStream::new(&reread)).unwrap();
    assert_eq!(a.partition, b.partition);
    assert_eq!(a.edge_cut, b.edge_cut);
}

/// Legacy v1 files with weight sections keep reading correctly, and a
/// graph v1 cannot represent (a weight beyond u32) is a typed write error
/// rather than silent truncation.
#[test]
fn v1_compatibility_and_overflow_protection() {
    let base = erdos_renyi_gnm(200, 800, 9);
    let graph = WeightScheme::Full.apply(&base, 3);
    let dir = temp_dir();
    let path = dir.join("compat-v1.oms");
    write_stream_file_v1(&graph, &path).unwrap();
    let back = oms::graph::io::read_stream_file(&path).unwrap();
    assert_eq!(graph, back);

    let heavy = graph
        .with_node_weights(
            (0..graph.num_nodes())
                .map(|v| {
                    if v == 0 {
                        u32::MAX as NodeWeight + 1
                    } else {
                        1
                    }
                })
                .collect(),
        )
        .unwrap();
    match write_stream_file_v1(&heavy, dir.join("overflow.oms")).unwrap_err() {
        GraphError::WeightOutOfRange {
            what, value, max, ..
        } => {
            assert_eq!(what, "node");
            assert_eq!(value, u32::MAX as u64 + 1);
            assert_eq!(max, u32::MAX as u64);
        }
        other => panic!("expected WeightOutOfRange, got: {other}"),
    }
    // v2 handles it losslessly, through the whole pipeline.
    let heavy_path = dir.join("heavy-v2.oms");
    write_stream_file(&heavy, &heavy_path).unwrap();
    let mut stream = DiskStream::open(&heavy_path).unwrap();
    assert_eq!(stream.total_node_weight(), heavy.total_node_weight());
    let mut max_seen: NodeWeight = 0;
    stream
        .stream_nodes(|n| max_seen = max_seen.max(n.weight))
        .unwrap();
    assert_eq!(max_seen, u32::MAX as NodeWeight + 1);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(dir.join("overflow.oms")).ok();
    std::fs::remove_file(&heavy_path).ok();
}

/// Edge weights must actually steer the scorers: on a graph whose
/// intra-community edges are heavy and whose bridges are light, the
/// weighted cut of a quality scorer beats hashing by a wide margin — and
/// differs from what the same scorer produces when the weights are
/// stripped (proof that the weights reach the objective).
#[test]
fn edge_weights_steer_the_scorers() {
    let base = planted_partition(600, 4, 0.1, 0.01, 41);
    // Heavy inside communities (same block in the planted ground truth ≈
    // close ids), light across.
    let weighted = base
        .map_edge_weights(|u, v, _| if u / 150 == v / 150 { 100 } else { 1 })
        .unwrap();
    let fennel = JobSpec::parse("fennel:4@seed=3").unwrap().build().unwrap();
    let hashing = JobSpec::parse("hashing:4@seed=3").unwrap().build().unwrap();
    let weighted_cut = fennel
        .run(&mut InMemoryStream::new(&weighted))
        .unwrap()
        .edge_cut;
    let hashing_cut = hashing
        .run(&mut InMemoryStream::new(&weighted))
        .unwrap()
        .edge_cut;
    assert!(
        weighted_cut * 2 < hashing_cut,
        "fennel {weighted_cut} should be far below hashing {hashing_cut} on weighted communities"
    );
    // The weighted assignment differs from the unweighted one: weights are
    // not decorative.
    let unweighted_assign = fennel
        .run(&mut InMemoryStream::new(&base))
        .unwrap()
        .partition;
    let weighted_assign = fennel
        .run(&mut InMemoryStream::new(&weighted))
        .unwrap()
        .partition;
    assert_ne!(
        unweighted_assign.assignments(),
        weighted_assign.assignments(),
        "edge weights must influence the scoring decisions"
    );
}
