//! # oms — Recursive Multi-Section on the Fly
//!
//! A Rust reproduction of *"Recursive Multi-Section on the Fly: Shared-Memory
//! Streaming Algorithms for Hierarchical Graph Partitioning and Process
//! Mapping"* (Faraj & Schulz, CLUSTER 2022).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`graph`] (`oms-graph`) — CSR graphs, builders, streaming iterators, I/O;
//! * [`gen`] (`oms-gen`) — synthetic benchmark graph generators;
//! * [`core`](mod@core) (`oms-core`) — the streaming partitioners: Fennel, LDG,
//!   Hashing, and the paper's online recursive multi-section (OMS / nh-OMS),
//!   including the shared-memory parallel drivers and restreaming variants;
//! * [`mapping`] (`oms-mapping`) — hierarchical topologies, the mapping
//!   objective `J(C, D, Π)`, greedy block→PE construction and local search;
//! * [`multilevel`] (`oms-multilevel`) — the in-memory multilevel baseline;
//! * [`metrics`] (`oms-metrics`) — evaluation statistics, performance
//!   profiles, memory accounting and reporting.
//!
//! ## Quickstart
//!
//! ```
//! use oms::prelude::*;
//!
//! // A graph with two communities joined by a single bridge.
//! let graph = CsrGraph::from_edges(8, &[
//!     (0, 1), (1, 2), (2, 3), (3, 0),
//!     (4, 5), (5, 6), (6, 7), (7, 4),
//!     (0, 4),
//! ]).unwrap();
//!
//! // Stream it onto a 2-processors × 2-cores machine in a single pass.
//! let hierarchy = HierarchySpec::parse("2:2").unwrap();
//! let topology = Topology::parse("2:2", "1:10").unwrap();
//! let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
//! let partition = oms.partition_graph(&graph).unwrap();
//!
//! assert_eq!(partition.num_blocks(), 4);
//! let j = mapping_cost(&graph, partition.assignments(), &topology);
//! let cut = edge_cut(&graph, partition.assignments());
//! assert!(j >= cut); // every cut edge costs at least distance 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oms_core as core;
pub use oms_gen as gen;
pub use oms_graph as graph;
pub use oms_mapping as mapping;
pub use oms_metrics as metrics;
pub use oms_multilevel as multilevel;

/// The most common imports in one place.
pub mod prelude {
    pub use oms_core::{
        AlphaMode, BlockId, DistanceSpec, Fennel, Hashing, HierarchySpec, Ldg, OmsConfig,
        OnePassConfig, OnlineMultiSection, Partition, ScorerKind, StreamingPartitioner,
    };
    pub use oms_gen::{
        barabasi_albert, delaunay_graph, erdos_renyi_gnm, grid_2d, planted_partition,
        random_geometric_graph, rmat_graph,
    };
    pub use oms_graph::{CsrGraph, GraphBuilder, InMemoryStream, NodeOrdering, NodeStream};
    pub use oms_mapping::{mapping_cost, offline_block_mapping, remap_partition, Topology};
    pub use oms_metrics::{edge_cut, geometric_mean, improvement_percent};
    pub use oms_multilevel::{MultilevelConfig, MultilevelPartitioner, RecursiveMultisection};
}
