//! # oms — Recursive Multi-Section on the Fly
//!
//! A Rust reproduction of *"Recursive Multi-Section on the Fly: Shared-Memory
//! Streaming Algorithms for Hierarchical Graph Partitioning and Process
//! Mapping"* (Faraj & Schulz, CLUSTER 2022).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`graph`] (`oms-graph`) — CSR graphs, builders, streaming iterators, I/O;
//! * [`gen`] (`oms-gen`) — synthetic benchmark graph generators;
//! * [`core`](mod@core) (`oms-core`) — the streaming partitioners: Fennel, LDG,
//!   Hashing, and the paper's online recursive multi-section (OMS / nh-OMS),
//!   including the shared-memory parallel drivers and restreaming variants,
//!   plus the unified object-safe [`Partitioner`](prelude::Partitioner) API;
//! * [`mapping`] (`oms-mapping`) — hierarchical topologies, the mapping
//!   objective `J(C, D, Π)`, greedy block→PE construction and local search;
//! * [`multilevel`] (`oms-multilevel`) — the in-memory multilevel baseline;
//! * [`edgepart`] (`oms-edgepart`) — streaming **vertex-cut** edge
//!   partitioning (`e-hash`, `e-dbh`, the HDRF-style `e-greedy`) with
//!   replication-factor tracking and multi-pass re-streaming;
//! * [`dynamic`] (`oms-dynamic`) — long-lived partition maintenance on
//!   evolving graphs: delta ingestion, local repair, drift-triggered
//!   restream fallback and warm restart from on-disk snapshots;
//! * [`metrics`] (`oms-metrics`) — evaluation statistics, performance
//!   profiles, memory accounting and reporting;
//! * [`workload`] (`oms-workload`) — the seeded traffic-replay simulator:
//!   Zipf-skewed random-walk requests with per-block queueing, measuring a
//!   partition by the latency users would see;
//! * [`obs`] (`oms-obs`) — the runtime observability layer: deterministic
//!   event tracing with a bounded flight recorder and an event-log hash,
//!   allocation-free counters and log-bucketed histograms, plus JSON-lines,
//!   text-table and Prometheus-style exporters.
//!
//! ## Quickstart
//!
//! Any algorithm in the workspace can be driven from one
//! [`JobSpec`](prelude::JobSpec) string through the shared dispatch
//! registry:
//!
//! ```
//! use oms::prelude::*;
//!
//! // A graph with two communities joined by a single bridge.
//! let graph = CsrGraph::from_edges(8, &[
//!     (0, 1), (1, 2), (2, 3), (3, 0),
//!     (4, 5), (5, 6), (6, 7), (7, 4),
//!     (0, 4),
//! ]).unwrap();
//!
//! // Stream it onto a 2-processors × 2-cores machine in a single pass and
//! // evaluate both objectives (edge-cut and the mapping cost J).
//! let job: JobSpec = "oms:2:2@dist=1:10".parse().unwrap();
//! let report = job.build().unwrap()
//!     .run(&mut InMemoryStream::new(&graph)).unwrap();
//!
//! assert_eq!(report.partition.num_blocks(), 4);
//! assert_eq!(report.partition.assignments().len(), 8);
//! assert!(report.mapping_cost.unwrap() >= report.edge_cut);
//!
//! // The in-memory baselines plug into the same registry:
//! register_multilevel_algorithms();
//! let baseline = JobSpec::parse("multilevel:4").unwrap().build().unwrap()
//!     .run(&mut InMemoryStream::new(&graph)).unwrap();
//! assert_eq!(baseline.partition.num_nodes(), 8);
//! ```
//!
//! The classic concrete-type APIs
//! ([`OnlineMultiSection`](prelude::OnlineMultiSection),
//! [`Fennel`](prelude::Fennel), …) remain available for callers that want
//! compile-time dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oms_core as core;
pub use oms_dynamic as dynamic;
pub use oms_edgepart as edgepart;
pub use oms_gen as gen;
pub use oms_graph as graph;
pub use oms_mapping as mapping;
pub use oms_metrics as metrics;
pub use oms_multilevel as multilevel;
pub use oms_obs as obs;
pub use oms_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use oms_core::{
        find_algorithm, refine_partition, register_algorithm, registered_algorithms, AlgorithmInfo,
        AlphaMode, BatchExecutor, BlockId, DistanceSpec, Fennel, FlatObjective, Hashing,
        HierarchySpec, JobShape, JobSpec, Ldg, NodeSink, OmsConfig, OnePassConfig,
        OnlineMultiSection, Partition, PartitionReport, Partitioner, PassStats, PassTrajectory,
        ReFennel, ReHashing, ReLdg, ReOms, RepairPolicy, RestreamOptions, ScorerKind, ShardStats,
        ShardedFlat, StreamingPartitioner,
    };
    pub use oms_dynamic::{
        ApplyStats, Checkpoints, DynamicGraph, PartitionState, TraceCursor, WindowStats,
    };
    pub use oms_edgepart::{
        build_edge_partitioner, find_edge_algorithm, is_edge_algorithm, registered_edge_algorithms,
        EdgePartition, EdgePartitionReport, EdgePartitioner, EdgePassStats,
        StreamingEdgePartitioner,
    };
    pub use oms_gen::{
        barabasi_albert, churn_trace, degree_proportional_edge_weights, delaunay_graph,
        erdos_renyi_gnm, grid_2d, planted_partition, power_law_node_weights,
        random_geometric_graph, rmat_graph, temporal_trace, ChurnConfig, ChurnScheme,
        TemporalConfig, TemporalScheme, WeightScheme,
    };
    pub use oms_graph::{
        read_delta_trace, write_delta_trace, CsrGraph, Delta, DeltaBatch, EdgeBatch, EdgeStream,
        EdgesOf, GraphBuilder, InMemoryStream, NodeBatch, NodeOrdering, NodeStream, PerNodeBatches,
        StreamedEdge,
    };
    pub use oms_mapping::{mapping_cost, offline_block_mapping, remap_partition, Topology};
    pub use oms_metrics::{
        edge_cut, geometric_mean, improvement_percent, max_cut_ratio, message_skew,
        repair_vs_restream_speedup, CheckpointComparison, ReplayPoint,
    };
    pub use oms_multilevel::{
        register_algorithms as register_multilevel_algorithms, BufferedMultilevel,
        MultilevelConfig, MultilevelPartitioner, RecursiveMultisection,
    };
    pub use oms_obs::{
        CounterId, Event, FlightRecorder, HistId, Histogram, HistogramSnapshot, Metrics,
        NoopObserver, ObsCore, ObsGuard, Observer, Stopwatch, TraceSummary,
    };
    pub use oms_workload::{
        replay_edge_partition, replay_graph, replay_stream, replica_sets, ReplayConfig,
        ReplayReport, ZipfSampler,
    };
}
