//! # oms-metrics
//!
//! Quality metrics, experiment statistics and reporting for the OMS
//! evaluation.
//!
//! The paper's methodology (§4) averages ten repetitions per instance
//! arithmetically, then aggregates over instances with the geometric mean,
//! expresses results as *improvement over* a baseline
//! (`(σ_B/σ_A − 1)·100 %`) and presents per-instance *performance profiles*.
//! This crate implements exactly that pipeline so that every benchmark
//! binary reports numbers in the paper's own terms:
//!
//! * [`quality`] — edge-cut and balance of a partition;
//! * [`stats`] — arithmetic/geometric means, improvements, speedups;
//! * [`profile`] — performance profiles (the τ-curves of Fig. 2d–f);
//! * [`memory`] — the `O(n + k)` vs `O(n + m)` memory accounting of §4.1;
//! * [`timing`] — wall-clock measurement with repetitions;
//! * [`report`] — plain-text and CSV table output;
//! * [`trajectory`] — per-pass quality trajectories of restreaming runs;
//! * [`vertex_cut`] — replication factor and edge-balance of vertex-cut
//!   (edge) partitions;
//! * [`replay`] — quality-over-time curves mixing maintained cut with
//!   traffic-replay latency at sliding-window checkpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod memory;
pub mod profile;
pub mod quality;
pub mod replay;
pub mod report;
pub mod stats;
pub mod timing;
pub mod trajectory;
pub mod vertex_cut;

pub use dynamic::{
    checkpoint_table, max_cut_ratio, repair_vs_restream_speedup, CheckpointComparison,
};
pub use memory::{graph_memory_bytes, streaming_memory_bytes, MemoryEstimate};
pub use profile::PerformanceProfile;
pub use quality::{block_weights, edge_cut, imbalance, max_block_weight};
pub use replay::{
    max_cut_ratio_over_time, max_p99, quality_over_time_table, replay_gap_percent, ReplayPoint,
};
pub use report::Table;
pub use stats::{arithmetic_mean, geometric_mean, improvement_percent, message_skew, speedup};
pub use timing::{measure, measure_repeated};
pub use trajectory::{cut_reduction_percent, effective_convergence_pass, trajectory_table};
pub use vertex_cut::{replication_factor, vertex_cut_metrics, VertexCutMetrics};
