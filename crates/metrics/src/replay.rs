//! Quality-over-time curves: replay and maintenance metrics sampled at
//! sliding-window checkpoints.
//!
//! The temporal suites drive a maintained partition through a timestamped
//! delta trace and, at every window checkpoint, measure both the
//! structural quality (cut, imbalance, against a cold-restream yardstick)
//! and the *served* quality (cross-block hop rate and latency percentiles
//! from a traffic replay). One [`ReplayPoint`] records a checkpoint;
//! [`quality_over_time_table`] renders the curve. This module holds plain
//! records — it does not depend on the simulator (`oms-workload`); callers
//! copy the numbers over.

use crate::report::Table;

/// One checkpoint of a quality-over-time curve: structural and replayed
/// quality of the maintained partition at that moment of the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayPoint {
    /// Checkpoint index (0-based, dense).
    pub checkpoint: usize,
    /// Maintained edge cut at the checkpoint.
    pub edge_cut: u64,
    /// Cold-restream reference cut of the same graph state.
    pub restream_cut: u64,
    /// Maintained imbalance at the checkpoint.
    pub imbalance: f64,
    /// Cross-block hop rate of the replay at this checkpoint.
    pub cross_block_hop_rate: f64,
    /// Replayed p50 latency (ticks).
    pub p50_latency: u64,
    /// Replayed p99 latency (ticks).
    pub p99_latency: u64,
}

impl ReplayPoint {
    /// Maintained cut relative to the cold-restream yardstick (`1.0` when
    /// both are zero, `+∞` when only the yardstick reached zero).
    pub fn cut_ratio(&self) -> f64 {
        match (self.edge_cut, self.restream_cut) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (cut, re) => cut as f64 / re as f64,
        }
    }
}

/// The worst p99 latency across the curve (`0` for an empty curve).
pub fn max_p99(curve: &[ReplayPoint]) -> u64 {
    curve.iter().map(|p| p.p99_latency).max().unwrap_or(0)
}

/// The worst cut ratio across the curve (`1.0` for an empty curve).
pub fn max_cut_ratio_over_time(curve: &[ReplayPoint]) -> f64 {
    curve.iter().map(ReplayPoint::cut_ratio).fold(1.0, f64::max)
}

/// How much better (in percent) a candidate replay metric is than a
/// baseline: `(baseline / candidate - 1) * 100`. Positive means the
/// candidate improves on the baseline; `0.0` when the candidate is zero.
pub fn replay_gap_percent(baseline: f64, candidate: f64) -> f64 {
    if candidate == 0.0 {
        0.0
    } else {
        (baseline / candidate - 1.0) * 100.0
    }
}

/// Renders a quality-over-time curve as a table with one row per
/// checkpoint (`checkpoint, cut, re_cut, ratio, imb, hop_rate, p50,
/// p99`).
pub fn quality_over_time_table(title: &str, curve: &[ReplayPoint]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "checkpoint",
            "cut",
            "re_cut",
            "ratio",
            "imb",
            "hop_rate",
            "p50",
            "p99",
        ],
    );
    for p in curve {
        table.add_row(vec![
            p.checkpoint.to_string(),
            p.edge_cut.to_string(),
            p.restream_cut.to_string(),
            format!("{:.3}", p.cut_ratio()),
            format!("{:.4}", p.imbalance),
            format!("{:.4}", p.cross_block_hop_rate),
            p.p50_latency.to_string(),
            p.p99_latency.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(checkpoint: usize, cut: u64, re: u64, p99: u64) -> ReplayPoint {
        ReplayPoint {
            checkpoint,
            edge_cut: cut,
            restream_cut: re,
            imbalance: 0.03,
            cross_block_hop_rate: 0.4,
            p50_latency: 10,
            p99_latency: p99,
        }
    }

    #[test]
    fn cut_ratio_handles_zero_cuts() {
        assert_eq!(point(0, 120, 100, 50).cut_ratio(), 1.2);
        assert_eq!(point(0, 0, 0, 50).cut_ratio(), 1.0);
        assert_eq!(point(0, 5, 0, 50).cut_ratio(), f64::INFINITY);
    }

    #[test]
    fn aggregates_cover_the_curve() {
        let curve = [
            point(0, 110, 100, 40),
            point(1, 150, 100, 90),
            point(2, 90, 100, 60),
        ];
        assert_eq!(max_p99(&curve), 90);
        assert_eq!(max_cut_ratio_over_time(&curve), 1.5);
        assert_eq!(max_p99(&[]), 0);
        assert_eq!(max_cut_ratio_over_time(&[]), 1.0);
    }

    #[test]
    fn gap_percent_is_signed() {
        assert!((replay_gap_percent(120.0, 100.0) - 20.0).abs() < 1e-12);
        assert!(replay_gap_percent(80.0, 100.0) < 0.0);
        assert_eq!(replay_gap_percent(80.0, 0.0), 0.0);
    }

    #[test]
    fn table_has_one_row_per_checkpoint() {
        let t = quality_over_time_table("temporal", &[point(0, 110, 100, 42)]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_csv().contains("checkpoint,cut,re_cut,ratio"));
        assert!(t.to_csv().contains("1.100"));
        assert!(t.to_csv().contains("42"));
    }
}
