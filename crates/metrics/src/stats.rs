//! Experiment statistics following the paper's methodology (§4).

/// Arithmetic mean (0 for an empty slice), used to average repetitions of the
/// same instance.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean (0 for an empty slice), used to average across instances so
/// that every instance has the same influence. Non-positive values are
/// clamped to a small positive constant, mirroring the usual treatment of
/// zero-cost instances in partitioning papers.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The paper's "improvement over" metric: `(σ_B / σ_A − 1) · 100 %`, i.e. how
/// much *better* algorithm A is than baseline B when lower values are better.
pub fn improvement_percent(value_a: f64, baseline_b: f64) -> f64 {
    (baseline_b / value_a.max(1e-9) - 1.0) * 100.0
}

/// Speedup of A over B: `time_B / time_A`.
pub fn speedup(time_a: f64, time_b: f64) -> f64 {
    time_b / time_a.max(1e-12)
}

/// Skew of a per-worker message (or work) distribution: the maximum count
/// over the mean, so `1.0` means perfectly even and `S` means one of `S`
/// workers carried everything. Returns `1.0` for empty or all-zero counts,
/// matching the convention that no traffic is trivially balanced.
pub fn message_skew(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if counts.is_empty() || total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    *counts.iter().max().unwrap() as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_handles_zero_values() {
        let g = geometric_mean(&[0.0, 100.0]);
        assert!(g.is_finite());
        assert!(g >= 0.0);
    }

    #[test]
    fn improvement_over_matches_paper_definition() {
        // A cuts 100 edges, B cuts 200: A improves 100 % over B.
        assert!((improvement_percent(100.0, 200.0) - 100.0).abs() < 1e-9);
        // A cuts 200, B cuts 100: A is 50 % worse.
        assert!((improvement_percent(200.0, 100.0) + 50.0).abs() < 1e-9);
        // Equal values → 0 %.
        assert!(improvement_percent(5.0, 5.0).abs() < 1e-9);
    }

    #[test]
    fn message_skew_basics() {
        assert_eq!(message_skew(&[]), 1.0);
        assert_eq!(message_skew(&[0, 0, 0]), 1.0);
        assert!((message_skew(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
        // One of four workers carries everything: skew = 4.
        assert!((message_skew(&[40, 0, 0, 0]) - 4.0).abs() < 1e-12);
        assert!((message_skew(&[30, 10]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_definition() {
        assert!((speedup(1.0, 10.0) - 10.0).abs() < 1e-12);
        assert!((speedup(10.0, 1.0) - 0.1).abs() < 1e-12);
    }
}
