//! Wall-clock measurement helpers.
//!
//! The paper performs ten repetitions per algorithm and instance and reports
//! the arithmetic mean of the measured running times. [`measure_repeated`]
//! reproduces that protocol with a configurable repetition count.

/// Runs `f` once and returns `(result, seconds)`.
///
/// Delegates to [`oms_obs::time`] so every wall-clock measurement in the
/// workspace flows through the one shared stopwatch.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    oms_obs::time(f)
}

/// Runs `f` `repetitions` times and returns `(last_result, mean_seconds)`.
///
/// # Panics
///
/// Panics if `repetitions == 0`.
pub fn measure_repeated<T>(repetitions: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(repetitions > 0, "need at least one repetition");
    let mut total = 0.0;
    let mut last = None;
    for _ in 0..repetitions {
        let (result, secs) = measure(&mut f);
        total += secs;
        last = Some(result);
    }
    (last.unwrap(), total / repetitions as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_result_and_positive_time() {
        let (value, secs) = measure(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn measure_repeated_averages() {
        let mut calls = 0;
        let (value, secs) = measure_repeated(5, || {
            calls += 1;
            calls
        });
        assert_eq!(value, 5);
        assert_eq!(calls, 5);
        assert!(secs >= 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_repetitions_panics() {
        measure_repeated(0, || ());
    }
}
