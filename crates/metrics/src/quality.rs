//! Partition quality metrics.

use oms_core::BlockId;
use oms_graph::CsrGraph;
use rayon::prelude::*;

/// Weight of the edges whose endpoints lie in different blocks.
pub fn edge_cut(graph: &CsrGraph, assignment: &[BlockId]) -> u64 {
    assert!(assignment.len() >= graph.num_nodes());
    (0..graph.num_nodes() as u32)
        .into_par_iter()
        .map(|u| {
            graph
                .neighbors_weighted(u)
                .filter(|&(v, _)| u < v && assignment[u as usize] != assignment[v as usize])
                .map(|(_, w)| w)
                .sum::<u64>()
        })
        .sum()
}

/// Imbalance `max_i c(V_i)/(c(V)/k) − 1` of an assignment into `k` blocks.
pub fn imbalance(graph: &CsrGraph, assignment: &[BlockId], k: u32) -> f64 {
    let weights = block_weights(graph, assignment, k);
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *weights.iter().max().unwrap() as f64;
    max / (total as f64 / k as f64) - 1.0
}

/// Per-block total node weights `c(V_i)` of an assignment into `k` blocks —
/// the weighted face of "block sizes" (the two coincide only on unweighted
/// graphs).
pub fn block_weights(graph: &CsrGraph, assignment: &[BlockId], k: u32) -> Vec<u64> {
    assert!(assignment.len() >= graph.num_nodes());
    let mut weights = vec![0u64; k as usize];
    for v in graph.nodes() {
        weights[assignment[v as usize] as usize] += graph.node_weight(v);
    }
    weights
}

/// Weight of the heaviest block, `max_i c(V_i)` — the quantity the balance
/// constraint `L_max = ⌈(1+ε)·c(V)/k⌉` bounds.
pub fn max_block_weight(graph: &CsrGraph, assignment: &[BlockId], k: u32) -> u64 {
    block_weights(graph, assignment, k)
        .into_iter()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cut_matches_partition_method() {
        let g = oms_gen::planted_partition(200, 4, 0.1, 0.02, 3);
        let assignment: Vec<BlockId> = (0..200).map(|v| (v % 4) as BlockId).collect();
        let p = oms_core::Partition::from_assignments_unit(4, assignment.clone());
        assert_eq!(edge_cut(&g, &assignment), p.edge_cut(&g));
    }

    #[test]
    fn cut_of_uniform_assignment_is_zero() {
        let g = oms_gen::erdos_renyi_gnm(50, 200, 1);
        assert_eq!(edge_cut(&g, &[0; 50]), 0);
    }

    #[test]
    fn imbalance_of_even_split() {
        let g = CsrGraph::empty(8);
        let assignment: Vec<BlockId> = (0..8).map(|v| (v % 2) as BlockId).collect();
        assert!(imbalance(&g, &assignment, 2).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_everything_in_one_block() {
        let g = CsrGraph::empty(8);
        let assignment = vec![0 as BlockId; 8];
        assert!((imbalance(&g, &assignment, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_weights_respect_node_weights() {
        let mut b = oms_graph::GraphBuilder::new(4);
        b.set_node_weight(0, 10).unwrap();
        b.set_node_weight(3, 5).unwrap();
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        let assignment = vec![0, 0, 1, 1];
        assert_eq!(block_weights(&g, &assignment, 2), vec![11, 6]);
        assert_eq!(max_block_weight(&g, &assignment, 2), 11);
        // Weighted imbalance diverges from the unweighted count-based one.
        assert!((imbalance(&g, &assignment, 2) - (11.0 / 8.5 - 1.0)).abs() < 1e-12);
    }
}
