//! Checkpoint-level comparison of incremental maintenance against cold
//! restreaming.
//!
//! The dynamic layer (`oms-dynamic`) applies delta batches and reports
//! quality at a checkpoint after every batch; the natural yardstick at each
//! checkpoint is a cold restream of the *current* graph from scratch. This
//! module holds the record type for one such comparison plus the aggregates
//! the churn suites assert on: the worst cut ratio across checkpoints and
//! the end-to-end repair-vs-restream speedup.

use crate::report::Table;

/// One checkpoint's quality/cost of incremental maintenance next to a cold
/// restream of the same graph state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointComparison {
    /// Checkpoint index (0-based; one per applied batch).
    pub checkpoint: usize,
    /// Deltas applied in the batch that ended at this checkpoint.
    pub deltas: usize,
    /// Edge cut of the incrementally maintained partition.
    pub incremental_cut: u64,
    /// Imbalance of the incrementally maintained partition.
    pub incremental_imbalance: f64,
    /// Wall-clock seconds spent applying the batch incrementally.
    pub incremental_seconds: f64,
    /// Edge cut of the cold-restream reference.
    pub restream_cut: u64,
    /// Imbalance of the cold-restream reference.
    pub restream_imbalance: f64,
    /// Wall-clock seconds of the cold-restream reference.
    pub restream_seconds: f64,
}

impl CheckpointComparison {
    /// Incremental cut relative to the restream reference. `1.0` when both
    /// cuts are zero; `+∞` when only the reference reached zero.
    pub fn cut_ratio(&self) -> f64 {
        match (self.incremental_cut, self.restream_cut) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (inc, re) => inc as f64 / re as f64,
        }
    }

    /// Incremental cost as a fraction of the restream cost (`< 1` means the
    /// repair path was cheaper). `0.0` when the reference took no time.
    pub fn cost_fraction(&self) -> f64 {
        if self.restream_seconds > 0.0 {
            self.incremental_seconds / self.restream_seconds
        } else {
            0.0
        }
    }
}

/// The worst (largest) [`CheckpointComparison::cut_ratio`] across the run —
/// the number the churn suites bound. `1.0` for an empty run.
pub fn max_cut_ratio(checkpoints: &[CheckpointComparison]) -> f64 {
    checkpoints
        .iter()
        .map(CheckpointComparison::cut_ratio)
        .fold(1.0, f64::max)
}

/// End-to-end speedup of incremental maintenance over restreaming at every
/// checkpoint: total restream seconds divided by total incremental seconds.
/// `+∞` when the incremental path took no measurable time, `1.0` for an
/// empty run.
pub fn repair_vs_restream_speedup(checkpoints: &[CheckpointComparison]) -> f64 {
    if checkpoints.is_empty() {
        return 1.0;
    }
    let inc: f64 = checkpoints.iter().map(|c| c.incremental_seconds).sum();
    let re: f64 = checkpoints.iter().map(|c| c.restream_seconds).sum();
    if inc > 0.0 {
        re / inc
    } else {
        f64::INFINITY
    }
}

/// Renders the comparison as a table with one row per checkpoint
/// (`checkpoint, deltas, inc_cut, re_cut, ratio, inc_imb, re_imb,
/// inc_sec, re_sec`).
pub fn checkpoint_table(title: &str, checkpoints: &[CheckpointComparison]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "checkpoint",
            "deltas",
            "inc_cut",
            "re_cut",
            "ratio",
            "inc_imb",
            "re_imb",
            "inc_sec",
            "re_sec",
        ],
    );
    for c in checkpoints {
        table.add_row(vec![
            c.checkpoint.to_string(),
            c.deltas.to_string(),
            c.incremental_cut.to_string(),
            c.restream_cut.to_string(),
            format!("{:.3}", c.cut_ratio()),
            format!("{:.4}", c.incremental_imbalance),
            format!("{:.4}", c.restream_imbalance),
            format!("{:.4}", c.incremental_seconds),
            format!("{:.4}", c.restream_seconds),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(inc_cut: u64, re_cut: u64, inc_sec: f64, re_sec: f64) -> CheckpointComparison {
        CheckpointComparison {
            checkpoint: 0,
            deltas: 10,
            incremental_cut: inc_cut,
            incremental_imbalance: 0.02,
            incremental_seconds: inc_sec,
            restream_cut: re_cut,
            restream_imbalance: 0.02,
            restream_seconds: re_sec,
        }
    }

    #[test]
    fn cut_ratio_handles_zero_cuts() {
        assert_eq!(sample(120, 100, 0.1, 1.0).cut_ratio(), 1.2);
        assert_eq!(sample(0, 0, 0.1, 1.0).cut_ratio(), 1.0);
        assert_eq!(sample(5, 0, 0.1, 1.0).cut_ratio(), f64::INFINITY);
    }

    #[test]
    fn aggregates_cover_the_whole_run() {
        let run = [
            sample(110, 100, 0.1, 1.0),
            sample(150, 100, 0.2, 1.5),
            sample(90, 100, 0.1, 0.5),
        ];
        assert_eq!(max_cut_ratio(&run), 1.5);
        let speedup = repair_vs_restream_speedup(&run);
        assert!((speedup - 3.0 / 0.4).abs() < 1e-12);
        assert_eq!(max_cut_ratio(&[]), 1.0);
        assert_eq!(repair_vs_restream_speedup(&[]), 1.0);
    }

    #[test]
    fn table_has_one_row_per_checkpoint() {
        let t = checkpoint_table("churn", &[sample(110, 100, 0.1, 1.0)]);
        assert_eq!(t.num_rows(), 1);
        assert!(t
            .to_csv()
            .contains("checkpoint,deltas,inc_cut,re_cut,ratio"));
        assert!(t.to_csv().contains("1.100"));
    }
}
