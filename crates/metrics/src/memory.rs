//! Memory accounting (§4.1 "Memory Requirements").
//!
//! The decisive difference between the streaming algorithms and the
//! in-memory baselines is their working-set size: a one-pass algorithm keeps
//! one block id per node plus `O(k)` block weights (Theorem 1), whereas an
//! in-memory partitioner must hold the whole graph. This module provides the
//! analytic estimates used by the memory experiment, plus a best-effort RSS
//! reading on Linux for an end-to-end sanity check.

use oms_graph::CsrGraph;

/// An analytic memory estimate in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Bytes needed for per-node state (assignments).
    pub node_state: usize,
    /// Bytes needed for per-block state (weights of blocks and sub-blocks).
    pub block_state: usize,
    /// Bytes needed to hold the graph itself (0 for streaming algorithms
    /// reading from disk).
    pub graph_state: usize,
}

impl MemoryEstimate {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.node_state + self.block_state + self.graph_state
    }

    /// Total mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }
}

/// Memory of a streaming algorithm run: one `u32` assignment per node plus
/// `tree_blocks` block weights (`≤ 2k` by Lemma 1 for OMS, exactly `k` for
/// flat algorithms), streaming the graph from disk.
pub fn streaming_memory_bytes(num_nodes: usize, tree_blocks: usize) -> MemoryEstimate {
    MemoryEstimate {
        node_state: num_nodes * std::mem::size_of::<u32>(),
        block_state: tree_blocks * std::mem::size_of::<u64>(),
        graph_state: 0,
    }
}

/// Memory of an in-memory algorithm: the CSR arrays plus one assignment per
/// node plus `k` block weights.
pub fn graph_memory_bytes(graph: &CsrGraph, k: usize) -> MemoryEstimate {
    MemoryEstimate {
        node_state: graph.num_nodes() * std::mem::size_of::<u32>(),
        block_state: k * std::mem::size_of::<u64>(),
        graph_state: graph.memory_bytes(),
    }
}

/// Best-effort resident-set size of the current process in bytes (Linux
/// `/proc/self/status`, `VmRSS`); `None` when unavailable.
pub fn current_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: usize = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_memory_is_linear_in_n_plus_k() {
        let small = streaming_memory_bytes(1000, 64);
        let big_n = streaming_memory_bytes(100_000, 64);
        let big_k = streaming_memory_bytes(1000, 8192);
        assert!(big_n.total() > small.total());
        assert!(big_k.total() > small.total());
        assert_eq!(small.graph_state, 0);
    }

    #[test]
    fn in_memory_footprint_dominates_streaming_footprint() {
        let g = oms_gen::erdos_renyi_gnm(5000, 40_000, 1);
        let streaming = streaming_memory_bytes(g.num_nodes(), 2 * 8192);
        let in_memory = graph_memory_bytes(&g, 8192);
        assert!(
            in_memory.total() > 5 * streaming.total(),
            "in-memory {} vs streaming {}",
            in_memory.total(),
            streaming.total()
        );
    }

    #[test]
    fn totals_and_units() {
        let e = MemoryEstimate {
            node_state: 1024 * 1024,
            block_state: 1024 * 1024,
            graph_state: 2 * 1024 * 1024,
        };
        assert_eq!(e.total(), 4 * 1024 * 1024);
        assert!((e.total_mib() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rss_reading_is_plausible_on_linux() {
        if let Some(rss) = current_rss_bytes() {
            assert!(rss > 1024 * 1024, "RSS suspiciously small: {rss}");
        }
    }
}
