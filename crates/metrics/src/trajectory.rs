//! Per-pass trajectory reporting for multi-pass (restreaming) runs.
//!
//! The multi-pass engine in `oms-core` records one
//! [`PassStats`] per accepted pass; this module turns such trajectories
//! into the evaluation pipeline's terms: a [`Table`] row per pass for the
//! experiment CSVs, and aggregate measures (total cut reduction, the pass
//! at which the run effectively converged) used by the quality-vs-passes
//! experiments.

use crate::report::Table;
use oms_core::PassStats;

/// Renders a trajectory as a table with one row per pass
/// (`pass, edge_cut, imbalance, moved, seconds`).
pub fn trajectory_table(title: &str, stats: &[PassStats]) -> Table {
    let mut table = Table::new(
        title,
        &["pass", "edge_cut", "imbalance", "moved", "seconds"],
    );
    for s in stats {
        table.add_row(vec![
            s.pass.to_string(),
            s.edge_cut.to_string(),
            format!("{:.4}", s.imbalance),
            s.moved.to_string(),
            format!("{:.4}", s.seconds),
        ]);
    }
    table
}

/// Total relative edge-cut reduction of the run, in percent:
/// `(cut_first − cut_last) / cut_first · 100`. `0` for empty or
/// single-entry trajectories and for a zero initial cut.
pub fn cut_reduction_percent(stats: &[PassStats]) -> f64 {
    match (stats.first(), stats.last()) {
        (Some(first), Some(last)) if first.edge_cut > 0 => {
            (first.edge_cut.saturating_sub(last.edge_cut)) as f64 / first.edge_cut as f64 * 100.0
        }
        _ => 0.0,
    }
}

/// The pass index after which further passes stopped paying off: the first
/// pass whose relative improvement over its predecessor fell below
/// `threshold` (e.g. `0.01` = 1 %), or the last pass when every step kept
/// improving. `None` for empty trajectories.
pub fn effective_convergence_pass(stats: &[PassStats], threshold: f64) -> Option<usize> {
    if stats.is_empty() {
        return None;
    }
    for w in stats.windows(2) {
        let (prev, cur) = (w[0].edge_cut, w[1].edge_cut);
        let gained = prev.saturating_sub(cur) as f64;
        if gained < threshold * prev.max(1) as f64 {
            return Some(w[1].pass);
        }
    }
    stats.last().map(|s| s.pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cuts: &[u64]) -> Vec<PassStats> {
        cuts.iter()
            .enumerate()
            .map(|(i, &c)| PassStats {
                pass: i,
                edge_cut: c,
                imbalance: 0.01,
                moved: 10,
                seconds: 0.1,
            })
            .collect()
    }

    #[test]
    fn table_has_one_row_per_pass() {
        let t = trajectory_table("run", &stats(&[100, 80, 75]));
        assert_eq!(t.num_rows(), 3);
        assert!(t.to_csv().contains("pass,edge_cut,imbalance,moved,seconds"));
        assert!(t.to_csv().contains("1,80,"));
    }

    #[test]
    fn cut_reduction_is_relative_to_the_first_pass() {
        assert!((cut_reduction_percent(&stats(&[100, 80, 75])) - 25.0).abs() < 1e-12);
        assert_eq!(cut_reduction_percent(&stats(&[0, 0])), 0.0);
        assert_eq!(cut_reduction_percent(&[]), 0.0);
    }

    #[test]
    fn convergence_pass_finds_the_first_small_step() {
        // 100 → 80 (20 %), 80 → 79 (1.25 %), 79 → 78 — with a 5 % threshold
        // the second step is the first that is too small.
        let s = stats(&[100, 80, 79, 78]);
        assert_eq!(effective_convergence_pass(&s, 0.05), Some(2));
        assert_eq!(effective_convergence_pass(&s, 0.001), Some(3));
        assert_eq!(effective_convergence_pass(&[], 0.05), None);
    }
}
