//! Performance profiles (the τ-curves of Fig. 2d–f).
//!
//! A performance profile relates each algorithm to the best algorithm on a
//! per-instance basis: for a factor `τ ≥ 1`, the profile value of algorithm
//! `A` is the fraction of instances on which `A`'s objective (or running
//! time) is within a factor `τ` of the best algorithm on that instance.

use std::collections::BTreeMap;

/// Builder and evaluator of performance profiles for a set of algorithms
/// over a set of instances. Lower objective values are better.
#[derive(Clone, Debug, Default)]
pub struct PerformanceProfile {
    /// algorithm → per-instance values, keyed by instance name.
    values: BTreeMap<String, BTreeMap<String, f64>>,
}

impl PerformanceProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the objective of `algorithm` on `instance`.
    pub fn record(&mut self, algorithm: &str, instance: &str, value: f64) {
        self.values
            .entry(algorithm.to_string())
            .or_default()
            .insert(instance.to_string(), value);
    }

    /// The algorithms recorded so far.
    pub fn algorithms(&self) -> Vec<String> {
        self.values.keys().cloned().collect()
    }

    /// The instances on which *every* recorded algorithm has a value
    /// (profiles are only meaningful on the common instance set).
    pub fn common_instances(&self) -> Vec<String> {
        let mut iter = self.values.values();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut common: Vec<String> = first.keys().cloned().collect();
        for other in iter {
            common.retain(|i| other.contains_key(i));
        }
        common
    }

    /// Fraction of common instances on which `algorithm` is within factor
    /// `tau` of the per-instance best. Returns `None` for unknown algorithms.
    pub fn fraction_within(&self, algorithm: &str, tau: f64) -> Option<f64> {
        let instances = self.common_instances();
        if instances.is_empty() {
            return Some(0.0);
        }
        let mine = self.values.get(algorithm)?;
        let mut within = 0usize;
        for instance in &instances {
            let best = self
                .values
                .values()
                .filter_map(|per_instance| per_instance.get(instance))
                .fold(f64::INFINITY, |a, &b| a.min(b));
            let value = mine[instance];
            if value <= tau * best.max(1e-12) + 1e-12 {
                within += 1;
            }
        }
        Some(within as f64 / instances.len() as f64)
    }

    /// Evaluates the profile of every algorithm at the given `taus`,
    /// returning `(algorithm, curve)` pairs.
    pub fn curves(&self, taus: &[f64]) -> Vec<(String, Vec<f64>)> {
        self.algorithms()
            .into_iter()
            .map(|alg| {
                let curve = taus
                    .iter()
                    .map(|&t| self.fraction_within(&alg, t).unwrap_or(0.0))
                    .collect();
                (alg, curve)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerformanceProfile {
        let mut p = PerformanceProfile::new();
        // Instance i1: A best (10), B = 20, C = 40.
        p.record("A", "i1", 10.0);
        p.record("B", "i1", 20.0);
        p.record("C", "i1", 40.0);
        // Instance i2: B best (5), A = 10, C = 5.
        p.record("A", "i2", 10.0);
        p.record("B", "i2", 5.0);
        p.record("C", "i2", 5.0);
        p
    }

    #[test]
    fn best_algorithm_has_full_profile_at_large_tau() {
        let p = sample();
        for alg in ["A", "B", "C"] {
            assert_eq!(p.fraction_within(alg, 100.0), Some(1.0));
        }
    }

    #[test]
    fn tau_one_counts_wins() {
        let p = sample();
        assert_eq!(p.fraction_within("A", 1.0), Some(0.5));
        assert_eq!(p.fraction_within("B", 1.0), Some(0.5));
        assert_eq!(p.fraction_within("C", 1.0), Some(0.5));
    }

    #[test]
    fn intermediate_tau() {
        let p = sample();
        // At τ = 2: A within (10≤20, 10≤10) → 1.0; C: 40>20 on i1, 5≤10 on i2 → 0.5.
        assert_eq!(p.fraction_within("A", 2.0), Some(1.0));
        assert_eq!(p.fraction_within("C", 2.0), Some(0.5));
    }

    #[test]
    fn unknown_algorithm_is_none() {
        assert_eq!(sample().fraction_within("nope", 2.0), None);
    }

    #[test]
    fn common_instances_ignore_partial_records() {
        let mut p = sample();
        p.record("A", "only-a", 1.0);
        assert_eq!(
            p.common_instances(),
            vec!["i1".to_string(), "i2".to_string()]
        );
    }

    #[test]
    fn curves_cover_all_algorithms() {
        let p = sample();
        let curves = p.curves(&[1.0, 2.0, 4.0]);
        assert_eq!(curves.len(), 3);
        for (_, curve) in curves {
            assert_eq!(curve.len(), 3);
            // Profiles are non-decreasing in τ.
            assert!(curve.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }
}
