//! Vertex-cut (edge partitioning) quality metrics.
//!
//! A vertex-cut assigns every **edge** to one of `k` blocks; a vertex is
//! *replicated* into every block that holds at least one of its incident
//! edges. Quality is the **replication factor** — the average number of
//! replicas per non-isolated vertex — under an edge-weight balance
//! constraint over the blocks. These helpers recompute all of it from
//! scratch, independently of the incremental state the streaming
//! partitioners in `oms-edgepart` maintain, so the two implementations
//! cross-check each other.
//!
//! Edge indexing follows [`CsrGraph::edges`] order (each undirected edge
//! once, `u < v`, grouped by the smaller endpoint) — the same order every
//! [`oms_graph::EdgesOf`] stream induces, so an assignment produced by the
//! streaming pipeline can be evaluated here directly.

use oms_core::BlockId;
use oms_graph::CsrGraph;

/// The recomputed quality of one edge assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexCutMetrics {
    /// Replication factor `Σ_v |R(v)| / |{v : deg(v) > 0}|` (`1.0` when the
    /// graph has no edges).
    pub replication_factor: f64,
    /// Total replica count `Σ_v |R(v)|`.
    pub total_replicas: u64,
    /// Number of non-isolated vertices (the denominator of the replication
    /// factor).
    pub covered_vertices: u64,
    /// Largest per-vertex replica set `max_v |R(v)|`.
    pub max_replicas: u32,
    /// Mean replicas per non-isolated vertex — an alias for the replication
    /// factor, kept for symmetry with `max_replicas`.
    pub mean_replicas: f64,
    /// Edge-weight imbalance `max_b ω(E_b) / (ω(E)/k) − 1`.
    pub imbalance: f64,
    /// Total assigned edge weight per block, `ω(E_b)`.
    pub block_loads: Vec<u64>,
}

/// Per-vertex replica counts `|R(v)|` of an edge assignment (zero for
/// isolated vertices). `assignments[i]` is the block of the `i`-th edge in
/// [`CsrGraph::edges`] order.
pub fn replica_counts(graph: &CsrGraph, assignments: &[BlockId]) -> Vec<u32> {
    assert!(
        assignments.len() >= graph.num_edges(),
        "assignment must cover every edge"
    );
    let mut replicas: Vec<Vec<BlockId>> = vec![Vec::new(); graph.num_nodes()];
    for (i, (u, v, _)) in graph.edges().enumerate() {
        let b = assignments[i];
        for x in [u, v] {
            let set = &mut replicas[x as usize];
            if !set.contains(&b) {
                set.push(b);
            }
        }
    }
    replicas.into_iter().map(|r| r.len() as u32).collect()
}

/// The replication factor implied by per-vertex replica counts (`1.0` when
/// no vertex is covered).
pub fn replication_factor(replica_counts: &[u32]) -> f64 {
    let covered = replica_counts.iter().filter(|&&r| r > 0).count();
    if covered == 0 {
        return 1.0;
    }
    let total: u64 = replica_counts.iter().map(|&r| r as u64).sum();
    total as f64 / covered as f64
}

/// Total assigned edge weight per block, `ω(E_b)`.
pub fn edge_block_loads(graph: &CsrGraph, assignments: &[BlockId], k: u32) -> Vec<u64> {
    assert!(assignments.len() >= graph.num_edges());
    let mut loads = vec![0u64; k as usize];
    for (i, (_, _, w)) in graph.edges().enumerate() {
        loads[assignments[i] as usize] += w;
    }
    loads
}

/// Recomputes the full [`VertexCutMetrics`] of an edge assignment into `k`
/// blocks.
pub fn vertex_cut_metrics(graph: &CsrGraph, assignments: &[BlockId], k: u32) -> VertexCutMetrics {
    let counts = replica_counts(graph, assignments);
    let total_replicas: u64 = counts.iter().map(|&r| r as u64).sum();
    let covered_vertices = counts.iter().filter(|&&r| r > 0).count() as u64;
    let max_replicas = counts.iter().copied().max().unwrap_or(0);
    let rf = replication_factor(&counts);
    let block_loads = edge_block_loads(graph, assignments, k);
    let total: u64 = block_loads.iter().sum();
    let imbalance = if total == 0 {
        0.0
    } else {
        let max = *block_loads.iter().max().unwrap() as f64;
        max / (total as f64 / k.max(1) as f64) - 1.0
    };
    VertexCutMetrics {
        replication_factor: rf,
        total_replicas,
        covered_vertices,
        max_replicas,
        mean_replicas: rf,
        imbalance,
        block_loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        CsrGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn single_block_assignment_has_replication_factor_one() {
        let g = path(6);
        let m = vertex_cut_metrics(&g, &vec![0; g.num_edges()], 4);
        assert_eq!(m.replication_factor, 1.0);
        assert_eq!(m.max_replicas, 1);
        assert_eq!(m.total_replicas, 6);
        assert_eq!(m.covered_vertices, 6);
        // All weight in one of four blocks: imbalance = k − 1.
        assert!((m.imbalance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_assignment_replicates_interior_vertices() {
        // Path 0-1-2-3 with edges alternating between blocks 0 and 1: the
        // interior vertices 1 and 2 hold two replicas each.
        let g = path(4);
        let m = vertex_cut_metrics(&g, &[0, 1, 0], 2);
        assert_eq!(m.total_replicas, 6);
        assert_eq!(m.max_replicas, 2);
        assert!((m.replication_factor - 1.5).abs() < 1e-12);
        assert_eq!(m.block_loads, vec![2, 1]);
    }

    #[test]
    fn isolated_vertices_do_not_dilute_the_replication_factor() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]).unwrap();
        let m = vertex_cut_metrics(&g, &[2], 4);
        assert_eq!(m.covered_vertices, 2);
        assert_eq!(m.replication_factor, 1.0);
        let counts = replica_counts(&g, &[2]);
        assert_eq!(counts, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn empty_graph_is_unreplicated() {
        let g = CsrGraph::empty(3);
        let m = vertex_cut_metrics(&g, &[], 2);
        assert_eq!(m.replication_factor, 1.0);
        assert_eq!(m.imbalance, 0.0);
        assert_eq!(m.total_replicas, 0);
    }

    /// Property: RF == 1.0 *exactly* when every vertex's incident edges
    /// land in a single block, whatever the graph and assignment.
    #[test]
    fn replication_factor_is_one_iff_every_vertex_is_single_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xEDBE);
        for case in 0..64 {
            let n = rng.gen_range(2..60usize);
            let g = oms_gen::erdos_renyi_gnm(n, rng.gen_range(0..3 * n), case);
            let k = rng.gen_range(1u32..8);
            // Mix single-block and random assignments across cases.
            let assignments: Vec<BlockId> = if case % 2 == 0 {
                vec![rng.gen_range(0..k); g.num_edges()]
            } else {
                (0..g.num_edges()).map(|_| rng.gen_range(0..k)).collect()
            };
            let counts = replica_counts(&g, &assignments);
            let rf = replication_factor(&counts);
            let single_block_everywhere = counts.iter().all(|&r| r <= 1);
            assert_eq!(
                rf == 1.0,
                single_block_everywhere || g.num_edges() == 0,
                "case {case}: rf = {rf}, counts = {counts:?}"
            );
        }
    }

    /// Property: on any graph and any assignment into `k` blocks,
    /// `RF ≤ min(k, Δ)` where `Δ` is the maximum degree — a vertex cannot
    /// be replicated into more blocks than exist, nor more often than it
    /// has edges.
    #[test]
    fn replication_factor_is_bounded_by_k_and_max_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xEDBF);
        for case in 0..64 {
            let n = rng.gen_range(2..80usize);
            let g = oms_gen::erdos_renyi_gnm(n, rng.gen_range(1..4 * n), case + 1000);
            if g.num_edges() == 0 {
                continue;
            }
            let k = rng.gen_range(1u32..12);
            let assignments: Vec<BlockId> =
                (0..g.num_edges()).map(|_| rng.gen_range(0..k)).collect();
            let counts = replica_counts(&g, &assignments);
            // The per-vertex bound is the sharp one; the aggregate bound
            // follows from it.
            for (v, &r) in counts.iter().enumerate() {
                let bound = (k as usize).min(g.degree(v as u32));
                assert!(
                    r as usize <= bound,
                    "case {case}: vertex {v} has {r} replicas, bound {bound}"
                );
            }
            let rf = replication_factor(&counts);
            let bound = (k as usize).min(g.max_degree()) as f64;
            assert!(rf <= bound + 1e-12, "case {case}: rf = {rf} > {bound}");
            assert!(rf >= 1.0, "case {case}");
        }
    }

    #[test]
    fn weighted_loads_follow_edge_weights() {
        let mut b = oms_graph::GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 5).unwrap();
        b.add_weighted_edge(1, 2, 7).unwrap();
        let g = b.build();
        let loads = edge_block_loads(&g, &[1, 0], 2);
        assert_eq!(loads, vec![7, 5]);
    }
}
