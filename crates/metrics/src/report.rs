//! Plain-text and CSV table output for the benchmark binaries.

use std::fmt::Write as _;

/// A simple column-aligned table that can also be serialised as CSV.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            let line = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ");
            let _ = writeln!(out, "{line}");
        };
        render(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["graph", "k", "cut"]);
        t.add_row(vec!["rgg".into(), "64".into(), "123".into()]);
        t.add_row(vec!["del".into(), "128".into(), "45".into()]);
        t
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let text = sample().to_text();
        for token in ["demo", "graph", "rgg", "64", "123", "del", "45"] {
            assert!(text.contains(token), "missing {token} in\n{text}");
        }
    }

    #[test]
    fn csv_rendering_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "graph,k,cut");
        assert_eq!(lines[1], "rgg,64,123");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t", &["name"]);
        t.add_row(vec!["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn row_count() {
        assert_eq!(sample().num_rows(), 2);
    }
}
