//! The streaming edge-partitioning algorithms: `e-hash`, `e-dbh` and the
//! HDRF-style `e-greedy`.
//!
//! All three share one crate-internal sink (`AlgoSink`) holding the
//! vertex-cut state — per-edge assignments, per-block edge loads, per-vertex
//! partial degrees and per-vertex replica multisets — and differ only in how
//! a block is chosen for the edge at hand:
//!
//! * **`e-hash`** hashes the edge key `(u, v)`: perfectly balanced in
//!   expectation and oblivious to structure — the quality floor every
//!   smarter partitioner must beat. A fixed point after one pass.
//! * **`e-dbh`** (degree-based hashing) hashes the endpoint with the
//!   *smaller* partial degree: a hub's edges follow the hashes of its many
//!   low-degree neighbors and spread across blocks, while each low-degree
//!   vertex keeps its edges together. On the first pass degrees are the
//!   partial counts observed so far; once a pass completes they are exact,
//!   so a second pass re-hashes under full degrees and a third pass is a
//!   fixed point.
//! * **`e-greedy`** (HDRF) scores every block `b` by replica affinity plus a
//!   λ-weighted balance term and assigns greedily:
//!
//!   ```text
//!   score(b) = g(u, b) + g(v, b) + λ · (maxload − load(b)) / (1 + maxload − minload)
//!   g(x, b)  = 1 + (1 − θ(x))   if b ∈ R(x), else 0,    θ(x) = δ(x) / (δ(u) + δ(v))
//!   ```
//!
//!   The degree-normalised affinity `1 + (1 − θ)` prefers co-locating the
//!   *lower*-degree endpoint's replicas (its few edges are cheap to keep
//!   together; the hub is replicated anyway — the highest-degree-replicated
//!   intuition HDRF is named after). Ties break towards the smallest block
//!   id, so the algorithm is deterministic.
//!
//!   The soft term alone cannot guarantee balance: affinity contributes at
//!   least 1 whenever an endpoint is already replicated, while the balance
//!   term is bounded by λ — on a connected graph streamed in vertex order
//!   every edge after the first has a replicated endpoint, so small λ would
//!   collapse the whole stream into one block. `e-greedy` therefore also
//!   enforces a **hard capacity** of `L_max = ⌈(1+ε)·m/k⌉` *edges* per
//!   block (`m` is announced by every stream up front, weighted or not):
//!   full blocks are excluded from selection, and since the capacities sum
//!   to more than `m` a feasible block always remains. λ then tunes the
//!   replication-vs-balance trade-off *inside* the feasible region.
//!
//! Multi-pass behavior re-streams edges through the shared engine
//! ([`crate::engine::run_edge_restream`]): each edge is un-assigned (replica
//! counts and loads are decremented) and re-scored against the rest of the
//! current assignment.

use crate::api::EdgePartitioner;
use crate::engine::{run_edge_restream, EdgePassStats, EdgeQuality, EdgeSink};
use crate::partition::EdgePartition;
use oms_core::partition::UNASSIGNED;
use oms_core::{BlockId, PartitionError, RestreamOptions, Result};
use oms_graph::{EdgeStream, NodeId, StreamedEdge};

/// Which block-selection rule a [`StreamingEdgePartitioner`] applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeAlgoKind {
    /// Uniform hashing of the edge key (`e-hash`).
    Hash,
    /// Degree-based hashing of the lower-degree endpoint (`e-dbh`).
    Dbh,
    /// HDRF-style greedy with the λ balance knob (`e-greedy`).
    Greedy,
}

impl EdgeAlgoKind {
    /// Registry name of the rule.
    pub fn name(&self) -> &'static str {
        match self {
            EdgeAlgoKind::Hash => "e-hash",
            EdgeAlgoKind::Dbh => "e-dbh",
            EdgeAlgoKind::Greedy => "e-greedy",
        }
    }
}

/// A configured streaming edge partitioner (any of the three rules).
#[derive(Clone, Copy, Debug)]
pub struct StreamingEdgePartitioner {
    kind: EdgeAlgoKind,
    k: u32,
    seed: u64,
    lambda: f64,
    epsilon: f64,
    passes: usize,
    convergence: f64,
}

impl StreamingEdgePartitioner {
    /// A partitioner of the given `kind` into `k` blocks, with default
    /// options (seed 0, λ = 1, a single pass).
    pub fn new(kind: EdgeAlgoKind, k: u32) -> Self {
        StreamingEdgePartitioner {
            kind,
            k,
            seed: 0,
            lambda: oms_core::api::DEFAULT_LAMBDA,
            epsilon: oms_core::api::DEFAULT_EPSILON,
            passes: 1,
            convergence: 0.0,
        }
    }

    /// The `e-hash` rule for `k` blocks.
    pub fn hashing(k: u32) -> Self {
        Self::new(EdgeAlgoKind::Hash, k)
    }

    /// The `e-dbh` rule for `k` blocks.
    pub fn degree_hashing(k: u32) -> Self {
        Self::new(EdgeAlgoKind::Dbh, k)
    }

    /// The `e-greedy` (HDRF) rule for `k` blocks.
    pub fn greedy(k: u32) -> Self {
        Self::new(EdgeAlgoKind::Greedy, k)
    }

    /// Sets the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the balance weight λ (only `e-greedy` reads it).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the allowed edge-count imbalance ε of `e-greedy`'s hard
    /// capacity `L_max = ⌈(1+ε)·m/k⌉`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.max(0.0);
        self
    }

    /// Sets the re-streaming pass budget.
    pub fn passes(mut self, passes: usize) -> Self {
        self.passes = passes.max(1);
        self
    }

    /// Sets the relative total-replica improvement below which a multi-pass
    /// run stops early.
    pub fn convergence(mut self, min_improvement: f64) -> Self {
        self.convergence = min_improvement.max(0.0);
        self
    }

    fn run_engine(
        &self,
        stream: &mut dyn EdgeStream,
    ) -> Result<(EdgePartition, Vec<EdgePassStats>)> {
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig(
                "the number of blocks k must be positive".into(),
            ));
        }
        let mut sink = Box::new(AlgoSink::new(
            self.kind,
            self.k,
            self.seed,
            self.lambda,
            self.epsilon,
            stream.num_nodes(),
            stream.num_edges(),
        ));
        let opts = RestreamOptions::tracked(self.passes, self.convergence);
        let trajectory = run_edge_restream(stream, &mut *sink, &opts)?;
        Ok((sink.into_partition(), trajectory))
    }
}

impl EdgePartitioner for StreamingEdgePartitioner {
    fn name(&self) -> String {
        self.kind.name().to_string()
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn partition_edges(&self, stream: &mut dyn EdgeStream) -> Result<EdgePartition> {
        Ok(self.run_engine(stream)?.0)
    }

    fn partition_edges_tracked(
        &self,
        stream: &mut dyn EdgeStream,
    ) -> Result<(EdgePartition, Vec<EdgePassStats>)> {
        self.run_engine(stream)
    }
}

/// SplitMix64-style finalizer shared by both hashing rules.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hash of the undirected edge key `(u, v)` (with `u < v` on the stream the
/// key is already canonical).
fn hash_edge(u: NodeId, v: NodeId, seed: u64) -> u64 {
    mix(((u as u64) << 32 | v as u64).wrapping_add(seed))
}

/// Hash of a single vertex.
fn hash_vertex(x: NodeId, seed: u64) -> u64 {
    mix((x as u64).wrapping_add(seed))
}

/// The shared vertex-cut sink: assignment array, block loads, partial
/// degrees and per-vertex replica multisets (block → incident-edge count,
/// so un-assignment can shrink a replica set exactly).
struct AlgoSink {
    kind: EdgeAlgoKind,
    k: u32,
    seed: u64,
    lambda: f64,
    pass: usize,
    num_nodes: usize,
    assignments: Vec<BlockId>,
    block_loads: Vec<u64>,
    /// Edges per block (`e-greedy`'s hard capacity counts edges, so it is
    /// enforceable even when the total edge *weight* is unknown up front).
    block_counts: Vec<u64>,
    /// `e-greedy`'s hard capacity `L_max = ⌈(1+ε)·m/k⌉` in edges.
    count_capacity: u64,
    degrees: Vec<u64>,
    replicas: Vec<Vec<(BlockId, u32)>>,
    total_replicas: u64,
}

impl AlgoSink {
    fn new(
        kind: EdgeAlgoKind,
        k: u32,
        seed: u64,
        lambda: f64,
        epsilon: f64,
        n: usize,
        m: usize,
    ) -> Self {
        AlgoSink {
            kind,
            k,
            seed,
            lambda,
            pass: 0,
            num_nodes: n,
            assignments: vec![UNASSIGNED; m],
            block_loads: vec![0; k as usize],
            block_counts: vec![0; k as usize],
            count_capacity: oms_core::Partition::capacity(m as u64, k.max(1), epsilon),
            degrees: vec![0; n],
            replicas: vec![Vec::new(); n],
            total_replicas: 0,
        }
    }

    fn has_replica(&self, x: NodeId, b: BlockId) -> bool {
        self.replicas[x as usize].iter().any(|&(rb, _)| rb == b)
    }

    fn add_replica(&mut self, x: NodeId, b: BlockId) {
        let set = &mut self.replicas[x as usize];
        match set.iter_mut().find(|(rb, _)| *rb == b) {
            Some((_, count)) => *count += 1,
            None => {
                set.push((b, 1));
                self.total_replicas += 1;
            }
        }
    }

    fn remove_replica(&mut self, x: NodeId, b: BlockId) {
        let set = &mut self.replicas[x as usize];
        let i = set
            .iter()
            .position(|&(rb, _)| rb == b)
            .expect("removing a replica that was never added");
        set[i].1 -= 1;
        if set[i].1 == 0 {
            set.swap_remove(i);
            self.total_replicas -= 1;
        }
    }

    fn assign(&mut self, index: usize, edge: StreamedEdge, b: BlockId) {
        self.assignments[index] = b;
        self.block_loads[b as usize] += edge.weight;
        self.block_counts[b as usize] += 1;
        self.add_replica(edge.u, b);
        self.add_replica(edge.v, b);
    }

    fn unassign(&mut self, index: usize, edge: StreamedEdge) {
        let b = self.assignments[index];
        self.assignments[index] = UNASSIGNED;
        self.block_loads[b as usize] -= edge.weight;
        self.block_counts[b as usize] -= 1;
        self.remove_replica(edge.u, b);
        self.remove_replica(edge.v, b);
    }

    /// HDRF block selection (see the [module docs](self)).
    fn select_greedy(&self, edge: StreamedEdge) -> BlockId {
        let du = self.degrees[edge.u as usize] as f64;
        let dv = self.degrees[edge.v as usize] as f64;
        // Both degrees count the current edge, so du + dv ≥ 2.
        let theta_u = du / (du + dv);
        let theta_v = 1.0 - theta_u;
        let min_load = self.block_loads.iter().copied().min().unwrap_or(0);
        let max_load = self.block_loads.iter().copied().max().unwrap_or(0);
        let denom = 1.0 + (max_load - min_load) as f64;
        let mut best = 0 as BlockId;
        let mut best_score = f64::NEG_INFINITY;
        for b in 0..self.k {
            // The hard capacity: a full block is not a candidate. The
            // capacities sum to more than m, so some block always remains.
            if self.block_counts[b as usize] >= self.count_capacity {
                continue;
            }
            let mut score = self.lambda * (max_load - self.block_loads[b as usize]) as f64 / denom;
            if self.has_replica(edge.u, b) {
                score += 1.0 + (1.0 - theta_u);
            }
            if self.has_replica(edge.v, b) {
                score += 1.0 + (1.0 - theta_v);
            }
            if score > best_score {
                best_score = score;
                best = b;
            }
        }
        best
    }

    fn select(&self, edge: StreamedEdge) -> BlockId {
        match self.kind {
            EdgeAlgoKind::Hash => (hash_edge(edge.u, edge.v, self.seed) % self.k as u64) as BlockId,
            EdgeAlgoKind::Dbh => {
                let du = self.degrees[edge.u as usize];
                let dv = self.degrees[edge.v as usize];
                let key = match du.cmp(&dv) {
                    std::cmp::Ordering::Less => edge.u,
                    std::cmp::Ordering::Greater => edge.v,
                    std::cmp::Ordering::Equal => edge.u.min(edge.v),
                };
                (hash_vertex(key, self.seed) % self.k as u64) as BlockId
            }
            EdgeAlgoKind::Greedy => self.select_greedy(edge),
        }
    }
}

impl EdgeSink for AlgoSink {
    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
    }

    fn process(&mut self, index: usize, edge: StreamedEdge) {
        if self.pass == 0 {
            // Partial degrees, counted up to and including the current
            // edge; after the first pass they are exact and stay fixed.
            self.degrees[edge.u as usize] += 1;
            self.degrees[edge.v as usize] += 1;
        } else {
            self.unassign(index, edge);
        }
        let b = self.select(edge);
        self.assign(index, edge, b);
    }

    fn assignments(&self) -> &[BlockId] {
        &self.assignments
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn quality(&self) -> EdgeQuality {
        let covered = self.replicas.iter().filter(|r| !r.is_empty()).count() as u64;
        let max_replicas = self
            .replicas
            .iter()
            .map(|r| r.len() as u32)
            .max()
            .unwrap_or(0);
        EdgeQuality {
            total_replicas: self.total_replicas,
            covered_vertices: covered,
            max_replicas,
            max_load: self.block_loads.iter().copied().max().unwrap_or(0),
            total_load: self.block_loads.iter().sum(),
        }
    }

    fn begin_restore(&mut self) {
        self.assignments.fill(UNASSIGNED);
        self.block_loads.fill(0);
        self.block_counts.fill(0);
        for set in &mut self.replicas {
            set.clear();
        }
        self.total_replicas = 0;
    }

    fn restore_edge(&mut self, index: usize, edge: StreamedEdge, block: BlockId) {
        self.assign(index, edge, block);
    }

    fn into_partition(self: Box<Self>) -> EdgePartition {
        let quality = self.quality();
        EdgePartition::new(
            self.k,
            self.num_nodes,
            self.assignments,
            self.block_loads,
            quality.total_replicas,
            quality.covered_vertices,
            quality.max_replicas,
        )
    }
}

/// Re-measures the replication summary of `report` from scratch by replaying
/// `stream` against the recorded assignment — a cross-check used by tests
/// (the incremental sink state must agree with a cold recount).
pub fn recount_replicas(
    stream: &mut dyn EdgeStream,
    assignments: &[BlockId],
    k: u32,
) -> Result<EdgeQuality> {
    if assignments.len() < stream.num_edges() {
        return Err(PartitionError::InvalidConfig(format!(
            "assignment covers {} edges but the stream announces {}",
            assignments.len(),
            stream.num_edges()
        )));
    }
    let n = stream.num_nodes();
    let mut replicas: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    let mut block_loads = vec![0u64; k as usize];
    let mut index = 0usize;
    stream.for_each_edge(&mut |edge| {
        let b = assignments[index];
        index += 1;
        if b == UNASSIGNED {
            return;
        }
        block_loads[b as usize] += edge.weight;
        for x in [edge.u, edge.v] {
            let set = &mut replicas[x as usize];
            if !set.contains(&b) {
                set.push(b);
            }
        }
    })?;
    let total_replicas: u64 = replicas.iter().map(|r| r.len() as u64).sum();
    Ok(EdgeQuality {
        total_replicas,
        covered_vertices: replicas.iter().filter(|r| !r.is_empty()).count() as u64,
        max_replicas: replicas.iter().map(|r| r.len() as u32).max().unwrap_or(0),
        max_load: block_loads.iter().copied().max().unwrap_or(0),
        total_load: block_loads.iter().sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::{CsrGraph, EdgesOf, InMemoryStream};

    fn star_plus_path() -> CsrGraph {
        // Node 0 is a hub; 6..9 form a path appended to keep some
        // low-degree structure.
        CsrGraph::from_edges(
            10,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (6, 7),
                (7, 8),
                (8, 9),
                (5, 6),
            ],
        )
        .unwrap()
    }

    fn run(p: &StreamingEdgePartitioner, g: &CsrGraph) -> EdgePartition {
        p.partition_edges(&mut EdgesOf(InMemoryStream::new(g)))
            .unwrap()
    }

    #[test]
    fn every_algorithm_assigns_every_edge() {
        let g = star_plus_path();
        for p in [
            StreamingEdgePartitioner::hashing(3),
            StreamingEdgePartitioner::degree_hashing(3),
            StreamingEdgePartitioner::greedy(3),
        ] {
            let partition = run(&p, &g);
            assert_eq!(partition.num_edges(), g.num_edges());
            assert!(partition.validate());
            assert_eq!(partition.total_load(), g.total_edge_weight());
            assert!(partition.replication_factor() >= 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = star_plus_path();
        for kind in [EdgeAlgoKind::Hash, EdgeAlgoKind::Dbh, EdgeAlgoKind::Greedy] {
            let a = run(&StreamingEdgePartitioner::new(kind, 4).seed(9), &g);
            let b = run(&StreamingEdgePartitioner::new(kind, 4).seed(9), &g);
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn k_equals_one_gives_replication_factor_one() {
        let g = star_plus_path();
        for kind in [EdgeAlgoKind::Hash, EdgeAlgoKind::Dbh, EdgeAlgoKind::Greedy] {
            let partition = run(&StreamingEdgePartitioner::new(kind, 1), &g);
            assert!(
                (partition.replication_factor() - 1.0).abs() < 1e-12,
                "{kind:?}"
            );
            assert_eq!(partition.max_replicas(), 1);
        }
    }

    #[test]
    fn greedy_keeps_low_degree_vertices_together() {
        // On the path 6-7-8-9 HDRF should not scatter the edges of a
        // degree-2 vertex without need: its replication factor must beat
        // plain hashing on this structure-rich graph.
        let g = star_plus_path();
        let greedy = run(&StreamingEdgePartitioner::greedy(3), &g);
        let hash = run(&StreamingEdgePartitioner::hashing(3), &g);
        assert!(
            greedy.total_replicas() <= hash.total_replicas(),
            "greedy {} vs hash {}",
            greedy.total_replicas(),
            hash.total_replicas()
        );
    }

    #[test]
    fn hash_reaches_its_fixed_point_after_one_extra_pass() {
        let g = star_plus_path();
        let p = StreamingEdgePartitioner::hashing(4).passes(6);
        let (partition, trajectory) = p
            .partition_edges_tracked(&mut EdgesOf(InMemoryStream::new(&g)))
            .unwrap();
        assert!(trajectory.len() <= 2, "{trajectory:?}");
        assert_eq!(trajectory.last().unwrap().moved, 0);
        assert_eq!(partition, run(&StreamingEdgePartitioner::hashing(4), &g));
    }

    #[test]
    fn multi_pass_trajectory_is_non_increasing_and_ends_on_the_result() {
        let g = oms_gen::barabasi_albert(300, 4, 11);
        for kind in [EdgeAlgoKind::Dbh, EdgeAlgoKind::Greedy] {
            let p = StreamingEdgePartitioner::new(kind, 8).passes(4);
            let (partition, trajectory) = p
                .partition_edges_tracked(&mut EdgesOf(InMemoryStream::new(&g)))
                .unwrap();
            assert!(!trajectory.is_empty());
            assert!(
                trajectory
                    .windows(2)
                    .all(|w| w[1].total_replicas <= w[0].total_replicas),
                "{kind:?}: {trajectory:?}"
            );
            assert_eq!(
                trajectory.last().unwrap().total_replicas,
                partition.total_replicas(),
                "{kind:?}: the trajectory must end on the returned assignment"
            );
        }
    }

    #[test]
    fn incremental_state_agrees_with_a_cold_recount() {
        let g = oms_gen::rmat_graph(9, 4096, oms_gen::RmatParams::GRAPH500, 5);
        for kind in [EdgeAlgoKind::Hash, EdgeAlgoKind::Dbh, EdgeAlgoKind::Greedy] {
            let p = StreamingEdgePartitioner::new(kind, 8).passes(2);
            let partition = run(&p, &g);
            let recount = recount_replicas(
                &mut EdgesOf(InMemoryStream::new(&g)),
                partition.assignments(),
                8,
            )
            .unwrap();
            assert_eq!(
                recount.total_replicas,
                partition.total_replicas(),
                "{kind:?}"
            );
            assert_eq!(recount.max_replicas, partition.max_replicas(), "{kind:?}");
            assert_eq!(
                recount.covered_vertices,
                partition.covered_vertices(),
                "{kind:?}"
            );
            assert_eq!(recount.total_load, partition.total_load(), "{kind:?}");
        }
    }

    #[test]
    fn lambda_zero_still_respects_the_hard_capacity() {
        // With λ = 0 the soft balance term vanishes and ties break to the
        // lowest block id — but the hard capacity L_max = ⌈(1+ε)·m/k⌉
        // still forces the stream to spill into fresh blocks instead of
        // collapsing into block 0.
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = StreamingEdgePartitioner::greedy(4).lambda(0.0);
        let partition = run(&p, &g);
        // m = 2, k = 4 → capacity 1: the two edges must use two blocks.
        assert_eq!(partition.assignments(), &[0, 1]);
    }

    #[test]
    fn greedy_never_exceeds_the_hard_capacity() {
        let g = oms_gen::barabasi_albert(400, 3, 7);
        for lambda in [0.0, 0.1, 1.0, 10.0] {
            for passes in [1, 3] {
                let p = StreamingEdgePartitioner::greedy(8)
                    .lambda(lambda)
                    .passes(passes);
                let partition = run(&p, &g);
                let capacity = oms_core::Partition::capacity(g.num_edges() as u64, 8, 0.03);
                let mut counts = [0u64; 8];
                for &b in partition.assignments() {
                    counts[b as usize] += 1;
                }
                let max = counts.iter().copied().max().unwrap();
                assert!(
                    max <= capacity,
                    "lambda {lambda}, passes {passes}: max block count {max} > L_max {capacity}"
                );
            }
        }
    }

    #[test]
    fn zero_blocks_is_a_typed_error() {
        let g = star_plus_path();
        let err = StreamingEdgePartitioner::hashing(0)
            .partition_edges(&mut EdgesOf(InMemoryStream::new(&g)))
            .unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
    }
}
