//! The object-safe edge-partitioner API and the `e-*` dispatch registry.
//!
//! Mirrors `oms_core::api` for the vertex-cut objective: frontends hold a
//! `Box<dyn EdgePartitioner>` built from the same [`JobSpec`] strings the
//! node pipeline uses (`"e-greedy:32@seed=3,passes=3,lambda=1.5"`), and the
//! registry ([`register_edge_algorithm`] / [`registered_edge_algorithms`] /
//! [`find_edge_algorithm`]) is the one name → constructor table every
//! frontend resolves `e-*` jobs against. [`build_edge_partitioner`] is the
//! factory; [`is_edge_algorithm`] is the routing predicate frontends use to
//! decide between the node and the edge pipeline.

use crate::algorithms::StreamingEdgePartitioner;
use crate::engine::EdgePassStats;
use crate::partition::EdgePartition;
use oms_core::{JobSpec, PartitionError, Result};
use oms_graph::EdgeStream;
use oms_obs::Stopwatch;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The unified result of one edge-partitioning run.
#[derive(Clone, Debug)]
pub struct EdgePartitionReport {
    /// Registry name of the algorithm that produced the partition.
    pub algorithm: String,
    /// Replication factor `RF(Π)` of the produced vertex-cut.
    pub replication_factor: f64,
    /// Total replica count `Σ_v |R(v)|` (the exact integer behind `RF`).
    pub total_replicas: u64,
    /// Largest per-vertex replica set `max_v |R(v)|`.
    pub max_replicas: u32,
    /// Edge-load imbalance `max_b ω(E_b) / (ω(E)/k) − 1`.
    pub imbalance: f64,
    /// Wall time of the partitioning passes in seconds.
    pub seconds: f64,
    /// Per-pass quality trajectory of a multi-pass run, in pass order
    /// (a single entry for single-pass runs).
    pub trajectory: Vec<EdgePassStats>,
    /// The edge partition itself.
    pub partition: EdgePartition,
}

impl EdgePartitionReport {
    /// Number of blocks of the underlying partition.
    pub fn num_blocks(&self) -> u32 {
        self.partition.num_blocks()
    }
}

/// An object-safe edge partitioner: any algorithm that can turn an edge
/// stream into an [`EdgePartition`].
pub trait EdgePartitioner {
    /// Registry name of the algorithm (used in reports).
    fn name(&self) -> String;

    /// Number of blocks this partitioner produces.
    fn num_blocks(&self) -> u32;

    /// Computes the edge partition for the edges delivered by `stream`.
    fn partition_edges(&self, stream: &mut dyn EdgeStream) -> Result<EdgePartition>;

    /// Like [`EdgePartitioner::partition_edges`], but additionally returns
    /// the per-pass quality trajectory.
    fn partition_edges_tracked(
        &self,
        stream: &mut dyn EdgeStream,
    ) -> Result<(EdgePartition, Vec<EdgePassStats>)>;

    /// Runs the partitioner and evaluates the result into an
    /// [`EdgePartitionReport`]. All quality numbers come from the sink's
    /// incrementally maintained state — no extra metric pass is paid.
    fn run(&self, stream: &mut dyn EdgeStream) -> Result<EdgePartitionReport> {
        let clock = Stopwatch::start();
        let (partition, trajectory) = self.partition_edges_tracked(stream)?;
        let seconds = clock.seconds();
        Ok(EdgePartitionReport {
            algorithm: self.name(),
            replication_factor: partition.replication_factor(),
            total_replicas: partition.total_replicas(),
            max_replicas: partition.max_replicas(),
            imbalance: partition.imbalance(),
            seconds,
            trajectory,
            partition,
        })
    }
}

// ----------------------------------------------------------------- registry

/// One entry of the edge-algorithm registry.
#[derive(Clone, Copy)]
pub struct EdgeAlgorithmInfo {
    /// Canonical registry name (always `e-`-prefixed).
    pub name: &'static str,
    /// Accepted alternative spellings.
    pub aliases: &'static [&'static str],
    /// One-line description for `--help`-style listings.
    pub description: &'static str,
    /// Constructor turning a [`JobSpec`] into the boxed algorithm.
    pub build: fn(&JobSpec) -> Result<Box<dyn EdgePartitioner>>,
}

impl fmt::Debug for EdgeAlgorithmInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeAlgorithmInfo")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("description", &self.description)
            .finish()
    }
}

static REGISTRY: OnceLock<Mutex<Vec<EdgeAlgorithmInfo>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<EdgeAlgorithmInfo>> {
    REGISTRY.get_or_init(|| Mutex::new(builtin_edge_algorithms()))
}

/// Registers (or replaces, by name) an edge algorithm in the registry.
pub fn register_edge_algorithm(info: EdgeAlgorithmInfo) {
    let mut algorithms = registry().lock().expect("edge registry poisoned");
    match algorithms.iter_mut().find(|a| a.name == info.name) {
        Some(slot) => *slot = info,
        None => algorithms.push(info),
    }
}

/// A snapshot of every registered edge algorithm, in registration order.
pub fn registered_edge_algorithms() -> Vec<EdgeAlgorithmInfo> {
    registry().lock().expect("edge registry poisoned").clone()
}

/// Looks an edge algorithm up by canonical name or alias
/// (case-insensitive).
pub fn find_edge_algorithm(name: &str) -> Option<EdgeAlgorithmInfo> {
    let wanted = name.to_ascii_lowercase();
    registered_edge_algorithms()
        .into_iter()
        .find(|a| a.name == wanted || a.aliases.iter().any(|&alias| alias == wanted))
}

/// Whether `name` resolves to a registered edge (vertex-cut) algorithm —
/// the predicate frontends use to route a [`JobSpec`] to the edge pipeline.
pub fn is_edge_algorithm(name: &str) -> bool {
    find_edge_algorithm(name).is_some()
}

/// Builds the edge partitioner described by `spec`, dispatching through the
/// edge registry. The shared option-validation rules of the node pipeline
/// apply (`passes ≥ 1`, `conv=` needs a multi-pass budget, λ ≥ 0);
/// node-pipeline-only options that cannot mean anything for a vertex-cut
/// (`threads=`, `dist=`, hierarchical shapes, `buf=`, `base=`, `hybrid=`)
/// are rejected rather than silently ignored.
pub fn build_edge_partitioner(spec: &JobSpec) -> Result<Box<dyn EdgePartitioner>> {
    let info = find_edge_algorithm(&spec.algorithm).ok_or_else(|| {
        let known: Vec<&str> = registered_edge_algorithms()
            .iter()
            .map(|a| a.name)
            .collect();
        PartitionError::InvalidSpec(format!(
            "unknown edge algorithm '{}' (registered: {})",
            spec.algorithm,
            known.join(", ")
        ))
    })?;
    if spec.num_blocks() == 0 {
        return Err(PartitionError::InvalidConfig(
            "the number of blocks k must be positive".into(),
        ));
    }
    if spec.passes == 0 {
        return Err(PartitionError::InvalidConfig(
            "passes must be at least 1".into(),
        ));
    }
    if spec.convergence > 0.0 && spec.passes <= 1 {
        return Err(PartitionError::InvalidConfig(
            "conv= only applies to multi-pass runs; set passes=<N> (the pass budget) as well"
                .into(),
        ));
    }
    if !spec.lambda.is_finite() || spec.lambda < 0.0 {
        return Err(PartitionError::InvalidConfig(
            "lambda must be non-negative".into(),
        ));
    }
    if spec.threads > 1 {
        return Err(PartitionError::InvalidConfig(
            "edge partitioners are sequential streaming algorithms; drop threads=".into(),
        ));
    }
    if spec.distances.is_some() {
        return Err(PartitionError::InvalidConfig(
            "dist= (the mapping objective) does not apply to edge partitioning".into(),
        ));
    }
    if spec.shape.hierarchy().is_some() {
        return Err(PartitionError::InvalidConfig(
            "edge partitioners are flat; write the shape as a plain block count k".into(),
        ));
    }
    if spec.buffer != 0 {
        return Err(PartitionError::InvalidConfig(
            "buf= (buffered node streaming) does not apply to edge partitioning".into(),
        ));
    }
    if spec.base_b != oms_core::api::DEFAULT_BASE_B {
        return Err(PartitionError::InvalidConfig(
            "base= (the nh-OMS multi-section base) does not apply to edge partitioning".into(),
        ));
    }
    if spec.hashing_bottom_layers != 0 {
        return Err(PartitionError::InvalidConfig(
            "hybrid= (the OMS hybrid mapping) does not apply to edge partitioning".into(),
        ));
    }
    (info.build)(spec)
}

fn configured(p: StreamingEdgePartitioner, spec: &JobSpec) -> Box<dyn EdgePartitioner> {
    Box::new(
        p.seed(spec.seed)
            .lambda(spec.lambda)
            .epsilon(spec.epsilon)
            .passes(spec.passes)
            .convergence(spec.convergence),
    )
}

fn build_e_hash(spec: &JobSpec) -> Result<Box<dyn EdgePartitioner>> {
    Ok(configured(
        StreamingEdgePartitioner::hashing(spec.num_blocks()),
        spec,
    ))
}

fn build_e_dbh(spec: &JobSpec) -> Result<Box<dyn EdgePartitioner>> {
    Ok(configured(
        StreamingEdgePartitioner::degree_hashing(spec.num_blocks()),
        spec,
    ))
}

fn build_e_greedy(spec: &JobSpec) -> Result<Box<dyn EdgePartitioner>> {
    Ok(configured(
        StreamingEdgePartitioner::greedy(spec.num_blocks()),
        spec,
    ))
}

fn builtin_edge_algorithms() -> Vec<EdgeAlgorithmInfo> {
    vec![
        EdgeAlgorithmInfo {
            name: "e-hash",
            aliases: &["ehash"],
            description: "edge hashing (vertex-cut; balanced, worst replication)",
            build: build_e_hash,
        },
        EdgeAlgorithmInfo {
            name: "e-dbh",
            aliases: &["edbh", "dbh"],
            description: "degree-based hashing (vertex-cut; hashes the lower-degree endpoint)",
            build: build_e_dbh,
        },
        EdgeAlgorithmInfo {
            name: "e-greedy",
            aliases: &["egreedy", "hdrf"],
            description:
                "HDRF-style greedy (vertex-cut; replica affinity + lambda-weighted balance)",
            build: build_e_greedy,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::{CsrGraph, EdgesOf, InMemoryStream};

    fn sample() -> CsrGraph {
        oms_gen::planted_partition(300, 4, 0.1, 0.01, 3)
    }

    #[test]
    fn registry_lists_the_three_builtins() {
        let names: Vec<&str> = registered_edge_algorithms()
            .iter()
            .map(|a| a.name)
            .collect();
        for name in ["e-hash", "e-dbh", "e-greedy"] {
            assert!(names.contains(&name), "{name} missing from {names:?}");
        }
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(find_edge_algorithm("hdrf").unwrap().name, "e-greedy");
        assert_eq!(find_edge_algorithm("E-DBH").unwrap().name, "e-dbh");
        assert!(find_edge_algorithm("fennel").is_none());
        assert!(is_edge_algorithm("e-hash"));
        assert!(!is_edge_algorithm("oms"));
    }

    #[test]
    fn specs_build_and_run_to_reports() {
        let graph = sample();
        for text in [
            "e-hash:8@seed=3",
            "e-dbh:8@seed=3",
            "e-greedy:8@seed=3",
            "e-greedy:8@seed=3,lambda=2.5",
            "e-greedy:8@seed=3,passes=3",
            "e-dbh:8@passes=4,conv=0.01",
        ] {
            let spec = JobSpec::parse(text).unwrap();
            let partitioner =
                build_edge_partitioner(&spec).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(partitioner.num_blocks(), 8, "{text}");
            let report = partitioner
                .run(&mut EdgesOf(InMemoryStream::new(&graph)))
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(report.partition.num_edges(), graph.num_edges(), "{text}");
            assert!(report.partition.validate(), "{text}");
            assert!(report.replication_factor >= 1.0, "{text}");
            assert!(!report.trajectory.is_empty(), "{text}");
            assert_eq!(
                report.trajectory.last().unwrap().total_replicas,
                report.total_replicas,
                "{text}: the trajectory ends on the reported quality"
            );
        }
    }

    #[test]
    fn invalid_edge_specs_are_rejected() {
        for (text, needle) in [
            ("e-frobnicate:8", "unknown edge algorithm"),
            ("e-greedy:0", "positive"),
            ("e-greedy:8@threads=4", "sequential"),
            ("e-greedy:8@conv=0.1", "multi-pass"),
            ("e-greedy:4:4", "flat"),
            ("e-greedy:8@buf=4096", "buf="),
            ("e-greedy:8@base=8", "base="),
            ("e-greedy:8@hybrid=2", "hybrid="),
        ] {
            let spec = JobSpec::parse(text).unwrap();
            let Err(err) = build_edge_partitioner(&spec) else {
                panic!("'{text}' must not build");
            };
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
        let spec = JobSpec::parse("e-greedy:2:2@dist=1:10").unwrap();
        let Err(err) = build_edge_partitioner(&spec) else {
            panic!("dist= must not build for edge algorithms");
        };
        assert!(err.to_string().contains("mapping objective"), "{err}");
    }

    #[test]
    fn registry_can_be_extended_and_replaced() {
        fn build_dummy(spec: &JobSpec) -> Result<Box<dyn EdgePartitioner>> {
            build_e_hash(spec)
        }
        register_edge_algorithm(EdgeAlgorithmInfo {
            name: "e-dummy",
            aliases: &[],
            description: "test-only",
            build: build_dummy,
        });
        assert!(is_edge_algorithm("e-dummy"));
        register_edge_algorithm(EdgeAlgorithmInfo {
            name: "e-dummy",
            aliases: &[],
            description: "replaced",
            build: build_dummy,
        });
        let count = registered_edge_algorithms()
            .iter()
            .filter(|a| a.name == "e-dummy")
            .count();
        assert_eq!(count, 1);
    }
}
