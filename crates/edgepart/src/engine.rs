//! The multi-pass re-streaming engine for edge partitioners.
//!
//! Mirrors the node-side engine in `oms_core::executor`: up to
//! [`RestreamOptions::passes`] passes over the same (rewound) edge stream
//! drive an [`EdgeSink`] — the per-algorithm scoring/assignment state. From
//! the second pass on the sink re-scores every edge against the previous
//! pass's assignment (un-assign, then re-assign). After every pass the
//! engine reads the sink's incrementally maintained [`EdgeQuality`] — no
//! extra metric pass is needed — and
//!
//! * stops once no edge moved (fixed point),
//! * stops once the relative improvement of the total replica count falls
//!   below [`RestreamOptions::min_improvement`], and
//! * **reverts** a pass that *increased* the total replica count by
//!   replaying the stream once with the best assignment seen, so the
//!   recorded trajectory is non-increasing by construction and always ends
//!   on the assignment actually returned.
//!
//! Quality is compared on the **total replica count** `Σ_v |R(v)|` — an
//! exact integer — rather than the replication factor (its quotient by the
//! covered-vertex count), so the accept/revert decisions are free of
//! floating-point tie ambiguity.

use crate::partition::EdgePartition;
use oms_core::{BlockId, PartitionError, RestreamOptions, Result};
use oms_graph::{EdgeStream, StreamedEdge};
use oms_obs::{CounterId, Event, Stopwatch};

/// Quality snapshot of an edge partition, maintained by the sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeQuality {
    /// Total replica count `Σ_v |R(v)|`.
    pub total_replicas: u64,
    /// Number of vertices with at least one replica (non-isolated).
    pub covered_vertices: u64,
    /// Largest per-vertex replica set.
    pub max_replicas: u32,
    /// Heaviest block load (assigned edge weight).
    pub max_load: u64,
    /// Total assigned edge weight.
    pub total_load: u64,
}

impl EdgeQuality {
    /// The replication factor `Σ_v |R(v)| / covered` (`1.0` when empty).
    pub fn replication_factor(&self) -> f64 {
        if self.covered_vertices == 0 {
            return 1.0;
        }
        self.total_replicas as f64 / self.covered_vertices as f64
    }

    /// Edge-load imbalance over `k` blocks.
    pub fn imbalance(&self, k: u32) -> f64 {
        if self.total_load == 0 {
            return 0.0;
        }
        let average = self.total_load as f64 / k.max(1) as f64;
        self.max_load as f64 / average - 1.0
    }
}

/// Quality and movement statistics of one accepted edge-partitioning pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgePassStats {
    /// Pass index (0 = the initial streaming pass).
    pub pass: usize,
    /// Total replica count after this pass (the engine's exact quality
    /// scalar; lower is better).
    pub total_replicas: u64,
    /// Replication factor after this pass.
    pub replication_factor: f64,
    /// Edge-load imbalance after this pass.
    pub imbalance: f64,
    /// Number of edges whose block changed in this pass (`m` for the
    /// initial pass, where every edge goes from unassigned to assigned).
    pub moved: usize,
    /// Wall time of the pass itself, in seconds.
    pub seconds: f64,
}

/// A consumer of streamed edges: the per-algorithm scoring/assignment state
/// the engine drives. `index` is the edge's stream position, stable across
/// passes and sources.
pub trait EdgeSink {
    /// Called once before each pass (`pass` counts from 0). Pass ≥ 1 puts
    /// the sink into unassign-then-reassign mode.
    fn begin_pass(&mut self, pass: usize);

    /// Consumes the next edge of the stream.
    fn process(&mut self, index: usize, edge: StreamedEdge);

    /// The sink's current per-edge assignment array.
    fn assignments(&self) -> &[BlockId];

    /// Number of blocks the sink assigns into.
    fn num_blocks(&self) -> u32;

    /// The sink's current quality (replicas, loads), maintained
    /// incrementally.
    fn quality(&self) -> EdgeQuality;

    /// Clears all assignment-derived state before a restore replay.
    fn begin_restore(&mut self);

    /// Re-applies a fixed block to one edge during a restore replay,
    /// rebuilding replica sets and block loads.
    fn restore_edge(&mut self, index: usize, edge: StreamedEdge, block: BlockId);

    /// Consumes the sink into the finished [`EdgePartition`].
    fn into_partition(self: Box<Self>) -> EdgePartition;
}

/// One full pass of `stream` through `sink.process`, verifying that the
/// stream delivered exactly the announced number of edges.
fn drive_pass(
    stream: &mut dyn EdgeStream,
    expected_edges: usize,
    f: &mut dyn FnMut(usize, StreamedEdge),
) -> Result<()> {
    let mut index = 0usize;
    stream.for_each_edge(&mut |edge| {
        if index < expected_edges {
            f(index, edge);
        }
        index += 1;
    })?;
    if index != expected_edges {
        return Err(PartitionError::InvalidConfig(format!(
            "edge stream announced {expected_edges} edges but delivered {index}"
        )));
    }
    Ok(())
}

/// The multi-pass edge re-streaming engine (see the [module docs](self)).
///
/// Returns the per-pass trajectory; the final sink state is the assignment
/// of the last recorded entry. The stream is assumed to be rewound on
/// entry; every pass after the first rewinds it via
/// [`EdgeStream::reset`], so disk-backed sources re-validate their header
/// between passes exactly as in the node pipeline.
pub fn run_edge_restream(
    stream: &mut dyn EdgeStream,
    sink: &mut dyn EdgeSink,
    opts: &RestreamOptions,
) -> Result<Vec<EdgePassStats>> {
    let m = stream.num_edges();
    let k = sink.num_blocks();
    let passes = opts.passes.max(1);
    let mut trajectory: Vec<EdgePassStats> = Vec::new();
    let mut best: Option<(u64, Vec<BlockId>)> = None;
    let mut prev: Vec<BlockId> = sink.assignments().to_vec();
    let mut needs_reset = false;

    for pass in 0..passes {
        if needs_reset {
            stream.reset()?;
        }
        needs_reset = true;

        sink.begin_pass(pass);
        let clock = Stopwatch::start();
        drive_pass(stream, m, &mut |index, edge| sink.process(index, edge))?;
        let seconds = clock.seconds();

        let quality = sink.quality();
        let assignments = sink.assignments();
        let moved = prev.iter().zip(assignments).filter(|(a, b)| a != b).count();

        if let Some((best_replicas, best_assign)) = &best {
            if quality.total_replicas > *best_replicas {
                // The pass overshot: replay the stream once, re-applying the
                // best assignment, so the returned state matches the last
                // recorded trajectory entry.
                let best_assign = best_assign.clone();
                stream.reset()?;
                sink.begin_restore();
                drive_pass(stream, m, &mut |index, edge| {
                    sink.restore_edge(index, edge, best_assign[index]);
                })?;
                oms_obs::observe(Event::EdgePassReverted {
                    pass: pass as u32,
                    kept_replicas: *best_replicas,
                });
                break;
            }
        }

        oms_obs::observe(Event::EdgePassEnd {
            pass: pass as u32,
            total_replicas: quality.total_replicas,
            moved: moved as u64,
        });
        oms_obs::counter_add(CounterId::EdgePasses, 1);
        trajectory.push(EdgePassStats {
            pass,
            total_replicas: quality.total_replicas,
            replication_factor: quality.replication_factor(),
            imbalance: quality.imbalance(k),
            moved,
            seconds,
        });

        let improvement_too_small = match &best {
            Some((best_replicas, _)) => {
                let gained = best_replicas.saturating_sub(quality.total_replicas) as f64;
                opts.min_improvement > 0.0
                    && gained < opts.min_improvement * (*best_replicas).max(1) as f64
            }
            None => false,
        };
        if best
            .as_ref()
            .is_none_or(|(r, _)| quality.total_replicas <= *r)
        {
            best = Some((quality.total_replicas, assignments.to_vec()));
        }
        if pass > 0 && (moved == 0 || improvement_too_small) {
            break;
        }
        prev.clear();
        prev.extend_from_slice(assignments);
    }
    Ok(trajectory)
}
