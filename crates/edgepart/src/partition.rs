//! The result of one edge-partitioning run.

use oms_core::BlockId;

/// A partition of the **edges** of a graph into `k` blocks (a vertex-cut).
///
/// Assignments are indexed by *stream position*: the `i`-th entry is the
/// block of the `i`-th edge delivered by the [`oms_graph::EdgeStream`] the
/// partitioner consumed. Since every stream source induces the same edge
/// order (see [`oms_graph::EdgesOf`]), the index is stable across sources
/// and passes.
///
/// Alongside the assignment the partition carries the replication summary
/// the producing sink maintained incrementally: the total replica count
/// `Σ_v |R(v)|`, the number of covered (non-isolated) vertices, the maximum
/// per-vertex replica count, and the per-block edge loads (total assigned
/// edge weight).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgePartition {
    k: u32,
    num_nodes: usize,
    assignments: Vec<BlockId>,
    block_loads: Vec<u64>,
    total_replicas: u64,
    covered_vertices: u64,
    max_replicas: u32,
}

impl EdgePartition {
    /// Assembles a partition from the sink state (crate-internal).
    pub(crate) fn new(
        k: u32,
        num_nodes: usize,
        assignments: Vec<BlockId>,
        block_loads: Vec<u64>,
        total_replicas: u64,
        covered_vertices: u64,
        max_replicas: u32,
    ) -> Self {
        EdgePartition {
            k,
            num_nodes,
            assignments,
            block_loads,
            total_replicas,
            covered_vertices,
            max_replicas,
        }
    }

    /// Number of blocks of the partition.
    pub fn num_blocks(&self) -> u32 {
        self.k
    }

    /// Number of nodes of the partitioned graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of partitioned edges.
    pub fn num_edges(&self) -> usize {
        self.assignments.len()
    }

    /// Block of the `i`-th streamed edge.
    pub fn block_of(&self, edge_index: usize) -> BlockId {
        self.assignments[edge_index]
    }

    /// The per-edge block assignment, in edge-stream order.
    pub fn assignments(&self) -> &[BlockId] {
        &self.assignments
    }

    /// Total assigned edge weight per block.
    pub fn block_loads(&self) -> &[u64] {
        &self.block_loads
    }

    /// Total edge weight over all blocks, `ω(E)`.
    pub fn total_load(&self) -> u64 {
        self.block_loads.iter().sum()
    }

    /// Heaviest block load `max_b ω(E_b)` — the quantity the edge balance
    /// constraint bounds.
    pub fn max_block_load(&self) -> u64 {
        self.block_loads.iter().copied().max().unwrap_or(0)
    }

    /// Total replica count `Σ_v |R(v)|`.
    pub fn total_replicas(&self) -> u64 {
        self.total_replicas
    }

    /// Number of vertices with at least one incident edge (the denominator
    /// of the replication factor).
    pub fn covered_vertices(&self) -> u64 {
        self.covered_vertices
    }

    /// Largest per-vertex replica set, `max_v |R(v)|`.
    pub fn max_replicas(&self) -> u32 {
        self.max_replicas
    }

    /// The replication factor `RF(Π) = Σ_v |R(v)| / |{v : deg(v) > 0}|`
    /// (`1.0` for graphs without edges: nothing is replicated).
    pub fn replication_factor(&self) -> f64 {
        if self.covered_vertices == 0 {
            return 1.0;
        }
        self.total_replicas as f64 / self.covered_vertices as f64
    }

    /// Edge-load imbalance `max_b ω(E_b) / (ω(E)/k) − 1`.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_load();
        if total == 0 {
            return 0.0;
        }
        let average = total as f64 / self.k.max(1) as f64;
        self.max_block_load() as f64 / average - 1.0
    }

    /// Whether every edge is assigned to a block `< k`.
    pub fn validate(&self) -> bool {
        self.assignments.iter().all(|&b| b < self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_derive_from_the_summary() {
        let p = EdgePartition::new(2, 4, vec![0, 1, 0], vec![2, 1], 5, 4, 2);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.total_load(), 3);
        assert_eq!(p.max_block_load(), 2);
        assert!((p.replication_factor() - 1.25).abs() < 1e-12);
        assert!((p.imbalance() - (2.0 / 1.5 - 1.0)).abs() < 1e-12);
        assert!(p.validate());
    }

    #[test]
    fn empty_partition_is_unreplicated_and_balanced() {
        let p = EdgePartition::new(4, 0, Vec::new(), vec![0; 4], 0, 0, 0);
        assert_eq!(p.replication_factor(), 1.0);
        assert_eq!(p.imbalance(), 0.0);
        assert!(p.validate());
    }
}
