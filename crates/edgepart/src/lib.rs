//! # oms-edgepart
//!
//! Streaming **edge partitioning** under the vertex-cut objective.
//!
//! The rest of the workspace partitions *nodes* and minimises the edge-cut.
//! Production graph systems that serve heavy traffic overwhelmingly shard by
//! *edges* instead: power-law graphs (the RMAT / Barabási–Albert families of
//! the corpus) have hub vertices whose adjacency no balanced edge-cut
//! partition can localise, while a vertex-cut partition simply *replicates*
//! the hub across blocks. The quality objective becomes the **replication
//! factor**
//!
//! ```text
//! RF(Π) = (Σ_v |R(v)|) / |{v : deg(v) > 0}|,   R(v) = { b : some edge of v is in block b }
//! ```
//!
//! — the average number of block replicas per (non-isolated) vertex — under
//! an edge-count (edge-weight) balance constraint over the blocks.
//!
//! Three streaming edge partitioners are provided, mirroring the classic
//! line-up (PowerGraph / DBH / HDRF):
//!
//! * `e-hash` — uniform hashing of the edge key; perfectly balanced in
//!   expectation, worst replication.
//! * `e-dbh` — degree-based hashing: an edge follows the hash of its
//!   *lower-degree* endpoint, so hub adjacency lists stay spread while
//!   low-degree vertices keep their edges together.
//! * `e-greedy` — an HDRF-style greedy: blocks are scored by partial-degree
//!   replica affinity plus a λ-weighted balance term ([`JobSpec::lambda`]).
//!
//! All three run single- or multi-pass: the [`engine`] re-streams the edges,
//! un-assigns and re-scores each one (the same snapshot / revert / converge
//! discipline as the node restreaming engine in `oms-core`), and records a
//! per-pass [`EdgePassStats`] trajectory that is non-increasing in the total
//! replica count by construction.
//!
//! Edges are consumed through [`oms_graph::EdgeStream`] — any node-stream
//! source (in-memory, chunked, disk v1/v2, unit or weighted) adapts via
//! [`oms_graph::EdgesOf`], so edge partitioning needs no new on-disk format
//! and inherits byte-identical behavior across sources.
//!
//! Jobs are described by the same [`JobSpec`] grammar as the node
//! partitioners (`"e-greedy:32@seed=3,passes=3,lambda=1.5"`) and dispatched
//! through this crate's own registry: [`build_edge_partitioner`] turns a
//! spec into a `Box<dyn EdgePartitioner>`, and
//! [`registered_edge_algorithms`] / [`find_edge_algorithm`] let frontends
//! (CLI, bench) enumerate and route `e-*` algorithm names.
//!
//! ## Example
//!
//! ```
//! use oms_core::JobSpec;
//! use oms_edgepart::build_edge_partitioner;
//! use oms_graph::{CsrGraph, EdgesOf, InMemoryStream};
//!
//! let graph = CsrGraph::from_edges(6, &[
//!     (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2), (3, 4),
//! ]).unwrap();
//! let job: JobSpec = "e-greedy:2@lambda=1".parse().unwrap();
//! let partitioner = build_edge_partitioner(&job).unwrap();
//! let report = partitioner.run(&mut EdgesOf(InMemoryStream::new(&graph))).unwrap();
//! assert_eq!(report.partition.num_edges(), 7);
//! assert!(report.replication_factor >= 1.0);
//! ```
//!
//! [`JobSpec`]: oms_core::JobSpec
//! [`JobSpec::lambda`]: oms_core::JobSpec::lambda

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod api;
pub mod engine;
pub mod partition;

pub use algorithms::{EdgeAlgoKind, StreamingEdgePartitioner};
pub use api::{
    build_edge_partitioner, find_edge_algorithm, is_edge_algorithm, register_edge_algorithm,
    registered_edge_algorithms, EdgeAlgorithmInfo, EdgePartitionReport, EdgePartitioner,
};
pub use engine::{run_edge_restream, EdgePassStats, EdgeQuality, EdgeSink};
pub use partition::EdgePartition;
