//! Reading recorded traces back: the flat JSON-lines parser and the
//! summary behind the `oms trace` subcommand.
//!
//! The parser understands exactly the grammar `crate::export::trace_jsonl`
//! writes (flat objects, string event names, decimal `u64` values) and
//! reconstructs typed [`Event`]s through [`Event::from_parts`], so a
//! summary can recompute the event-log hash and verify it against the
//! `trace_end` footer — the trace file proves its own integrity.

use crate::event::Event;
use crate::metrics::HistogramSnapshot;
use crate::recorder::replay_hash;
use std::fmt;

/// One parsed trace line: `(event name, numeric fields, seq)`.
pub type ParsedLine = (String, Vec<(String, u64)>, Option<u64>);

/// Splits one flat JSON object line into `(event name, numeric fields,
/// seq)`. Returns an error message for lines outside the trace grammar.
pub fn parse_line(line: &str) -> Result<ParsedLine, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object line: {line}"))?;
    let mut name = None;
    let mut seq = None;
    let mut fields = Vec::new();
    for pair in inner.split(',') {
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed pair '{pair}' in: {line}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key '{key}' in: {line}"))?;
        let value = value.trim();
        if key == "event" {
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("event name must be a string in: {line}"))?;
            name = Some(value.to_string());
        } else {
            let number: u64 = value
                .parse()
                .map_err(|_| format!("non-integer value '{value}' for '{key}' in: {line}"))?;
            if key == "seq" {
                seq = Some(number);
            } else {
                fields.push((key.to_string(), number));
            }
        }
    }
    let name = name.ok_or_else(|| format!("line carries no \"event\" key: {line}"))?;
    Ok((name, fields, seq))
}

/// The `trace_end` footer of a recorded trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFooter {
    /// Total events the recorder saw (retained + dropped).
    pub events: u64,
    /// Events evicted from the ring before export.
    pub dropped: u64,
    /// The recorder's event-log hash.
    pub log_hash: u64,
}

/// A parsed trace: the retained events and the footer.
#[derive(Clone, Debug)]
pub struct ParsedTrace {
    /// Retained `(seq, event)` pairs, oldest first.
    pub events: Vec<(u64, Event)>,
    /// The `trace_end` footer, when the trace was fully written.
    pub footer: Option<TraceFooter>,
}

/// Parses a full JSON-lines trace (as written by
/// `crate::export::trace_jsonl`). Unknown event names are an error — a
/// trace that cannot be reconstructed cannot be verified.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let mut events = Vec::new();
    let mut footer = None;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (name, fields, seq) = parse_line(line)?;
        if name == "trace_end" {
            let get = |key: &str| -> Result<u64, String> {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|&(_, v)| v)
                    .ok_or_else(|| format!("trace_end misses '{key}': {line}"))
            };
            footer = Some(TraceFooter {
                events: get("events")?,
                dropped: get("dropped")?,
                log_hash: get("log_hash")?,
            });
            continue;
        }
        let event = Event::from_parts(&name, &fields)
            .ok_or_else(|| format!("unknown or incomplete event '{name}': {line}"))?;
        events.push((
            seq.ok_or_else(|| format!("event line misses seq: {line}"))?,
            event,
        ));
    }
    Ok(ParsedTrace { events, footer })
}

/// One derived histogram row of a [`TraceSummary`]: a signal rebuilt from
/// event payloads.
#[derive(Clone, Debug)]
pub struct SummaryHistogram {
    /// Signal name.
    pub name: &'static str,
    /// The log-bucketed sketch of the signal.
    pub snapshot: HistogramSnapshot,
}

/// What `oms trace` prints: totals, integrity, per-engine and per-kind
/// event counts, headline aggregates, and histograms rebuilt from the
/// event payloads.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Events retained in the file.
    pub retained: usize,
    /// The footer, when present.
    pub footer: Option<TraceFooter>,
    /// Hash recomputed over the retained events — equals the footer hash
    /// exactly when the trace is complete (`dropped == 0`).
    pub recomputed_hash: u64,
    /// `(engine, events)` counts, in first-seen order.
    pub engines: Vec<(&'static str, usize)>,
    /// `(event name, count)` counts, in first-seen order.
    pub kinds: Vec<(&'static str, usize)>,
    /// Sum of nodes over `pass_end` events.
    pub nodes_scored: u64,
    /// Edge cut of the last `pass_end` / maintained event carrying one.
    pub final_edge_cut: Option<u64>,
    /// Histograms rebuilt from event payloads, densest first.
    pub histograms: Vec<SummaryHistogram>,
}

impl TraceSummary {
    /// Whether the retained events reproduce the footer hash (only
    /// possible for complete traces; `None` without a footer).
    pub fn hash_verified(&self) -> Option<bool> {
        self.footer
            .filter(|f| f.dropped == 0)
            .map(|f| f.log_hash == self.recomputed_hash)
    }
}

/// Summarizes a recorded JSON-lines trace (see [`TraceSummary`]).
pub fn summarize(text: &str) -> Result<TraceSummary, String> {
    let parsed = parse_trace(text)?;
    let mut engines: Vec<(&'static str, usize)> = Vec::new();
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    let mut nodes_scored = 0u64;
    let mut final_edge_cut = None;
    let mut pass_moved = HistogramSnapshot::default();
    let mut round_messages = HistogramSnapshot::default();
    let mut batch_deltas = HistogramSnapshot::default();
    let bump = |table: &mut Vec<(&'static str, usize)>, key: &'static str| match table
        .iter_mut()
        .find(|(k, _)| *k == key)
    {
        Some((_, n)) => *n += 1,
        None => table.push((key, 1)),
    };
    let observe = |hist: &mut HistogramSnapshot, value: u64| {
        let mut one = HistogramSnapshot::default();
        one.buckets[crate::metrics::bucket_index(value)] = 1;
        one.count = 1;
        one.sum = value;
        hist.merge(&one);
    };
    for &(_, event) in &parsed.events {
        bump(&mut engines, event.engine());
        bump(&mut kinds, event.name());
        match event {
            Event::PassEnd {
                nodes,
                edge_cut,
                moved,
                ..
            } => {
                nodes_scored += nodes;
                final_edge_cut = Some(edge_cut);
                observe(&mut pass_moved, moved);
            }
            Event::ShardRound { messages, .. } => observe(&mut round_messages, messages),
            Event::DeltaBatchApplied {
                deltas, edge_cut, ..
            } => {
                observe(&mut batch_deltas, deltas);
                final_edge_cut = Some(edge_cut);
            }
            Event::WindowClosed { edge_cut, .. } | Event::DriftFallback { edge_cut, .. } => {
                final_edge_cut = Some(edge_cut);
            }
            _ => {}
        }
    }
    let mut histograms: Vec<SummaryHistogram> = [
        ("pass_moved", pass_moved),
        ("shard_round_messages", round_messages),
        ("delta_batch_deltas", batch_deltas),
    ]
    .into_iter()
    .filter(|(_, snapshot)| snapshot.count > 0)
    .map(|(name, snapshot)| SummaryHistogram { name, snapshot })
    .collect();
    histograms.sort_by_key(|h| std::cmp::Reverse(h.snapshot.count));
    Ok(TraceSummary {
        retained: parsed.events.len(),
        footer: parsed.footer,
        recomputed_hash: replay_hash(parsed.events.iter().map(|&(_, e)| e)),
        engines,
        kinds,
        nodes_scored,
        final_edge_cut,
        histograms,
    })
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events retained  {}", self.retained)?;
        if let Some(footer) = self.footer {
            writeln!(f, "events recorded  {}", footer.events)?;
            writeln!(f, "events dropped   {}", footer.dropped)?;
            writeln!(f, "log hash         {:#018x}", footer.log_hash)?;
            match self.hash_verified() {
                Some(true) => writeln!(f, "hash check       ok (recomputed from events)")?,
                Some(false) => writeln!(f, "hash check       MISMATCH")?,
                None => writeln!(f, "hash check       skipped (ring dropped events)")?,
            }
        } else {
            writeln!(f, "log hash         (no trace_end footer)")?;
        }
        writeln!(f, "engines:")?;
        for (engine, count) in &self.engines {
            writeln!(f, "  {engine:<10} {count:>8}")?;
        }
        writeln!(f, "events:")?;
        for (kind, count) in &self.kinds {
            writeln!(f, "  {kind:<22} {count:>8}")?;
        }
        if self.nodes_scored > 0 {
            writeln!(f, "nodes scored     {}", self.nodes_scored)?;
        }
        if let Some(cut) = self.final_edge_cut {
            writeln!(f, "final edge cut   {cut}")?;
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms (from event payloads):")?;
            for row in &self.histograms {
                writeln!(
                    f,
                    "  {:<22} count={} mean={:.1} p50<={} p99<={}",
                    row.name,
                    row.snapshot.count,
                    row.snapshot.mean(),
                    row.snapshot.quantile_bound(0.5),
                    row.snapshot.quantile_bound(0.99),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::trace_jsonl;
    use crate::recorder::ObsCore;
    use crate::Observer;

    #[test]
    fn summary_round_trips_a_recorded_trace() {
        let core = ObsCore::new();
        core.record(Event::PassStart { pass: 0 });
        core.record(Event::PassEnd {
            pass: 0,
            nodes: 500,
            edge_cut: 77,
            moved: 500,
        });
        core.record(Event::PassStart { pass: 1 });
        core.record(Event::PassEnd {
            pass: 1,
            nodes: 500,
            edge_cut: 70,
            moved: 31,
        });
        let text = trace_jsonl(&core);
        let summary = summarize(&text).expect("summary parses");
        assert_eq!(summary.retained, 4);
        assert_eq!(summary.footer.unwrap().events, 4);
        assert_eq!(summary.hash_verified(), Some(true));
        assert_eq!(summary.recomputed_hash, core.log_hash());
        assert_eq!(summary.nodes_scored, 1000);
        assert_eq!(summary.final_edge_cut, Some(70));
        assert_eq!(summary.engines, vec![("restream", 4)]);
        let rendered = summary.to_string();
        assert!(rendered.contains("pass_end"));
        assert!(rendered.contains("hash check       ok"));
    }

    #[test]
    fn tampered_trace_fails_the_hash_check() {
        let core = ObsCore::new();
        core.record(Event::PassEnd {
            pass: 0,
            nodes: 500,
            edge_cut: 77,
            moved: 500,
        });
        let tampered = trace_jsonl(&core).replace("\"edge_cut\":77", "\"edge_cut\":78");
        let summary = summarize(&tampered).expect("still parses");
        assert_eq!(summary.hash_verified(), Some(false));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"seq\":0,\"event\":\"no_such_event\"}").is_err());
        assert!(parse_trace("{\"seq\":0,\"pass\":1}").is_err());
    }
}
