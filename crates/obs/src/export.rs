//! Exporters: JSON-lines trace, greppable text table, and
//! Prometheus-style text exposition.
//!
//! Trace grammar (one JSON object per line, fixed key order):
//!
//! ```text
//! {"seq":0,"event":"pass_start","pass":0}
//! {"seq":1,"event":"pass_end","pass":0,"nodes":20000,"edge_cut":10547,"moved":20000}
//! {"event":"trace_end","events":2,"dropped":0,"log_hash":1234567890}
//! ```
//!
//! All values are decimal `u64`s; the final `trace_end` line carries the
//! totals and the event-log hash (which covers evicted events too). The
//! writer and `crate::trace`'s reader share `Event`'s field tables, so a
//! written trace always parses back.

use crate::metrics::{bucket_bound, CounterId, HistId, HIST_BUCKETS};
use crate::recorder::ObsCore;
use std::fmt::Write;

/// Renders the recorder's retained events as a JSON-lines trace,
/// terminated by the `trace_end` footer.
pub fn trace_jsonl(core: &ObsCore) -> String {
    let events = core.events();
    let mut out = String::with_capacity(events.len() * 64 + 64);
    for (seq, event) in &events {
        event.write_jsonl(*seq, &mut out);
    }
    let _ = writeln!(
        out,
        "{{\"event\":\"trace_end\",\"events\":{},\"dropped\":{},\"log_hash\":{}}}",
        core.recorded(),
        core.dropped(),
        core.log_hash()
    );
    out
}

/// Renders the recorder's retained events as a greppable text table
/// (`seq  engine  event  field=value ...`).
pub fn trace_table(core: &ObsCore) -> String {
    let mut out = String::new();
    for (seq, event) in core.events() {
        event.parts(|name, fields| {
            let _ = write!(out, "{seq:>8}  {:<8}  {name:<20}", event.engine());
            for &(key, value) in fields {
                let _ = write!(out, "  {key}={value}");
            }
            out.push('\n');
        });
    }
    let _ = writeln!(
        out,
        "   total  events={} dropped={} log_hash={:#018x}",
        core.recorded(),
        core.dropped(),
        core.log_hash()
    );
    out
}

/// Renders the metrics registry as a Prometheus-style text exposition:
/// `# TYPE` lines, `oms_<name>_total` counters, and cumulative
/// `oms_<name>_bucket{le="..."}` histogram series with `_sum` and
/// `_count`. Zero-valued counters and empty histograms are included, so
/// the exposition's shape is workload-independent.
pub fn prometheus(core: &ObsCore) -> String {
    let metrics = core.metrics();
    let mut out = String::new();
    for id in CounterId::ALL {
        let name = id.name();
        let _ = writeln!(out, "# TYPE oms_{name}_total counter");
        let _ = writeln!(out, "oms_{name}_total {}", metrics.counter(id));
    }
    for id in HistId::ALL {
        let name = id.name();
        let snap = metrics.hist(id);
        let _ = writeln!(out, "# TYPE oms_{name} histogram");
        let mut cumulative = 0u64;
        for b in 0..HIST_BUCKETS {
            cumulative += snap.buckets[b];
            if snap.buckets[b] > 0 || b == 0 {
                let _ = writeln!(
                    out,
                    "oms_{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_bound(b)
                );
            }
        }
        let _ = writeln!(out, "oms_{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "oms_{name}_sum {}", snap.sum);
        let _ = writeln!(out, "oms_{name}_count {}", snap.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Observer};

    fn sample_core() -> ObsCore {
        let core = ObsCore::new();
        core.record(Event::PassStart { pass: 0 });
        core.record(Event::PassEnd {
            pass: 0,
            nodes: 100,
            edge_cut: 42,
            moved: 100,
        });
        core.counter_add(CounterId::NodesScored, 100);
        core.hist_record(HistId::PassMoved, 100);
        core
    }

    #[test]
    fn jsonl_ends_with_footer() {
        let text = trace_jsonl(&sample_core());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"seq\":0,\"event\":\"pass_start\""));
        assert!(lines[2].contains("\"event\":\"trace_end\""));
        assert!(lines[2].contains("\"events\":2"));
    }

    #[test]
    fn table_is_greppable() {
        let text = trace_table(&sample_core());
        assert!(text.contains("pass_end"));
        assert!(text.contains("edge_cut=42"));
        assert!(text.contains("log_hash=0x"));
    }

    #[test]
    fn prometheus_lines_are_well_formed_and_unique() {
        let text = prometheus(&sample_core());
        let mut series: Vec<String> = Vec::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("metric name");
                let kind = it.next().expect("metric kind");
                assert!(matches!(kind, "counter" | "histogram"), "kind {kind}");
                assert!(name.starts_with("oms_"));
                series.push(format!("# {name}"));
                continue;
            }
            let (name_labels, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                value.parse::<u64>().is_ok(),
                "value must be a decimal integer: {line}"
            );
            assert!(name_labels.starts_with("oms_"), "metric prefix: {line}");
            series.push(name_labels.to_string());
        }
        let total = series.len();
        series.sort();
        series.dedup();
        assert_eq!(series.len(), total, "no duplicate series lines");
    }
}
