//! The one wall-clock source of the workspace.
//!
//! Every engine, bench bin and report field that needs a duration goes
//! through [`Stopwatch`] (or the [`time`] helper), so "seconds" means the
//! same thing everywhere by construction. Wall-clock readings stay out of
//! the event trace — they feed reports and the `--metrics` exposition
//! only.

use std::time::Instant;

/// A monotonic stopwatch, started on construction.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since the stopwatch started.
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Whole microseconds elapsed since the stopwatch started (saturating
    /// at `u64::MAX`) — the unit histogram timings are recorded in.
    pub fn micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Runs `f` and returns its result with the elapsed wall seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let clock = Stopwatch::start();
    let value = f();
    (value, clock.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let clock = Stopwatch::start();
        let first = clock.seconds();
        let second = clock.seconds();
        assert!(first >= 0.0);
        assert!(second >= first);
        assert!(clock.micros() < 10_000_000, "a fresh stopwatch reads small");
    }

    #[test]
    fn time_returns_value_and_duration() {
        let (value, seconds) = time(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
    }
}
