//! The typed event vocabulary of the observability layer.
//!
//! Every engine milestone — a restream pass, a shard exchange phase, a
//! delta batch, a replay run — is one [`Event`] value. Payloads are
//! deterministic scalars only (counts, seeds, cut values — never
//! wall-clock), so a recorded event log is a pure function of
//! `(stream, seed)` and can serve as a correctness oracle: hash it, and
//! two runs that should agree must produce the same hash.
//!
//! Events serialize to one flat JSON object per line (see
//! [`Event::write_jsonl`]) and back (see [`Event::from_parts`]); the two
//! directions share the [`Event::parts`] field table, so the trace grammar
//! cannot drift between writer and reader.

/// Maximum number of `u64` words one event encodes to (tag + fields).
pub const MAX_EVENT_WORDS: usize = 8;

/// One engine milestone with its deterministic payload.
///
/// Field values are counts, ids and quality scalars; wall-clock durations
/// are deliberately impossible to carry (see the [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A restream pass over the node stream is starting.
    PassStart {
        /// Pass index (0 = initial streaming pass).
        pass: u32,
    },
    /// A restream pass finished and was accepted.
    PassEnd {
        /// Pass index.
        pass: u32,
        /// Nodes the stream delivered to the sink in this pass.
        nodes: u64,
        /// Edge cut measured after the pass (0 when the run is untracked).
        edge_cut: u64,
        /// Nodes that changed blocks in this pass (0 when untracked).
        moved: u64,
    },
    /// A restream pass regressed quality and was rolled back to the best
    /// assignment seen.
    PassReverted {
        /// Index of the reverted pass.
        pass: u32,
        /// Edge cut of the restored (kept) assignment.
        kept_cut: u64,
    },
    /// A buffered algorithm scored one batch of nodes.
    BatchScored {
        /// Batch index within the pass.
        batch: u64,
        /// Nodes scored in the batch.
        nodes: u64,
    },
    /// The sharded engine completed one BSP round.
    ShardRound {
        /// Round index (1-based, as counted by `ShardStats`).
        round: u64,
        /// Messages delivered in the round (both exchange phases).
        messages: u64,
    },
    /// One phase of a sharded exchange completed.
    ExchangePhase {
        /// Round index the phase belongs to.
        round: u64,
        /// Phase number: 1 = load-delta/assignment, 2 = load-vector gossip.
        phase: u32,
        /// Messages delivered in the phase.
        messages: u64,
    },
    /// A sharded run finished; the engine's message statistics in one
    /// event (the structured twin of `ShardStats`).
    ShardSummary {
        /// Number of shards.
        shards: u32,
        /// BSP rounds executed.
        rounds: u64,
        /// Total messages delivered.
        messages: u64,
        /// Messages carrying load deltas / vectors.
        load_messages: u64,
        /// Messages carrying assignments.
        assignment_messages: u64,
        /// The engine's seeded FNV-1a message-log hash.
        log_hash: u64,
    },
    /// A delta batch was applied to a maintained partition.
    DeltaBatchApplied {
        /// Deltas applied by the call.
        deltas: u64,
        /// Local re-scoring steps performed.
        rescored: u64,
        /// Re-scored nodes that changed blocks.
        moved: u64,
        /// Full restream fallbacks the call triggered.
        restreams: u64,
        /// Maintained edge cut after the batch.
        edge_cut: u64,
    },
    /// Drift exceeded the job's threshold and a full restream fallback ran.
    DriftFallback {
        /// Cumulative fallback count (including this one).
        restreams: u64,
        /// Maintained edge cut after the fallback.
        edge_cut: u64,
    },
    /// A partition snapshot was persisted.
    SnapshotWritten {
        /// Cumulative deltas applied at snapshot time.
        deltas_applied: u64,
        /// Maintained edge cut at snapshot time.
        edge_cut: u64,
    },
    /// A partition service resumed from a snapshot.
    SnapshotResumed {
        /// Cumulative deltas the snapshot had applied.
        deltas_applied: u64,
        /// Maintained edge cut restored from the snapshot.
        edge_cut: u64,
    },
    /// A sliding-window checkpoint closed during trace driving.
    WindowClosed {
        /// Checkpoint number (0-based, dense).
        checkpoint: u64,
        /// 0-based index of the trace batch the window ended on.
        batch: u64,
        /// Deltas ingested in the window.
        deltas: u64,
        /// Maintained edge cut at the checkpoint.
        edge_cut: u64,
    },
    /// An edge-partitioning pass finished and was accepted.
    EdgePassEnd {
        /// Pass index.
        pass: u32,
        /// Total replica count after the pass.
        total_replicas: u64,
        /// Edges that changed blocks in the pass.
        moved: u64,
    },
    /// An edge-partitioning pass regressed and was rolled back.
    EdgePassReverted {
        /// Index of the reverted pass.
        pass: u32,
        /// Total replica count of the restored assignment.
        kept_replicas: u64,
    },
    /// A traffic replay finished; the simulator's outcome in one event.
    ReplaySummary {
        /// Requests issued.
        requests: u64,
        /// Requests served to completion.
        served: u64,
        /// Requests shed at admission.
        rejected: u64,
        /// Vertex touches executed.
        total_hops: u64,
        /// Touches that crossed a block boundary.
        cross_block_hops: u64,
        /// The simulator's FNV-1a request-log hash.
        log_hash: u64,
    },
}

/// One `(field name, value)` table per event — the single source of truth
/// for serialization, parsing and hashing.
macro_rules! event_table {
    ($self:expr, $f:expr) => {
        match $self {
            Event::PassStart { pass } => $f(1, "pass_start", &[("pass", *pass as u64)]),
            Event::PassEnd {
                pass,
                nodes,
                edge_cut,
                moved,
            } => $f(
                2,
                "pass_end",
                &[
                    ("pass", *pass as u64),
                    ("nodes", *nodes),
                    ("edge_cut", *edge_cut),
                    ("moved", *moved),
                ],
            ),
            Event::PassReverted { pass, kept_cut } => $f(
                3,
                "pass_reverted",
                &[("pass", *pass as u64), ("kept_cut", *kept_cut)],
            ),
            Event::BatchScored { batch, nodes } => {
                $f(4, "batch_scored", &[("batch", *batch), ("nodes", *nodes)])
            }
            Event::ShardRound { round, messages } => $f(
                5,
                "shard_round",
                &[("round", *round), ("messages", *messages)],
            ),
            Event::ExchangePhase {
                round,
                phase,
                messages,
            } => $f(
                6,
                "exchange_phase",
                &[
                    ("round", *round),
                    ("phase", *phase as u64),
                    ("messages", *messages),
                ],
            ),
            Event::ShardSummary {
                shards,
                rounds,
                messages,
                load_messages,
                assignment_messages,
                log_hash,
            } => $f(
                7,
                "shard_summary",
                &[
                    ("shards", *shards as u64),
                    ("rounds", *rounds),
                    ("messages", *messages),
                    ("load_messages", *load_messages),
                    ("assignment_messages", *assignment_messages),
                    ("log_hash", *log_hash),
                ],
            ),
            Event::DeltaBatchApplied {
                deltas,
                rescored,
                moved,
                restreams,
                edge_cut,
            } => $f(
                8,
                "delta_batch_applied",
                &[
                    ("deltas", *deltas),
                    ("rescored", *rescored),
                    ("moved", *moved),
                    ("restreams", *restreams),
                    ("edge_cut", *edge_cut),
                ],
            ),
            Event::DriftFallback {
                restreams,
                edge_cut,
            } => $f(
                9,
                "drift_fallback",
                &[("restreams", *restreams), ("edge_cut", *edge_cut)],
            ),
            Event::SnapshotWritten {
                deltas_applied,
                edge_cut,
            } => $f(
                10,
                "snapshot_written",
                &[("deltas_applied", *deltas_applied), ("edge_cut", *edge_cut)],
            ),
            Event::SnapshotResumed {
                deltas_applied,
                edge_cut,
            } => $f(
                11,
                "snapshot_resumed",
                &[("deltas_applied", *deltas_applied), ("edge_cut", *edge_cut)],
            ),
            Event::WindowClosed {
                checkpoint,
                batch,
                deltas,
                edge_cut,
            } => $f(
                12,
                "window_closed",
                &[
                    ("checkpoint", *checkpoint),
                    ("batch", *batch),
                    ("deltas", *deltas),
                    ("edge_cut", *edge_cut),
                ],
            ),
            Event::EdgePassEnd {
                pass,
                total_replicas,
                moved,
            } => $f(
                13,
                "edge_pass_end",
                &[
                    ("pass", *pass as u64),
                    ("total_replicas", *total_replicas),
                    ("moved", *moved),
                ],
            ),
            Event::EdgePassReverted {
                pass,
                kept_replicas,
            } => $f(
                14,
                "edge_pass_reverted",
                &[("pass", *pass as u64), ("kept_replicas", *kept_replicas)],
            ),
            Event::ReplaySummary {
                requests,
                served,
                rejected,
                total_hops,
                cross_block_hops,
                log_hash,
            } => $f(
                15,
                "replay_summary",
                &[
                    ("requests", *requests),
                    ("served", *served),
                    ("rejected", *rejected),
                    ("total_hops", *total_hops),
                    ("cross_block_hops", *cross_block_hops),
                    ("log_hash", *log_hash),
                ],
            ),
        }
    };
}

impl Event {
    /// The event's snake_case name, as it appears in every exporter.
    pub fn name(&self) -> &'static str {
        event_table!(self, |_tag, name, _fields: &[(&'static str, u64)]| name)
    }

    /// The engine family the event belongs to — the grouping `oms trace`
    /// summarizes by.
    pub fn engine(&self) -> &'static str {
        match self {
            Event::PassStart { .. }
            | Event::PassEnd { .. }
            | Event::PassReverted { .. }
            | Event::BatchScored { .. } => "restream",
            Event::ShardRound { .. } | Event::ExchangePhase { .. } | Event::ShardSummary { .. } => {
                "shard"
            }
            Event::DeltaBatchApplied { .. }
            | Event::DriftFallback { .. }
            | Event::SnapshotWritten { .. }
            | Event::SnapshotResumed { .. }
            | Event::WindowClosed { .. } => "dynamic",
            Event::EdgePassEnd { .. } | Event::EdgePassReverted { .. } => "edgepart",
            Event::ReplaySummary { .. } => "replay",
        }
    }

    /// Calls `visit` with the event's name and `(field, value)` table.
    pub fn parts<R>(&self, visit: impl FnOnce(&'static str, &[(&'static str, u64)]) -> R) -> R {
        event_table!(self, |_tag, name, fields: &[(&'static str, u64)]| visit(
            name, fields
        ))
    }

    /// Encodes the event as `u64` words (tag followed by field values) —
    /// the representation the flight recorder's FNV-1a log hash folds.
    /// Returns the filled prefix of the buffer. Never allocates.
    pub fn encode(&self, buf: &mut [u64; MAX_EVENT_WORDS]) -> usize {
        event_table!(self, |tag: u64, _name, fields: &[(&'static str, u64)]| {
            buf[0] = tag;
            for (i, &(_, value)) in fields.iter().enumerate() {
                buf[i + 1] = value;
            }
            fields.len() + 1
        })
    }

    /// Appends the event as one flat JSON object line
    /// (`{"seq":N,"event":"...","field":value,...}\n`) to `out`.
    pub fn write_jsonl(&self, seq: u64, out: &mut String) {
        use std::fmt::Write;
        self.parts(|name, fields| {
            let _ = write!(out, "{{\"seq\":{seq},\"event\":\"{name}\"");
            for &(key, value) in fields {
                let _ = write!(out, ",\"{key}\":{value}");
            }
            out.push_str("}\n");
        });
    }

    /// Reconstructs an event from its name and parsed `(field, value)`
    /// pairs — the inverse of [`Event::write_jsonl`]. Returns `None` for
    /// unknown names or missing fields (extra fields are ignored).
    pub fn from_parts(name: &str, fields: &[(String, u64)]) -> Option<Event> {
        let get =
            |key: &str| -> Option<u64> { fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v) };
        let event = match name {
            "pass_start" => Event::PassStart {
                pass: get("pass")? as u32,
            },
            "pass_end" => Event::PassEnd {
                pass: get("pass")? as u32,
                nodes: get("nodes")?,
                edge_cut: get("edge_cut")?,
                moved: get("moved")?,
            },
            "pass_reverted" => Event::PassReverted {
                pass: get("pass")? as u32,
                kept_cut: get("kept_cut")?,
            },
            "batch_scored" => Event::BatchScored {
                batch: get("batch")?,
                nodes: get("nodes")?,
            },
            "shard_round" => Event::ShardRound {
                round: get("round")?,
                messages: get("messages")?,
            },
            "exchange_phase" => Event::ExchangePhase {
                round: get("round")?,
                phase: get("phase")? as u32,
                messages: get("messages")?,
            },
            "shard_summary" => Event::ShardSummary {
                shards: get("shards")? as u32,
                rounds: get("rounds")?,
                messages: get("messages")?,
                load_messages: get("load_messages")?,
                assignment_messages: get("assignment_messages")?,
                log_hash: get("log_hash")?,
            },
            "delta_batch_applied" => Event::DeltaBatchApplied {
                deltas: get("deltas")?,
                rescored: get("rescored")?,
                moved: get("moved")?,
                restreams: get("restreams")?,
                edge_cut: get("edge_cut")?,
            },
            "drift_fallback" => Event::DriftFallback {
                restreams: get("restreams")?,
                edge_cut: get("edge_cut")?,
            },
            "snapshot_written" => Event::SnapshotWritten {
                deltas_applied: get("deltas_applied")?,
                edge_cut: get("edge_cut")?,
            },
            "snapshot_resumed" => Event::SnapshotResumed {
                deltas_applied: get("deltas_applied")?,
                edge_cut: get("edge_cut")?,
            },
            "window_closed" => Event::WindowClosed {
                checkpoint: get("checkpoint")?,
                batch: get("batch")?,
                deltas: get("deltas")?,
                edge_cut: get("edge_cut")?,
            },
            "edge_pass_end" => Event::EdgePassEnd {
                pass: get("pass")? as u32,
                total_replicas: get("total_replicas")?,
                moved: get("moved")?,
            },
            "edge_pass_reverted" => Event::EdgePassReverted {
                pass: get("pass")? as u32,
                kept_replicas: get("kept_replicas")?,
            },
            "replay_summary" => Event::ReplaySummary {
                requests: get("requests")?,
                served: get("served")?,
                rejected: get("rejected")?,
                total_hops: get("total_hops")?,
                cross_block_hops: get("cross_block_hops")?,
                log_hash: get("log_hash")?,
            },
            _ => return None,
        };
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::PassStart { pass: 0 },
            Event::PassEnd {
                pass: 1,
                nodes: 1000,
                edge_cut: 42,
                moved: 7,
            },
            Event::PassReverted {
                pass: 2,
                kept_cut: 40,
            },
            Event::BatchScored {
                batch: 3,
                nodes: 512,
            },
            Event::ShardRound {
                round: 4,
                messages: 12,
            },
            Event::ExchangePhase {
                round: 4,
                phase: 2,
                messages: 6,
            },
            Event::ShardSummary {
                shards: 4,
                rounds: 9,
                messages: 120,
                load_messages: 80,
                assignment_messages: 40,
                log_hash: u64::MAX - 3,
            },
            Event::DeltaBatchApplied {
                deltas: 200,
                rescored: 300,
                moved: 12,
                restreams: 1,
                edge_cut: 999,
            },
            Event::DriftFallback {
                restreams: 2,
                edge_cut: 950,
            },
            Event::SnapshotWritten {
                deltas_applied: 400,
                edge_cut: 950,
            },
            Event::SnapshotResumed {
                deltas_applied: 400,
                edge_cut: 950,
            },
            Event::WindowClosed {
                checkpoint: 1,
                batch: 3,
                deltas: 600,
                edge_cut: 940,
            },
            Event::EdgePassEnd {
                pass: 0,
                total_replicas: 1234,
                moved: 500,
            },
            Event::EdgePassReverted {
                pass: 1,
                kept_replicas: 1200,
            },
            Event::ReplaySummary {
                requests: 2000,
                served: 1990,
                rejected: 10,
                total_hops: 16000,
                cross_block_hops: 4000,
                log_hash: 0xcbf29ce484222325,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for (seq, event) in samples().into_iter().enumerate() {
            let mut line = String::new();
            event.write_jsonl(seq as u64, &mut line);
            let parsed = crate::trace::parse_line(line.trim_end()).expect("line parses");
            let (name, fields, seq_back) = parsed;
            assert_eq!(seq_back, Some(seq as u64));
            let back = Event::from_parts(&name, &fields).expect("event reconstructs");
            assert_eq!(back, event, "round trip must be lossless");
        }
    }

    #[test]
    fn tags_are_unique() {
        let mut tags: Vec<u64> = samples()
            .iter()
            .map(|e| {
                let mut buf = [0u64; MAX_EVENT_WORDS];
                e.encode(&mut buf);
                buf[0]
            })
            .collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), samples().len(), "event tags must be distinct");
    }

    #[test]
    fn encode_covers_every_field() {
        for event in samples() {
            let mut buf = [0u64; MAX_EVENT_WORDS];
            let words = event.encode(&mut buf);
            let fields = event.parts(|_, fields| fields.len());
            assert_eq!(words, fields + 1, "tag plus one word per field");
            assert!(words <= MAX_EVENT_WORDS);
        }
    }
}
