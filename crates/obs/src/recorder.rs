//! The flight recorder: a bounded ring of recent events plus the FNV-1a
//! event-log hash over *all* events ever recorded.
//!
//! The ring keeps the newest events (oldest are evicted once the bound is
//! hit, counted in [`FlightRecorder::dropped`]), while the log hash folds
//! every event whether or not it survives eviction — so the hash is a pure
//! function of `(stream, seed)` regardless of the ring's capacity, exactly
//! like the sharded engine's message-log hash.

use crate::event::{Event, MAX_EVENT_WORDS};
use crate::metrics::{CounterId, HistId, Metrics};
use crate::Observer;
use std::collections::VecDeque;
use std::sync::Mutex;

/// FNV-1a offset basis, shared with the sharded engine's message log.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

/// Folds one word into an FNV-1a running hash.
fn fnv_fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

/// Default ring capacity: large enough that the test and CLI workloads
/// never evict, small enough to bound memory on long-running services.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A bounded ring of `(sequence, event)` pairs with a running event-log
/// hash (see the [module docs](self)).
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<(u64, Event)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    hash: u64,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` events (clamped to
    /// ≥ 1). The ring is allocated up front; recording never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
            hash: FNV_OFFSET,
        }
    }

    /// Records one event: assigns the next sequence number, folds the
    /// event into the log hash, and appends it to the ring (evicting the
    /// oldest event when full).
    pub fn record(&mut self, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut words = [0u64; MAX_EVENT_WORDS];
        let n = event.encode(&mut words);
        for &word in &words[..n] {
            self.hash = fnv_fold(self.hash, word);
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((seq, event));
    }

    /// Events currently held, oldest first, with their sequence numbers.
    pub fn events(&self) -> impl Iterator<Item = (u64, Event)> + '_ {
        self.ring.iter().copied()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The FNV-1a hash over every event ever recorded (including evicted
    /// ones) — a pure function of the recorded event sequence.
    pub fn log_hash(&self) -> u64 {
        self.hash
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

/// Recomputes the event-log hash of a full (non-evicted) event sequence —
/// the check `oms trace` runs against a trace file's recorded hash.
pub fn replay_hash(events: impl IntoIterator<Item = Event>) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut words = [0u64; MAX_EVENT_WORDS];
    for event in events {
        let n = event.encode(&mut words);
        for &word in &words[..n] {
            hash = fnv_fold(hash, word);
        }
    }
    hash
}

/// The standard recording observer: a [`FlightRecorder`] behind a mutex
/// plus a lock-free [`Metrics`] registry. Install one with
/// [`crate::install`] and export it with the `crate::export` helpers.
#[derive(Debug, Default)]
pub struct ObsCore {
    recorder: Mutex<FlightRecorder>,
    metrics: Metrics,
}

impl ObsCore {
    /// A core with the default ring capacity.
    pub fn new() -> Self {
        ObsCore::default()
    }

    /// A core whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        ObsCore {
            recorder: Mutex::new(FlightRecorder::with_capacity(capacity)),
            metrics: Metrics::new(),
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<(u64, Event)> {
        self.recorder
            .lock()
            .expect("recorder poisoned")
            .events()
            .collect()
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorder.lock().expect("recorder poisoned").recorded()
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.recorder.lock().expect("recorder poisoned").dropped()
    }

    /// The event-log hash (see [`FlightRecorder::log_hash`]).
    pub fn log_hash(&self) -> u64 {
        self.recorder.lock().expect("recorder poisoned").log_hash()
    }
}

impl Observer for ObsCore {
    fn record(&self, event: Event) {
        let mut recorder = self.recorder.lock().expect("recorder poisoned");
        recorder.record(event);
        if recorder.dropped() > 0 {
            // Keep the metrics view of eviction in sync with the ring.
            let dropped = recorder.dropped();
            drop(recorder);
            let seen = self.metrics.counter(CounterId::EventsDropped);
            if dropped > seen {
                self.metrics
                    .counter_add(CounterId::EventsDropped, dropped - seen);
            }
        }
    }

    fn counter_add(&self, id: CounterId, n: u64) {
        self.metrics.counter_add(id, n);
    }

    fn hist_record(&self, id: HistId, value: u64) {
        self.metrics.hist_record(id, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_keeps_newest_and_counts_drops() {
        let mut rec = FlightRecorder::with_capacity(4);
        for pass in 0..10u32 {
            rec.record(Event::PassStart { pass });
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.recorded(), 10);
        let held: Vec<_> = rec.events().collect();
        assert_eq!(
            held,
            (6..10)
                .map(|p| (p as u64, Event::PassStart { pass: p }))
                .collect::<Vec<_>>(),
            "the ring must keep the newest events with their sequence numbers"
        );
    }

    #[test]
    fn hash_covers_evicted_events() {
        let mut small = FlightRecorder::with_capacity(2);
        let mut large = FlightRecorder::with_capacity(1024);
        for pass in 0..50u32 {
            small.record(Event::PassStart { pass });
            large.record(Event::PassStart { pass });
        }
        assert_eq!(
            small.log_hash(),
            large.log_hash(),
            "the log hash must not depend on ring capacity"
        );
        assert_eq!(
            large.log_hash(),
            replay_hash((0..50u32).map(|pass| Event::PassStart { pass })),
            "replay_hash must reproduce the recorder's hash"
        );
    }

    #[test]
    fn hash_is_order_sensitive() {
        let a = replay_hash([Event::PassStart { pass: 0 }, Event::PassStart { pass: 1 }]);
        let b = replay_hash([Event::PassStart { pass: 1 }, Event::PassStart { pass: 0 }]);
        assert_ne!(a, b);
    }
}
