//! The allocation-free metrics registry: named counters and log-bucketed
//! histograms for hot-path signals.
//!
//! Counters and histogram cells are plain `AtomicU64`s in fixed arrays —
//! recording never allocates, never locks, and costs one relaxed atomic
//! add, so instrumented hot paths still pass the counting-allocator gate
//! and the throughput regression gate. Histograms use power-of-two
//! (HDR-style) buckets: value `v` lands in bucket `bit_length(v)`, so 65
//! buckets cover the full `u64` range with ≤ 2× relative error.

use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one monotone counter in the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterId {
    /// Nodes scored by the flat scoring kernels (including repair
    /// re-scoring).
    NodesScored,
    /// Nodes that took the degree ≤ 2 register fast path.
    DegLe2FastPath,
    /// Restream passes executed by the batch executor.
    RestreamPasses,
    /// Restream passes that were reverted.
    RestreamReverts,
    /// BSP rounds executed by the sharded engine.
    ShardRounds,
    /// Messages delivered by the sharded engine (all phases).
    ShardMessages,
    /// Load-delta / load-vector messages delivered.
    ShardLoadMessages,
    /// Assignment messages delivered.
    ShardAssignmentMessages,
    /// Deltas applied to maintained partitions.
    DeltasApplied,
    /// Local repair re-scoring steps.
    RepairRescored,
    /// Repair steps that moved a node between blocks.
    RepairMoves,
    /// Drift-triggered full restream fallbacks.
    DriftFallbacks,
    /// Partition snapshots written.
    SnapshotsWritten,
    /// Partition services resumed from snapshots.
    SnapshotsResumed,
    /// Replay requests issued.
    ReplayRequests,
    /// Replay requests served to completion.
    ReplayServed,
    /// Replay requests shed at admission.
    ReplayRejected,
    /// Replay vertex touches executed.
    ReplayHops,
    /// Replay touches that crossed a block boundary.
    ReplayCrossBlockHops,
    /// Edge-partitioning passes executed.
    EdgePasses,
    /// Events evicted from the flight recorder's ring buffer.
    EventsDropped,
}

impl CounterId {
    /// Every counter, in registry order.
    pub const ALL: [CounterId; 21] = [
        CounterId::NodesScored,
        CounterId::DegLe2FastPath,
        CounterId::RestreamPasses,
        CounterId::RestreamReverts,
        CounterId::ShardRounds,
        CounterId::ShardMessages,
        CounterId::ShardLoadMessages,
        CounterId::ShardAssignmentMessages,
        CounterId::DeltasApplied,
        CounterId::RepairRescored,
        CounterId::RepairMoves,
        CounterId::DriftFallbacks,
        CounterId::SnapshotsWritten,
        CounterId::SnapshotsResumed,
        CounterId::ReplayRequests,
        CounterId::ReplayServed,
        CounterId::ReplayRejected,
        CounterId::ReplayHops,
        CounterId::ReplayCrossBlockHops,
        CounterId::EdgePasses,
        CounterId::EventsDropped,
    ];

    /// The counter's snake_case name (also its Prometheus base name).
    pub fn name(&self) -> &'static str {
        match self {
            CounterId::NodesScored => "nodes_scored",
            CounterId::DegLe2FastPath => "deg_le2_fast_path",
            CounterId::RestreamPasses => "restream_passes",
            CounterId::RestreamReverts => "restream_reverts",
            CounterId::ShardRounds => "shard_rounds",
            CounterId::ShardMessages => "shard_messages",
            CounterId::ShardLoadMessages => "shard_load_messages",
            CounterId::ShardAssignmentMessages => "shard_assignment_messages",
            CounterId::DeltasApplied => "deltas_applied",
            CounterId::RepairRescored => "repair_rescored",
            CounterId::RepairMoves => "repair_moves",
            CounterId::DriftFallbacks => "drift_fallbacks",
            CounterId::SnapshotsWritten => "snapshots_written",
            CounterId::SnapshotsResumed => "snapshots_resumed",
            CounterId::ReplayRequests => "replay_requests",
            CounterId::ReplayServed => "replay_served",
            CounterId::ReplayRejected => "replay_rejected",
            CounterId::ReplayHops => "replay_hops",
            CounterId::ReplayCrossBlockHops => "replay_cross_block_hops",
            CounterId::EdgePasses => "edge_passes",
            CounterId::EventsDropped => "events_dropped",
        }
    }
}

/// Identifies one histogram in the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistId {
    /// Nodes moved per accepted restream pass.
    PassMoved,
    /// Messages delivered per sharded BSP round.
    ShardRoundMessages,
    /// Deltas per applied batch.
    DeltaBatchDeltas,
    /// Entry-block backlog (queue ticks ahead) per admitted replay
    /// request.
    ReplayQueueDepth,
    /// Simulated latency (ticks) per served replay request.
    ReplayLatencyTicks,
    /// Wall microseconds per restream pass. The one non-deterministic
    /// signal in the registry — it feeds `--metrics` exposition only and
    /// never enters the event trace or its hash.
    PassMicros,
}

impl HistId {
    /// Every histogram, in registry order.
    pub const ALL: [HistId; 6] = [
        HistId::PassMoved,
        HistId::ShardRoundMessages,
        HistId::DeltaBatchDeltas,
        HistId::ReplayQueueDepth,
        HistId::ReplayLatencyTicks,
        HistId::PassMicros,
    ];

    /// The histogram's snake_case name (also its Prometheus base name).
    pub fn name(&self) -> &'static str {
        match self {
            HistId::PassMoved => "pass_moved",
            HistId::ShardRoundMessages => "shard_round_messages",
            HistId::DeltaBatchDeltas => "delta_batch_deltas",
            HistId::ReplayQueueDepth => "replay_queue_depth",
            HistId::ReplayLatencyTicks => "replay_latency_ticks",
            HistId::PassMicros => "pass_micros",
        }
    }
}

/// Number of log₂ buckets a histogram holds (`bit_length(u64)` + 1).
pub const HIST_BUCKETS: usize = 65;

/// The bucket index of `value`: 0 for 0, otherwise the value's bit
/// length, so bucket `b ≥ 1` spans `[2^(b−1), 2^b)`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `index` (the Prometheus `le`
/// label).
pub fn bucket_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// One log-bucketed histogram of `u64` samples, recordable without
/// allocation or locking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample. The running sum saturates rather than wraps,
    /// so extreme samples cannot corrupt the mean's sign.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
    }

    /// A plain-value copy of the histogram's current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value histogram state: per-bucket counts, total count and sum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log₂ bucket (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self`. Merging is commutative and associative
    /// (sums saturate, and saturating addition stays associative), so
    /// shard-local histograms can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The smallest bucket upper bound at or above quantile `q` of the
    /// recorded samples (0 when empty) — a ≤ 2× overestimate of the true
    /// quantile, like any log-bucketed sketch.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(HIST_BUCKETS - 1)
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The full metrics registry: one cell per [`CounterId`], one histogram
/// per [`HistId`].
#[derive(Debug, Default)]
pub struct Metrics {
    counters: [AtomicU64; CounterId::ALL.len()],
    hists: [Histogram; HistId::ALL.len()],
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to a counter (relaxed; never allocates).
    pub fn counter_add(&self, id: CounterId, n: u64) {
        self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// The current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Records one histogram sample (relaxed; never allocates).
    pub fn hist_record(&self, id: HistId, value: u64) {
        self.hists[id as usize].record(value);
    }

    /// A plain-value copy of one histogram.
    pub fn hist(&self, id: HistId) -> HistogramSnapshot {
        self.hists[id as usize].snapshot()
    }

    /// Every `(counter, value)` pair, in registry order.
    pub fn counters(&self) -> Vec<(CounterId, u64)> {
        CounterId::ALL
            .iter()
            .map(|&id| (id, self.counter(id)))
            .collect()
    }

    /// Every `(histogram, snapshot)` pair, in registry order.
    pub fn histograms(&self) -> Vec<(HistId, HistogramSnapshot)> {
        HistId::ALL.iter().map(|&id| (id, self.hist(id))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..64usize {
            let low = 1u64 << (b - 1);
            assert_eq!(bucket_index(low), b);
            assert_eq!(bucket_index(bucket_bound(b)), b);
        }
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<_> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.extend(HistId::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "metric names must not collide");
    }

    #[test]
    fn quantile_bound_brackets_samples() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1106);
        assert!(snap.quantile_bound(0.5) >= 3);
        assert!(snap.quantile_bound(1.0) >= 1000);
        assert!(snap.quantile_bound(1.0) < 2048);
    }
}
