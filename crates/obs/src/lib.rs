//! Deterministic runtime observability for the OMS engines.
//!
//! Every engine in the workspace (the batch executor, the sharded BSP
//! engine, the dynamic maintenance service, the edge restream engine, the
//! traffic replay simulator) reports its milestones through this crate:
//!
//! * **Events** ([`Event`]) — typed milestones with deterministic scalar
//!   payloads (counts, cuts, hashes; never wall-clock), recorded into a
//!   bounded flight-recorder ring ([`FlightRecorder`]) with monotone
//!   sequence numbers and an FNV-1a event-log hash. Because payloads are
//!   pure functions of `(stream, seed)`, the hash doubles as a
//!   determinism oracle, like the sharded engine's message-log hash.
//! * **Metrics** ([`Metrics`]) — allocation-free counters and
//!   log-bucketed histograms for hot-path signals (nodes scored, fast-path
//!   hits, per-shard messages, replay queue depths). Recording is one
//!   relaxed atomic op, so instrumented paths still pass the workspace's
//!   counting-allocator and throughput gates.
//! * **Exporters** (`export`) — JSON-lines trace, greppable table, and
//!   Prometheus-style exposition; `trace` parses a written trace back and
//!   verifies its hash.
//! * **[`Stopwatch`]** — the one wall-clock source every report and bench
//!   shares. Wall time feeds reports and `--metrics` only, never the
//!   event trace.
//!
//! # Enabling
//!
//! Observability is **off by default and free when off**: engines call the
//! [`observe`] / [`counter_add`] / [`hist_record`] free functions, which
//! consult a thread-local observer slot. With nothing installed (or with
//! [`NoopObserver`] installed) the call is a thread-local load and a
//! branch — no allocation, no locking, no event construction cost beyond
//! a few scalar copies. To record, install an observer for a scope:
//!
//! ```
//! use oms_obs::{recording, Event};
//!
//! let (core, guard) = recording(1 << 16);
//! oms_obs::observe(Event::PassStart { pass: 0 }); // recorded
//! drop(guard); // slot restored; later calls are no-ops again
//! assert_eq!(core.recorded(), 1);
//! ```
//!
//! The slot is thread-local, so concurrent tests (and engines on other
//! threads) never observe each other's runs; engines emit events from
//! their driving thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod stopwatch;
pub mod trace;

pub use event::Event;
pub use export::{prometheus, trace_jsonl, trace_table};
pub use metrics::{
    bucket_bound, bucket_index, CounterId, HistId, Histogram, HistogramSnapshot, Metrics,
    HIST_BUCKETS,
};
pub use recorder::{replay_hash, FlightRecorder, ObsCore, DEFAULT_CAPACITY};
pub use stopwatch::{time, Stopwatch};
pub use trace::{parse_trace, summarize, ParsedTrace, TraceFooter, TraceSummary};

use std::cell::RefCell;
use std::sync::Arc;

/// A consumer of engine telemetry. [`ObsCore`] is the standard recording
/// implementation; [`NoopObserver`] discards everything.
///
/// Implementations must not call back into [`observe`] /
/// [`counter_add`] / [`hist_record`] (the thread-local slot is borrowed
/// while an observer runs).
pub trait Observer: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: Event);

    /// Adds `n` to a counter. Defaults to discarding.
    fn counter_add(&self, id: CounterId, n: u64) {
        let _ = (id, n);
    }

    /// Records one histogram sample. Defaults to discarding.
    fn hist_record(&self, id: HistId, value: u64) {
        let _ = (id, value);
    }
}

/// The observer that discards everything — behaviorally identical to
/// having no observer installed, and just as free on the hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn record(&self, _event: Event) {}
}

thread_local! {
    static OBSERVER: RefCell<Option<Arc<dyn Observer>>> = const { RefCell::new(None) };
}

/// Restores the previously installed observer (if any) when dropped.
#[must_use = "dropping the guard immediately uninstalls the observer"]
pub struct ObsGuard {
    prev: Option<Arc<dyn Observer>>,
    done: bool,
}

impl std::fmt::Debug for ObsGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsGuard")
            .field("restores_previous", &self.prev.is_some())
            .finish()
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if !self.done {
            self.done = true;
            let prev = self.prev.take();
            OBSERVER.with(|slot| *slot.borrow_mut() = prev);
        }
    }
}

/// Installs `observer` in this thread's slot for the guard's lifetime;
/// the previous observer (if any) is restored when the guard drops.
pub fn install(observer: Arc<dyn Observer>) -> ObsGuard {
    let prev = OBSERVER.with(|slot| slot.borrow_mut().replace(observer));
    ObsGuard { prev, done: false }
}

/// Builds an [`ObsCore`] with the given ring capacity and installs it,
/// returning the core (for export) and the install guard.
pub fn recording(capacity: usize) -> (Arc<ObsCore>, ObsGuard) {
    let core = Arc::new(ObsCore::with_capacity(capacity));
    let guard = install(core.clone());
    (core, guard)
}

/// Whether an observer is installed on this thread.
#[inline]
pub fn is_enabled() -> bool {
    OBSERVER.with(|slot| slot.borrow().is_some())
}

/// Sends one event to the installed observer; free no-op when none is.
#[inline]
pub fn observe(event: Event) {
    OBSERVER.with(|slot| {
        if let Some(observer) = slot.borrow().as_ref() {
            observer.record(event);
        }
    });
}

/// Adds `n` to a counter of the installed observer; free no-op when none
/// is.
#[inline]
pub fn counter_add(id: CounterId, n: u64) {
    OBSERVER.with(|slot| {
        if let Some(observer) = slot.borrow().as_ref() {
            observer.counter_add(id, n);
        }
    });
}

/// Records a histogram sample on the installed observer; free no-op when
/// none is.
#[inline]
pub fn hist_record(id: HistId, value: u64) {
    OBSERVER.with(|slot| {
        if let Some(observer) = slot.borrow().as_ref() {
            observer.hist_record(id, value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_slot_discards_everything() {
        assert!(!is_enabled());
        observe(Event::PassStart { pass: 0 });
        counter_add(CounterId::NodesScored, 5);
        hist_record(HistId::PassMoved, 5);
        assert!(!is_enabled());
    }

    #[test]
    fn guard_scopes_recording_and_restores_previous() {
        let (outer, outer_guard) = recording(16);
        observe(Event::PassStart { pass: 0 });
        {
            let (inner, inner_guard) = recording(16);
            observe(Event::PassStart { pass: 1 });
            assert_eq!(inner.recorded(), 1);
            drop(inner_guard);
        }
        observe(Event::PassStart { pass: 2 });
        drop(outer_guard);
        observe(Event::PassStart { pass: 3 });
        assert_eq!(
            outer
                .events()
                .into_iter()
                .map(|(_, e)| e)
                .collect::<Vec<_>>(),
            vec![Event::PassStart { pass: 0 }, Event::PassStart { pass: 2 }],
            "the outer observer must miss the inner scope and everything after its guard"
        );
        assert!(!is_enabled());
    }

    #[test]
    fn noop_observer_records_nothing_observable() {
        let guard = install(Arc::new(NoopObserver));
        assert!(is_enabled());
        observe(Event::PassStart { pass: 0 });
        counter_add(CounterId::NodesScored, 1);
        hist_record(HistId::PassMoved, 1);
        drop(guard);
    }

    #[test]
    fn counters_and_histograms_flow_to_the_core() {
        let (core, guard) = recording(16);
        counter_add(CounterId::DegLe2FastPath, 3);
        counter_add(CounterId::DegLe2FastPath, 4);
        hist_record(HistId::ReplayQueueDepth, 9);
        drop(guard);
        assert_eq!(core.metrics().counter(CounterId::DegLe2FastPath), 7);
        let hist = core.metrics().hist(HistId::ReplayQueueDepth);
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 9);
    }
}
