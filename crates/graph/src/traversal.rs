//! Graph traversals: BFS, DFS, connected components.
//!
//! These are used for stream orderings, for sanity checks on generated
//! graphs (connectivity of meshes and roads-like instances), and by the
//! multilevel baseline.

use crate::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Breadth-first order of all nodes, starting new searches from the smallest
/// unvisited node id so that disconnected graphs are fully covered.
pub fn bfs_order(graph: &CsrGraph) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for start in graph.nodes() {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in graph.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order
}

/// Depth-first (pre-)order of all nodes, restarting from the smallest
/// unvisited node id for disconnected graphs. Iterative to avoid stack
/// overflows on path-like graphs.
pub fn dfs_order(graph: &CsrGraph) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for start in graph.nodes() {
        if visited[start as usize] {
            continue;
        }
        stack.push(start);
        while let Some(v) = stack.pop() {
            if visited[v as usize] {
                continue;
            }
            visited[v as usize] = true;
            order.push(v);
            // Push in reverse so that smaller neighbor ids are visited first.
            for &u in graph.neighbors(v).iter().rev() {
                if !visited[u as usize] {
                    stack.push(u);
                }
            }
        }
    }
    order
}

/// Labels each node with the id of its connected component (0-based,
/// numbered by discovery order) and returns `(labels, component_count)`.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in graph.nodes() {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// `true` if the graph has exactly one connected component (or no nodes).
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.num_nodes() == 0 || connected_components(graph).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> CsrGraph {
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .map(|i| (i, (i + 1) % n as NodeId))
            .collect();
        CsrGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_visits_every_node_once() {
        let g = cycle(10);
        let order = bfs_order(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dfs_visits_every_node_once() {
        let g = cycle(10);
        let order = dfs_order(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_starts_at_zero_and_expands_by_level() {
        // Star graph centered at 0.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let order = bfs_order(&g);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn cycle_is_connected() {
        assert!(is_connected(&cycle(17)));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&CsrGraph::empty(0)));
    }

    #[test]
    fn dfs_on_path_is_monotone() {
        let edges: Vec<(NodeId, NodeId)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(10, &edges).unwrap();
        assert_eq!(dfs_order(&g), (0..10).collect::<Vec<_>>());
    }
}
