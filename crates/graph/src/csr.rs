//! Compressed sparse row (CSR) representation of an undirected graph.
//!
//! Every undirected edge `{u, v}` is stored twice (once in the adjacency list
//! of `u`, once in that of `v`), exactly like in the METIS format the paper
//! streams its graphs from. The structure is immutable after construction;
//! all mutation happens through [`crate::GraphBuilder`].

use crate::{EdgeWeight, GraphError, NodeId, NodeWeight, Result};

/// An immutable, undirected, weighted graph in CSR form.
///
/// Invariants (checked by [`CsrGraph::validate`]):
///
/// * `xadj.len() == n + 1`, `xadj[0] == 0`, `xadj` is non-decreasing and
///   `xadj[n] == adjncy.len()`.
/// * `adjncy.len() == eweights.len()` and every entry is `< n`.
/// * no self loops, and the adjacency is symmetric with matching weights.
/// * `nweights.len() == n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    xadj: Vec<usize>,
    adjncy: Vec<NodeId>,
    eweights: Vec<EdgeWeight>,
    nweights: Vec<NodeWeight>,
    total_node_weight: NodeWeight,
    total_edge_weight: EdgeWeight,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// The arrays are taken as-is; callers that cannot guarantee the CSR
    /// invariants should go through [`crate::GraphBuilder`] instead. The
    /// invariants are checked and an error is returned if they do not hold.
    pub fn from_csr(
        xadj: Vec<usize>,
        adjncy: Vec<NodeId>,
        eweights: Vec<EdgeWeight>,
        nweights: Vec<NodeWeight>,
    ) -> Result<Self> {
        let total_node_weight = nweights.iter().sum();
        let total_edge_weight = eweights.iter().sum::<EdgeWeight>() / 2;
        let g = CsrGraph {
            xadj,
            adjncy,
            eweights,
            nweights,
            total_node_weight,
            total_edge_weight,
        };
        g.validate()?;
        Ok(g)
    }

    /// Builds a graph from CSR arrays without validating symmetry.
    ///
    /// Used internally by builders that construct the arrays in a way that is
    /// symmetric by construction; the cheap invariants are still checked.
    pub(crate) fn from_csr_unchecked(
        xadj: Vec<usize>,
        adjncy: Vec<NodeId>,
        eweights: Vec<EdgeWeight>,
        nweights: Vec<NodeWeight>,
    ) -> Self {
        debug_assert_eq!(xadj.len(), nweights.len() + 1);
        debug_assert_eq!(adjncy.len(), eweights.len());
        let total_node_weight = nweights.iter().sum();
        let total_edge_weight = eweights.iter().sum::<EdgeWeight>() / 2;
        CsrGraph {
            xadj,
            adjncy,
            eweights,
            nweights,
            total_node_weight,
            total_edge_weight,
        }
    }

    /// An empty graph with `n` isolated nodes of unit weight.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            xadj: vec![0; n + 1],
            adjncy: Vec::new(),
            eweights: Vec::new(),
            nweights: vec![1; n],
            total_node_weight: n as NodeWeight,
            total_edge_weight: 0,
        }
    }

    /// Convenience constructor from an undirected edge list with unit weights.
    ///
    /// Parallel edges and self loops are removed, matching the preprocessing
    /// applied to every benchmark graph in the paper.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut b = crate::GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nweights.len()
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Number of directed arcs stored (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adjncy.len()
    }

    /// Sum of all node weights `c(V)`.
    #[inline]
    pub fn total_node_weight(&self) -> NodeWeight {
        self.total_node_weight
    }

    /// Sum of all edge weights `ω(E)`.
    #[inline]
    pub fn total_edge_weight(&self) -> EdgeWeight {
        self.total_edge_weight
    }

    /// Weight of node `v`.
    #[inline]
    pub fn node_weight(&self, v: NodeId) -> NodeWeight {
        self.nweights[v as usize]
    }

    /// Degree of node `v` (number of incident edges).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Sum of the weights of edges incident to `v`.
    #[inline]
    pub fn weighted_degree(&self, v: NodeId) -> EdgeWeight {
        let v = v as usize;
        self.eweights[self.xadj[v]..self.xadj[v + 1]].iter().sum()
    }

    /// Maximum degree `Δ` of the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_nodes() as f64
        }
    }

    /// The `p`-quantile of the degree distribution (`p ∈ [0, 1]`): the
    /// smallest degree `d` such that at least `⌈p·n⌉` nodes have degree
    /// `≤ d`. Computed with one counting pass over a degree histogram, so
    /// it stays `O(n + Δ)` even on million-node graphs.
    ///
    /// `degree_percentile(0.99)` against [`CsrGraph::max_degree`] is the
    /// degree-skew signal: a tiny `p99/max` ratio means a few hub vertices
    /// dominate — the regime where vertex-cut (edge) partitioning beats
    /// edge-cut node partitioning.
    pub fn degree_percentile(&self, p: f64) -> usize {
        let n = self.num_nodes();
        if n == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let mut histogram = vec![0usize; self.max_degree() + 1];
        for v in self.nodes() {
            histogram[self.degree(v)] += 1;
        }
        let rank = ((p * n as f64).ceil() as usize).max(1);
        let mut seen = 0usize;
        for (degree, &count) in histogram.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return degree;
            }
        }
        self.max_degree()
    }

    /// Neighbors of `v` as a slice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Edge weights incident to `v`, aligned with [`CsrGraph::neighbors`].
    #[inline]
    pub fn incident_edge_weights(&self, v: NodeId) -> &[EdgeWeight] {
        let v = v as usize;
        &self.eweights[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Iterator over `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn neighbors_weighted(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeWeight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.incident_edge_weights(v).iter().copied())
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over every undirected edge `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeWeight)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors_weighted(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Returns the weight of edge `{u, v}` if it exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<EdgeWeight> {
        self.neighbors_weighted(u)
            .find(|&(x, _)| x == v)
            .map(|(_, w)| w)
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Raw CSR offsets (mostly useful for I/O and tests).
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw adjacency array (mostly useful for I/O and tests).
    #[inline]
    pub fn adjncy(&self) -> &[NodeId] {
        &self.adjncy
    }

    /// Raw node-weight array.
    #[inline]
    pub fn node_weights(&self) -> &[NodeWeight] {
        &self.nweights
    }

    /// Raw edge-weight array aligned with [`CsrGraph::adjncy`].
    #[inline]
    pub fn edge_weights(&self) -> &[EdgeWeight] {
        &self.eweights
    }

    /// `true` if every node and edge has weight one.
    pub fn is_unweighted(&self) -> bool {
        self.nweights.iter().all(|&w| w == 1) && self.eweights.iter().all(|&w| w == 1)
    }

    /// Checks all structural invariants of the CSR representation.
    pub fn validate(&self) -> Result<()> {
        let n = self.num_nodes();
        if self.xadj.len() != n + 1 {
            return Err(GraphError::Invalid(format!(
                "xadj has length {} but expected {}",
                self.xadj.len(),
                n + 1
            )));
        }
        if self.xadj[0] != 0 {
            return Err(GraphError::Invalid("xadj[0] must be 0".into()));
        }
        if self.xadj.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Invalid("xadj must be non-decreasing".into()));
        }
        if *self.xadj.last().unwrap() != self.adjncy.len() {
            return Err(GraphError::Invalid(
                "xadj[n] must equal the adjacency length".into(),
            ));
        }
        if self.adjncy.len() != self.eweights.len() {
            return Err(GraphError::Invalid(
                "edge weight array must align with adjacency array".into(),
            ));
        }
        for v in self.nodes() {
            for (u, w) in self.neighbors_weighted(v) {
                if u as usize >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: u as u64,
                        num_nodes: n as u64,
                    });
                }
                if u == v {
                    return Err(GraphError::Invalid(format!("self loop at node {v}")));
                }
                match self.edge_weight(u, v) {
                    Some(back) if back == w => {}
                    Some(back) => {
                        return Err(GraphError::Invalid(format!(
                            "asymmetric edge weight for {{{u},{v}}}: {w} vs {back}"
                        )))
                    }
                    None => {
                        return Err(GraphError::Invalid(format!(
                            "edge ({v},{u}) present but reverse arc missing"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Extracts the subgraph induced by `nodes`.
    ///
    /// Returns the induced [`CsrGraph`] together with the mapping from new
    /// node ids to the original ids (`mapping[new] == old`). Nodes listed
    /// more than once are collapsed to a single occurrence; the order of
    /// first occurrence defines the new ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
        let n = self.num_nodes();
        let mut new_id = vec![NodeId::MAX; n];
        let mut mapping = Vec::with_capacity(nodes.len());
        for &v in nodes {
            if new_id[v as usize] == NodeId::MAX {
                new_id[v as usize] = mapping.len() as NodeId;
                mapping.push(v);
            }
        }
        let mut xadj = Vec::with_capacity(mapping.len() + 1);
        xadj.push(0usize);
        let mut adjncy = Vec::new();
        let mut eweights = Vec::new();
        let mut nweights = Vec::with_capacity(mapping.len());
        for &old in &mapping {
            nweights.push(self.node_weight(old));
            for (u, w) in self.neighbors_weighted(old) {
                let nu = new_id[u as usize];
                if nu != NodeId::MAX {
                    adjncy.push(nu);
                    eweights.push(w);
                }
            }
            xadj.push(adjncy.len());
        }
        (
            CsrGraph::from_csr_unchecked(xadj, adjncy, eweights, nweights),
            mapping,
        )
    }

    /// Returns a copy of this graph with the node weights replaced.
    ///
    /// The adjacency arrays are copied as-is — an `O(n + m)` memcpy with
    /// **no** symmetry re-check (unlike [`CsrGraph::from_csr`], which walks
    /// every arc twice). Errors when the weight slice length differs from
    /// the node count or a weight is zero.
    pub fn with_node_weights(&self, nweights: Vec<NodeWeight>) -> Result<Self> {
        if nweights.len() != self.num_nodes() {
            return Err(GraphError::Invalid(format!(
                "node weight array has length {} but the graph has {} nodes",
                nweights.len(),
                self.num_nodes()
            )));
        }
        if let Some(v) = nweights.iter().position(|&w| w == 0) {
            return Err(GraphError::WeightOutOfRange {
                what: "node",
                node: v as u64,
                value: 0,
                max: NodeWeight::MAX,
            });
        }
        let total_node_weight = nweights.iter().sum();
        Ok(CsrGraph {
            xadj: self.xadj.clone(),
            adjncy: self.adjncy.clone(),
            eweights: self.eweights.clone(),
            nweights,
            total_node_weight,
            total_edge_weight: self.total_edge_weight,
        })
    }

    /// Returns a copy of this graph with every edge weight replaced by
    /// `f(u, v, w)`, where `u < v` are the edge's endpoints and `w` its
    /// current weight.
    ///
    /// `f` is evaluated exactly **once per undirected edge** and the value
    /// is written to both arc slots, so the result is symmetric even for
    /// stateful or randomized closures; `f` returning zero is an error.
    pub fn map_edge_weights(
        &self,
        mut f: impl FnMut(NodeId, NodeId, EdgeWeight) -> EdgeWeight,
    ) -> Result<Self> {
        let mut eweights = self.eweights.clone();
        let mut computed: std::collections::HashMap<(NodeId, NodeId), EdgeWeight> =
            std::collections::HashMap::with_capacity(self.num_edges());
        for v in self.nodes() {
            for (i, (u, w)) in self.neighbors_weighted(v).enumerate() {
                let key = if v < u { (v, u) } else { (u, v) };
                let nw = *computed.entry(key).or_insert_with(|| f(key.0, key.1, w));
                if nw == 0 {
                    return Err(GraphError::WeightOutOfRange {
                        what: "edge",
                        node: v as u64,
                        value: 0,
                        max: EdgeWeight::MAX,
                    });
                }
                eweights[self.xadj[v as usize] + i] = nw;
            }
        }
        let total_edge_weight = eweights.iter().sum::<EdgeWeight>() / 2;
        Ok(CsrGraph {
            xadj: self.xadj.clone(),
            adjncy: self.adjncy.clone(),
            eweights,
            nweights: self.nweights.clone(),
            total_node_weight: self.total_node_weight,
            total_edge_weight,
        })
    }

    /// Approximate number of bytes used by the CSR arrays.
    ///
    /// Used by the memory experiment (§4.1 of the paper) to contrast the
    /// in-memory baseline, which must hold the whole graph, with the
    /// streaming algorithms whose state is `O(n + k)`.
    pub fn memory_bytes(&self) -> usize {
        self.xadj.len() * std::mem::size_of::<usize>()
            + self.adjncy.len() * std::mem::size_of::<NodeId>()
            + self.eweights.len() * std::mem::size_of::<EdgeWeight>()
            + self.nweights.len() * std::mem::size_of::<NodeWeight>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CsrGraph {
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_node_weight(), 5);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn triangle_basic_properties() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.edge_weight(1, 2), Some(1));
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        g.validate().unwrap();
    }

    #[test]
    fn path_graph_degrees() {
        let g = path_graph(10);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
        assert_eq!(g.degree(9), 1);
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn from_edges_removes_duplicates_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let mut b = crate::GraphBuilder::new(3);
        assert!(b.add_edge(0, 7).is_err());
    }

    #[test]
    fn induced_subgraph_of_cycle() {
        // 0-1-2-3-4-0 cycle; take nodes {0,1,2}: expect path 0-1-2.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (s, mapping) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(mapping, vec![0, 1, 2]);
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(1, 2));
        assert!(!s.has_edge(0, 2));
        s.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_deduplicates_node_list() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (s, mapping) = g.induced_subgraph(&[2, 2, 3, 2]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(mapping, vec![2, 3]);
        assert!(s.has_edge(0, 1));
    }

    #[test]
    fn validate_detects_asymmetry() {
        // Construct a deliberately broken graph: arc 0->1 without 1->0.
        let g = CsrGraph {
            xadj: vec![0, 1, 1],
            adjncy: vec![1],
            eweights: vec![1],
            nweights: vec![1, 1],
            total_node_weight: 2,
            total_edge_weight: 0,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_detects_self_loop() {
        let g = CsrGraph {
            xadj: vec![0, 2, 2],
            adjncy: vec![0, 0],
            eweights: vec![1, 1],
            nweights: vec![1, 1],
            total_node_weight: 2,
            total_edge_weight: 1,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn memory_bytes_scales_with_size() {
        let small = path_graph(10);
        let large = path_graph(1000);
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn with_node_weights_replaces_weights_and_rejects_zero() {
        let g = path_graph(4);
        let w = g.with_node_weights(vec![2, 3, 4, 5]).unwrap();
        assert_eq!(w.total_node_weight(), 14);
        assert_eq!(w.adjncy(), g.adjncy());
        w.validate().unwrap();
        assert!(g.with_node_weights(vec![1, 1]).is_err(), "wrong length");
        assert!(
            g.with_node_weights(vec![1, 0, 1, 1]).is_err(),
            "zero weight"
        );
    }

    #[test]
    fn map_edge_weights_calls_f_once_per_edge_and_stays_symmetric() {
        // A stateful (counting) closure must still produce a symmetric
        // graph: f runs once per undirected edge, not once per arc.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let mut calls = 0u64;
        let w = g
            .map_edge_weights(|_, _, _| {
                calls += 1;
                calls
            })
            .unwrap();
        assert_eq!(calls, g.num_edges() as u64);
        w.validate().unwrap();
        for (u, v, ew) in w.edges() {
            assert_eq!(w.edge_weight(v, u), Some(ew));
        }
        assert!(g.map_edge_weights(|_, _, _| 0).is_err(), "zero weight");
    }

    #[test]
    fn weighted_degree_sums_incident_weights() {
        let mut b = crate::GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 5).unwrap();
        b.add_weighted_edge(0, 2, 7).unwrap();
        let g = b.build();
        assert_eq!(g.weighted_degree(0), 12);
        assert_eq!(g.weighted_degree(1), 5);
        assert_eq!(g.total_edge_weight(), 12);
    }

    #[test]
    fn degree_percentile_matches_a_sorted_scan() {
        // A star: 99 leaves of degree 1 and one hub of degree 99.
        let mut b = crate::GraphBuilder::new(100);
        for v in 1..100u32 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.degree_percentile(0.0), 1);
        assert_eq!(g.degree_percentile(0.5), 1);
        assert_eq!(g.degree_percentile(0.99), 1);
        assert_eq!(g.degree_percentile(1.0), 99);
        // Cross-check against the brute-force definition on a random graph.
        let r = crate::CsrGraph::from_edges(
            50,
            &[(0, 1), (1, 2), (2, 3), (0, 2), (4, 5), (5, 6), (0, 6)],
        )
        .unwrap();
        let mut degrees: Vec<usize> = r.nodes().map(|v| r.degree(v)).collect();
        degrees.sort_unstable();
        for p in [0.1f64, 0.5, 0.9, 0.99] {
            let rank = ((p * 50.0).ceil() as usize).max(1);
            assert_eq!(r.degree_percentile(p), degrees[rank - 1], "p = {p}");
        }
        assert_eq!(crate::CsrGraph::empty(0).degree_percentile(0.99), 0);
    }
}
