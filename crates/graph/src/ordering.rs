//! Stream orderings.
//!
//! One-pass streaming partitioners are sensitive to the order in which nodes
//! arrive. The paper streams every graph in its *natural* (given) order, but
//! related work (Awadelkarim & Ugander) studies random, BFS/DFS and
//! degree-based orders, so the framework exposes all of them.

use crate::{traversal, CsrGraph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The order in which a graph is streamed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NodeOrdering {
    /// Natural order `0, 1, …, n-1` — the order used in the paper's
    /// experiments.
    #[default]
    Natural,
    /// Uniformly random permutation with the given seed.
    Random(u64),
    /// Breadth-first search order (restarting at the smallest unvisited id).
    Bfs,
    /// Depth-first search order (restarting at the smallest unvisited id).
    Dfs,
    /// Nodes sorted by increasing degree (ties by id).
    DegreeAscending,
    /// Nodes sorted by decreasing degree (ties by id).
    DegreeDescending,
}

impl NodeOrdering {
    /// Computes the permutation of node ids realising this ordering for the
    /// given graph. The result has length `n` and contains every node id
    /// exactly once.
    pub fn permutation(&self, graph: &CsrGraph) -> Vec<NodeId> {
        let n = graph.num_nodes();
        match self {
            NodeOrdering::Natural => (0..n as NodeId).collect(),
            NodeOrdering::Random(seed) => {
                let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                perm.shuffle(&mut rng);
                perm
            }
            NodeOrdering::Bfs => traversal::bfs_order(graph),
            NodeOrdering::Dfs => traversal::dfs_order(graph),
            NodeOrdering::DegreeAscending => {
                let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
                perm.sort_by_key(|&v| (graph.degree(v), v));
                perm
            }
            NodeOrdering::DegreeDescending => {
                let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
                perm.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
                perm
            }
        }
    }

    /// Short human-readable name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            NodeOrdering::Natural => "natural",
            NodeOrdering::Random(_) => "random",
            NodeOrdering::Bfs => "bfs",
            NodeOrdering::Dfs => "dfs",
            NodeOrdering::DegreeAscending => "degree-asc",
            NodeOrdering::DegreeDescending => "degree-desc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> CsrGraph {
        // Star with an attached path so that degrees differ.
        CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)]).unwrap()
    }

    fn is_permutation(perm: &[NodeId], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &v in perm {
            if seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        perm.len() == n
    }

    #[test]
    fn all_orderings_produce_permutations() {
        let g = sample_graph();
        for ord in [
            NodeOrdering::Natural,
            NodeOrdering::Random(1),
            NodeOrdering::Bfs,
            NodeOrdering::Dfs,
            NodeOrdering::DegreeAscending,
            NodeOrdering::DegreeDescending,
        ] {
            assert!(
                is_permutation(&ord.permutation(&g), g.num_nodes()),
                "{ord:?}"
            );
        }
    }

    #[test]
    fn natural_is_identity() {
        let g = sample_graph();
        assert_eq!(
            NodeOrdering::Natural.permutation(&g),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = sample_graph();
        let a = NodeOrdering::Random(42).permutation(&g);
        let b = NodeOrdering::Random(42).permutation(&g);
        let c = NodeOrdering::Random(43).permutation(&g);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_descending_puts_hub_first() {
        let g = sample_graph();
        let perm = NodeOrdering::DegreeDescending.permutation(&g);
        assert_eq!(perm[0], 0); // the star center has the highest degree
    }

    #[test]
    fn degree_ascending_puts_leaf_first() {
        let g = sample_graph();
        let perm = NodeOrdering::DegreeAscending.permutation(&g);
        assert_eq!(g.degree(perm[0]), 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NodeOrdering::Natural.name(), "natural");
        assert_eq!(NodeOrdering::Random(7).name(), "random");
        assert_eq!(NodeOrdering::default(), NodeOrdering::Natural);
    }
}
