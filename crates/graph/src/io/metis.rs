//! The METIS / KaHIP graph text format.
//!
//! The header line is `n m [fmt]` where `fmt` is a three-digit flag string:
//! the last digit enables edge weights, the middle digit node weights (the
//! first digit, vertex sizes, is not supported). Node ids in the body are
//! 1-based. Comment lines start with `%`.
//!
//! Every malformed input is a typed [`GraphError::MetisParse`] carrying the
//! 1-based line number of the offending line (truncated files report line 0,
//! the virtual end of file), so corpus tooling can point at the byte that
//! broke. Zero node or edge weights are rejected — the METIS balance
//! constraint divides by block weights, and a weight-0 node would silently
//! corrupt every capacity computation downstream.

use crate::{CsrGraph, EdgeWeight, GraphBuilder, GraphError, NodeId, NodeWeight, Result};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads a graph in METIS format from a file.
pub fn read_metis<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = File::open(path)?;
    read_metis_from(BufReader::new(file))
}

/// Reads a graph in METIS format from a string.
pub fn read_metis_str(contents: &str) -> Result<CsrGraph> {
    read_metis_from(BufReader::new(contents.as_bytes()))
}

/// Builds the typed METIS error for 1-based line `line` (0 = end of file).
fn metis_err(line: u64, msg: impl Into<String>) -> GraphError {
    GraphError::MetisParse {
        line,
        msg: msg.into(),
    }
}

fn read_metis_from<R: BufRead>(reader: R) -> Result<CsrGraph> {
    let mut lines = reader.lines().enumerate();

    // Header: n m [fmt]
    let (header_line, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (i as u64 + 1, trimmed.to_string());
            }
            None => return Err(metis_err(0, "missing METIS header line")),
        }
    };
    let mut parts = header.split_whitespace();
    let n: usize = parse_field(header_line, parts.next(), "node count")?;
    let m: usize = parse_field(header_line, parts.next(), "edge count")?;
    let fmt = parts.next().unwrap_or("0");
    let (has_node_weights, has_edge_weights) = match fmt {
        "0" | "00" | "000" => (false, false),
        "1" | "01" | "001" => (false, true),
        "10" | "010" => (true, false),
        "11" | "011" => (true, true),
        other if other.len() == 3 && other.starts_with('1') => {
            return Err(metis_err(
                header_line,
                format!("METIS fmt '{other}' requests vertex sizes, which are not supported"),
            ))
        }
        other => {
            return Err(metis_err(
                header_line,
                format!("unsupported METIS fmt field '{other}' (expected 0, 1, 10 or 11)"),
            ))
        }
    };
    if let Some(extra) = parts.next() {
        return Err(metis_err(
            header_line,
            format!("unexpected extra header token '{extra}' (header is 'n m [fmt]')"),
        ));
    }

    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut node: usize = 0;
    for (i, line) in lines {
        let lineno = i as u64 + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('%') {
            continue;
        }
        if node >= n {
            if trimmed.is_empty() {
                continue;
            }
            return Err(metis_err(
                lineno,
                format!("more than {n} node lines in METIS file"),
            ));
        }
        let mut tokens = trimmed.split_whitespace();
        if has_node_weights {
            let w: NodeWeight = parse_field(lineno, tokens.next(), "node weight")?;
            if w == 0 {
                return Err(metis_err(
                    lineno,
                    format!("node {} has weight 0 (weights must be positive)", node + 1),
                ));
            }
            builder.set_node_weight(node as NodeId, w)?;
        }
        while let Some(tok) = tokens.next() {
            let neighbor: usize = tok
                .parse()
                .map_err(|_| metis_err(lineno, format!("invalid neighbor id '{tok}'")))?;
            if neighbor == 0 || neighbor > n {
                return Err(metis_err(
                    lineno,
                    format!("neighbor id {neighbor} out of range 1..={n}"),
                ));
            }
            let weight: EdgeWeight = if has_edge_weights {
                let w = parse_field(lineno, tokens.next(), "edge weight")?;
                if w == 0 {
                    return Err(metis_err(
                        lineno,
                        format!(
                            "edge {{{}, {neighbor}}} has weight 0 (weights must be positive)",
                            node + 1
                        ),
                    ));
                }
                w
            } else {
                1
            };
            // Each undirected edge appears in both endpoint lines; only add it
            // from the smaller endpoint to avoid doubling weights.
            let u = node as NodeId;
            let v = (neighbor - 1) as NodeId;
            if u <= v {
                builder.add_weighted_edge(u, v, weight)?;
            }
        }
        node += 1;
    }
    if node != n {
        return Err(metis_err(
            0,
            format!("expected {n} node lines, found {node}"),
        ));
    }
    let graph = builder.build();
    if graph.num_edges() != m {
        // Not fatal — many public METIS files have slightly inconsistent
        // headers after duplicate removal — but a mismatch by more than the
        // removed duplicates usually indicates a parsing problem, so surface
        // it as an error to keep the test corpus honest.
        return Err(metis_err(
            header_line,
            format!(
                "header declares {m} edges but {found} were read",
                found = graph.num_edges()
            ),
        ));
    }
    Ok(graph)
}

fn parse_field<T: std::str::FromStr>(line: u64, tok: Option<&str>, what: &str) -> Result<T> {
    let tok = tok.ok_or_else(|| metis_err(line, format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| metis_err(line, format!("invalid {what}: '{tok}'")))
}

/// Writes a graph in METIS format to a file.
pub fn write_metis<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_metis_to(graph, &mut writer)
}

/// Serialises a graph to a METIS-format string.
///
/// Errors only when the graph carries a zero weight (which the format
/// round-trip would reject on read anyway).
pub fn write_metis_string(graph: &CsrGraph) -> Result<String> {
    let mut buf = Vec::new();
    write_metis_to(graph, &mut buf)?;
    Ok(String::from_utf8(buf).expect("METIS output is ASCII"))
}

fn write_metis_to<W: Write>(graph: &CsrGraph, writer: &mut W) -> Result<()> {
    if let Some(v) = graph.node_weights().iter().position(|&w| w == 0) {
        return Err(GraphError::WeightOutOfRange {
            what: "node",
            node: v as u64,
            value: 0,
            max: NodeWeight::MAX,
        });
    }
    if graph.edge_weights().contains(&0) {
        let v = graph
            .nodes()
            .find(|&v| graph.incident_edge_weights(v).contains(&0))
            .unwrap_or(0);
        return Err(GraphError::WeightOutOfRange {
            what: "edge",
            node: v as u64,
            value: 0,
            max: EdgeWeight::MAX,
        });
    }
    let has_node_weights = graph.node_weights().iter().any(|&w| w != 1);
    let has_edge_weights = graph.edge_weights().iter().any(|&w| w != 1);
    let fmt = match (has_node_weights, has_edge_weights) {
        (false, false) => "0",
        (false, true) => "1",
        (true, false) => "10",
        (true, true) => "11",
    };
    if fmt == "0" {
        writeln!(writer, "{} {}", graph.num_nodes(), graph.num_edges())?;
    } else {
        writeln!(
            writer,
            "{} {} {}",
            graph.num_nodes(),
            graph.num_edges(),
            fmt
        )?;
    }
    let mut line = String::new();
    for v in graph.nodes() {
        line.clear();
        if has_node_weights {
            line.push_str(&graph.node_weight(v).to_string());
        }
        for (u, w) in graph.neighbors_weighted(v) {
            if !line.is_empty() {
                line.push(' ');
            }
            line.push_str(&(u + 1).to_string());
            if has_edge_weights {
                line.push(' ');
                line.push_str(&w.to_string());
            }
        }
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unweighted() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let s = write_metis_string(&g).unwrap();
        let back = read_metis_str(&s).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let mut b = GraphBuilder::new(3);
        b.set_node_weight(0, 4).unwrap();
        b.add_weighted_edge(0, 1, 2).unwrap();
        b.add_weighted_edge(1, 2, 9).unwrap();
        let g = b.build();
        let s = write_metis_string(&g).unwrap();
        let back = read_metis_str(&s).unwrap();
        assert_eq!(g, back);
    }

    /// Extracts the typed (line, message) pair or panics.
    fn expect_metis_err(r: Result<CsrGraph>) -> (u64, String) {
        match r.unwrap_err() {
            GraphError::MetisParse { line, msg } => (line, msg),
            other => panic!("expected MetisParse, got: {other}"),
        }
    }

    #[test]
    fn bad_fmt_codes_are_typed_errors() {
        for fmt in ["2", "abc", "12", "012", "0110"] {
            let (line, msg) = expect_metis_err(read_metis_str(&format!("2 1 {fmt}\n2\n1\n")));
            assert_eq!(line, 1, "fmt '{fmt}'");
            assert!(msg.contains("fmt"), "fmt '{fmt}': {msg}");
        }
        // The vertex-size digit gets its own diagnostic.
        let (line, msg) = expect_metis_err(read_metis_str("2 1 100\n2\n1\n"));
        assert_eq!(line, 1);
        assert!(msg.contains("vertex sizes"), "{msg}");
    }

    #[test]
    fn truncated_file_reports_missing_lines() {
        // Header says 4 nodes, body holds 2.
        let (line, msg) = expect_metis_err(read_metis_str("4 3\n2\n1 3\n"));
        assert_eq!(line, 0);
        assert!(msg.contains("expected 4 node lines"), "{msg}");
    }

    #[test]
    fn weight_count_mismatch_is_a_typed_error_with_line() {
        // fmt=1: every neighbor needs a weight; node 2's line has a dangling
        // neighbor without one.
        let (line, msg) = expect_metis_err(read_metis_str("3 2 1\n2 5\n1 5 3\n2 7\n"));
        assert_eq!(line, 3);
        assert!(msg.contains("edge weight"), "{msg}");
        // fmt=10: the first token is the node weight; a line with no token
        // at all is a missing node weight.
        let (line, msg) = expect_metis_err(read_metis_str("2 0 10\n\n4\n"));
        assert_eq!(line, 2);
        assert!(msg.contains("node weight"), "{msg}");
    }

    #[test]
    fn zero_weights_are_rejected() {
        let (line, msg) = expect_metis_err(read_metis_str("2 1 10\n0 2\n4 1\n"));
        assert_eq!(line, 2);
        assert!(msg.contains("weight 0"), "{msg}");
        let (line, msg) = expect_metis_err(read_metis_str("2 1 1\n2 0\n1 0\n"));
        assert_eq!(line, 2);
        assert!(msg.contains("weight 0"), "{msg}");
    }

    #[test]
    fn overflowing_weights_are_typed_errors() {
        // 2^64 does not fit a u64 weight.
        let text = "2 1 10\n18446744073709551616 2\n1 1\n";
        let (line, msg) = expect_metis_err(read_metis_str(text));
        assert_eq!(line, 2);
        assert!(msg.contains("invalid node weight"), "{msg}");
    }

    #[test]
    fn header_garbage_is_a_typed_error() {
        let (line, _) = expect_metis_err(read_metis_str("x y\n"));
        assert_eq!(line, 1);
        let (line, msg) = expect_metis_err(read_metis_str("2 1 0 9\n2\n1\n"));
        assert_eq!(line, 1);
        assert!(msg.contains("extra header token"), "{msg}");
    }

    #[test]
    fn error_lines_account_for_comments() {
        // Comment lines shift the body; the error must name the physical
        // line in the file, not the logical node index.
        let text = "% leading comment\n3 2\n2\n% body comment\n1 3\nbroken\n";
        let (line, msg) = expect_metis_err(read_metis_str(text));
        assert_eq!(line, 6);
        assert!(msg.contains("invalid neighbor id"), "{msg}");
    }

    #[test]
    fn zero_weight_graph_is_rejected_at_write_time() {
        let g = CsrGraph::from_csr(vec![0, 1, 2], vec![1, 0], vec![0, 0], vec![1, 1]).unwrap();
        match write_metis_string(&g).unwrap_err() {
            GraphError::WeightOutOfRange { what, value, .. } => {
                assert_eq!(what, "edge");
                assert_eq!(value, 0);
            }
            other => panic!("expected WeightOutOfRange, got: {other}"),
        }
    }

    #[test]
    fn parse_simple_file_with_comments() {
        let text = "% a triangle plus a pendant\n4 4\n2 3\n1 3 4\n1 2\n2\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 3));
    }

    #[test]
    fn parse_edge_weighted_file() {
        let text = "3 2 1\n2 5\n1 5 3 7\n2 7\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 2), Some(7));
    }

    #[test]
    fn parse_node_weighted_file() {
        let text = "2 1 10\n3 2\n8 1\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.node_weight(0), 3);
        assert_eq!(g.node_weight(1), 8);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn header_edge_count_mismatch_is_error() {
        let text = "3 5\n2\n1 3\n2\n";
        assert!(read_metis_str(text).is_err());
    }

    #[test]
    fn missing_header_is_error() {
        assert!(read_metis_str("% only a comment\n").is_err());
    }

    #[test]
    fn neighbor_out_of_range_is_error() {
        let text = "2 1\n5\n1\n";
        assert!(read_metis_str(text).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let dir = std::env::temp_dir().join("oms-graph-test-metis");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.graph");
        write_metis(&g, &path).unwrap();
        let back = read_metis(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }
}
