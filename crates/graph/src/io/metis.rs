//! The METIS / KaHIP graph text format.
//!
//! The header line is `n m [fmt]` where `fmt` is a three-digit flag string:
//! the last digit enables edge weights, the middle digit node weights (the
//! first digit, vertex sizes, is not supported). Node ids in the body are
//! 1-based. Comment lines start with `%`.

use crate::{CsrGraph, EdgeWeight, GraphBuilder, GraphError, NodeId, NodeWeight, Result};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads a graph in METIS format from a file.
pub fn read_metis<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = File::open(path)?;
    read_metis_from(BufReader::new(file))
}

/// Reads a graph in METIS format from a string.
pub fn read_metis_str(contents: &str) -> Result<CsrGraph> {
    read_metis_from(BufReader::new(contents.as_bytes()))
}

fn read_metis_from<R: BufRead>(reader: R) -> Result<CsrGraph> {
    let mut lines = reader.lines();

    // Header: n m [fmt]
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break trimmed.to_string();
            }
            None => return Err(GraphError::Parse("missing METIS header line".into())),
        }
    };
    let mut parts = header.split_whitespace();
    let n: usize = parse_field(parts.next(), "node count")?;
    let m: usize = parse_field(parts.next(), "edge count")?;
    let fmt = parts.next().unwrap_or("0");
    let (has_node_weights, has_edge_weights) = match fmt {
        "0" | "00" | "000" => (false, false),
        "1" | "01" | "001" => (false, true),
        "10" | "010" => (true, false),
        "11" | "011" => (true, true),
        other => {
            return Err(GraphError::Parse(format!(
                "unsupported METIS fmt field '{other}'"
            )))
        }
    };

    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut node: usize = 0;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('%') {
            continue;
        }
        if node >= n {
            if trimmed.is_empty() {
                continue;
            }
            return Err(GraphError::Parse(format!(
                "more than {n} node lines in METIS file"
            )));
        }
        let mut tokens = trimmed.split_whitespace();
        if has_node_weights {
            let w: NodeWeight = parse_field(tokens.next(), "node weight")?;
            builder.set_node_weight(node as NodeId, w)?;
        }
        while let Some(tok) = tokens.next() {
            let neighbor: usize = tok
                .parse()
                .map_err(|_| GraphError::Parse(format!("invalid neighbor id '{tok}'")))?;
            if neighbor == 0 || neighbor > n {
                return Err(GraphError::Parse(format!(
                    "neighbor id {neighbor} out of range 1..={n}"
                )));
            }
            let weight: EdgeWeight = if has_edge_weights {
                parse_field(tokens.next(), "edge weight")?
            } else {
                1
            };
            // Each undirected edge appears in both endpoint lines; only add it
            // from the smaller endpoint to avoid doubling weights.
            let u = node as NodeId;
            let v = (neighbor - 1) as NodeId;
            if u <= v {
                builder.add_weighted_edge(u, v, weight)?;
            }
        }
        node += 1;
    }
    if node != n {
        return Err(GraphError::Parse(format!(
            "expected {n} node lines, found {node}"
        )));
    }
    let graph = builder.build();
    if graph.num_edges() != m {
        // Not fatal — many public METIS files have slightly inconsistent
        // headers after duplicate removal — but a mismatch by more than the
        // removed duplicates usually indicates a parsing problem, so surface
        // it as an error to keep the test corpus honest.
        return Err(GraphError::Parse(format!(
            "header declares {m} edges but {found} were read",
            found = graph.num_edges()
        )));
    }
    Ok(graph)
}

fn parse_field<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T> {
    let tok = tok.ok_or_else(|| GraphError::Parse(format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| GraphError::Parse(format!("invalid {what}: '{tok}'")))
}

/// Writes a graph in METIS format to a file.
pub fn write_metis<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_metis_to(graph, &mut writer)
}

/// Serialises a graph to a METIS-format string.
pub fn write_metis_string(graph: &CsrGraph) -> String {
    let mut buf = Vec::new();
    write_metis_to(graph, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("METIS output is ASCII")
}

fn write_metis_to<W: Write>(graph: &CsrGraph, writer: &mut W) -> Result<()> {
    let has_node_weights = graph.node_weights().iter().any(|&w| w != 1);
    let has_edge_weights = graph.edge_weights().iter().any(|&w| w != 1);
    let fmt = match (has_node_weights, has_edge_weights) {
        (false, false) => "0",
        (false, true) => "1",
        (true, false) => "10",
        (true, true) => "11",
    };
    if fmt == "0" {
        writeln!(writer, "{} {}", graph.num_nodes(), graph.num_edges())?;
    } else {
        writeln!(
            writer,
            "{} {} {}",
            graph.num_nodes(),
            graph.num_edges(),
            fmt
        )?;
    }
    let mut line = String::new();
    for v in graph.nodes() {
        line.clear();
        if has_node_weights {
            line.push_str(&graph.node_weight(v).to_string());
        }
        for (u, w) in graph.neighbors_weighted(v) {
            if !line.is_empty() {
                line.push(' ');
            }
            line.push_str(&(u + 1).to_string());
            if has_edge_weights {
                line.push(' ');
                line.push_str(&w.to_string());
            }
        }
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unweighted() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let s = write_metis_string(&g);
        let back = read_metis_str(&s).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let mut b = GraphBuilder::new(3);
        b.set_node_weight(0, 4).unwrap();
        b.add_weighted_edge(0, 1, 2).unwrap();
        b.add_weighted_edge(1, 2, 9).unwrap();
        let g = b.build();
        let s = write_metis_string(&g);
        let back = read_metis_str(&s).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parse_simple_file_with_comments() {
        let text = "% a triangle plus a pendant\n4 4\n2 3\n1 3 4\n1 2\n2\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 3));
    }

    #[test]
    fn parse_edge_weighted_file() {
        let text = "3 2 1\n2 5\n1 5 3 7\n2 7\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 2), Some(7));
    }

    #[test]
    fn parse_node_weighted_file() {
        let text = "2 1 10\n3 2\n8 1\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.node_weight(0), 3);
        assert_eq!(g.node_weight(1), 8);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn header_edge_count_mismatch_is_error() {
        let text = "3 5\n2\n1 3\n2\n";
        assert!(read_metis_str(text).is_err());
    }

    #[test]
    fn missing_header_is_error() {
        assert!(read_metis_str("% only a comment\n").is_err());
    }

    #[test]
    fn neighbor_out_of_range_is_error() {
        let text = "2 1\n5\n1\n";
        assert!(read_metis_str(text).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let dir = std::env::temp_dir().join("oms-graph-test-metis");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.graph");
        write_metis(&g, &path).unwrap();
        let back = read_metis(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }
}
