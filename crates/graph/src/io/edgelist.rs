//! Plain edge-list I/O.
//!
//! Most SNAP graphs ship as whitespace-separated `u v` pairs with `#`
//! comments. Node ids are 0-based; the number of nodes is either given by the
//! caller or inferred as `max id + 1`. Directions, self loops and parallel
//! edges are removed, matching the paper's preprocessing.

use crate::{CsrGraph, GraphBuilder, GraphError, NodeId, Result};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads an edge list from `path`.
///
/// If `num_nodes` is `None` the node count is inferred from the largest id
/// seen. Lines starting with `#` or `%` are treated as comments.
pub fn read_edge_list<P: AsRef<Path>>(path: P, num_nodes: Option<usize>) -> Result<CsrGraph> {
    let file = File::open(path)?;
    read_edge_list_from(BufReader::new(file), num_nodes)
}

/// Reads an edge list from a string. See [`read_edge_list`].
pub fn read_edge_list_str(contents: &str, num_nodes: Option<usize>) -> Result<CsrGraph> {
    read_edge_list_from(BufReader::new(contents.as_bytes()), num_nodes)
}

fn read_edge_list_from<R: BufRead>(reader: R, num_nodes: Option<usize>) -> Result<CsrGraph> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u64 = 0;
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u64 = parse_id(parts.next(), trimmed)?;
        let v: u64 = parse_id(parts.next(), trimmed)?;
        max_id = max_id.max(u).max(v);
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(GraphError::Parse(format!(
                "node id too large for u32 on line '{trimmed}'"
            )));
        }
        edges.push((u as NodeId, v as NodeId));
    }
    let n = match num_nodes {
        Some(n) => n,
        None => {
            if edges.is_empty() {
                0
            } else {
                (max_id + 1) as usize
            }
        }
    };
    let mut builder = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v)?;
    }
    Ok(builder.build())
}

fn parse_id(tok: Option<&str>, line: &str) -> Result<u64> {
    let tok =
        tok.ok_or_else(|| GraphError::Parse(format!("expected two node ids on line '{line}'")))?;
    tok.parse()
        .map_err(|_| GraphError::Parse(format!("invalid node id '{tok}' on line '{line}'")))
}

/// Writes the graph as a `u v` edge list (each undirected edge once, `u < v`).
pub fn write_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writeln!(
        writer,
        "# nodes {} edges {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v, _) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let text = "# comment\n0 1\n1 2\n2 0\n";
        let g = read_edge_list_str(text, None).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn infers_node_count_from_max_id() {
        let g = read_edge_list_str("0 9\n", None).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn explicit_node_count_allows_isolated_nodes() {
        let g = read_edge_list_str("0 1\n", Some(5)).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn removes_directions_and_duplicates() {
        let g = read_edge_list_str("0 1\n1 0\n0 1\n1 1\n", None).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_line_is_error() {
        assert!(read_edge_list_str("0\n", None).is_err());
        assert!(read_edge_list_str("0 x\n", None).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list_str("", None).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dir = std::env::temp_dir().join("oms-graph-test-edgelist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path, Some(4)).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }
}
