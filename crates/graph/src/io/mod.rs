//! Graph input/output.
//!
//! Three formats are supported:
//!
//! * [`metis`] — the METIS/KaHIP text format used by the graph-partitioning
//!   community (and by the paper's framework).
//! * [`edgelist`] — plain whitespace-separated edge lists, the format most
//!   SNAP graphs ship in.
//! * [`stream_format`] — a compact binary *vertex-stream* format that can be
//!   written once and then streamed from disk with `O(Δ)` memory, mirroring
//!   the paper's conversion of all inputs to a vertex-stream format.

pub mod edgelist;
pub mod metis;
pub mod snapshot;
pub mod stream_format;

pub use edgelist::{read_edge_list, write_edge_list};
pub use metis::{read_metis, read_metis_str, write_metis, write_metis_string};
pub use snapshot::{
    clear_snapshot, read_snapshot, write_snapshot, DriftCounters, PartitionSnapshot, SnapshotPass,
};
pub use stream_format::{
    read_stream_file, stream_file_info, write_stream_file, write_stream_file_v1,
    write_stream_file_with, DiskStream, StreamFileInfo, StreamFormatVersion, StreamWriteOptions,
};
