//! Partition snapshots as a v2-compatible trailer of the vertex-stream file.
//!
//! A long-lived dynamic-partitioning service must survive restarts without
//! losing its state. This module persists the service state — block
//! assignments, the restream trajectory and the drift counters — *inside*
//! the stream-format file the service already owns, as a trailer section
//! appended after the node records. Every existing reader stops decoding
//! exactly at the node count announced by the header, so a file carrying a
//! trailer remains a perfectly valid v2 vertex-stream file.
//!
//! ## Trailer layout
//!
//! All integers are little-endian; the trailer sits between the last node
//! record and a fixed-size footer at end of file:
//!
//! ```text
//! trailer:
//!   magic        8 bytes  "OMSSNAP1"
//!   k            u32      number of blocks
//!   n            u64      number of assignment entries (≥ header n: node
//!                         inserts grow the dynamic id space past the base
//!                         graph, deletions never shrink it)
//!   assignments  n × u32  block per node (u32::MAX = unassigned)
//!   counters     5 × u64  deltas_applied, moved_weight, baseline_cut,
//!                         current_cut, restreams
//!   t            u32      number of trajectory entries
//!   trajectory   t × (pass u32, edge_cut u64, imbalance f64,
//!                      moved u64, seconds f64)
//! footer (last 16 bytes of the file):
//!   trailer_offset u64    absolute file offset of the trailer magic
//!   magic          8 bytes "OMSSNAP1"
//! ```
//!
//! The footer makes the trailer discoverable without decoding the node
//! records; rewriting a snapshot truncates the file at the previous trailer
//! offset and appends the new trailer, so the node body is never touched.
//!
//! Every entry point first runs [`DiskStream::revalidate`], so a stream file
//! truncated or swapped between a warm resume and the next ingest surfaces
//! as a typed [`GraphError`] instead of being silently misread.

use crate::io::stream_format::{read_u32, read_u64};
use crate::io::{DiskStream, StreamFormatVersion};
use crate::stream::NodeStream;
use crate::{GraphError, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};

/// Magic bytes of both the snapshot trailer and the footer.
const SNAP_MAGIC: &[u8; 8] = b"OMSSNAP1";
/// Size of the footer: trailer offset (u64) + magic (8 bytes).
const FOOTER_LEN: u64 = 16;
/// Fixed-size part of the trailer: magic + k + n + counters + t.
const TRAILER_FIXED: u64 = 8 + 4 + 8 + 5 * 8 + 4;
/// Bytes per trajectory entry.
const PASS_LEN: u64 = 4 + 8 + 8 + 8 + 8;

/// Cumulative drift bookkeeping of a dynamic partition, persisted with the
/// snapshot so a restarted service resumes with the same fallback behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriftCounters {
    /// Total number of deltas applied since the service started.
    pub deltas_applied: u64,
    /// Node weight moved by local repair since the last full restream.
    pub moved_weight: u64,
    /// Edge cut right after the last full pass (the drift baseline).
    pub baseline_cut: u64,
    /// Edge cut as currently maintained.
    pub current_cut: u64,
    /// Number of full restream fallbacks triggered so far.
    pub restreams: u64,
}

/// One recorded pass of a snapshot trajectory (mirror of the executor's
/// per-pass stats, kept here so the on-disk format has no dependency on the
/// partitioning crates).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SnapshotPass {
    /// Pass number within its restream run.
    pub pass: u32,
    /// Edge cut after the pass.
    pub edge_cut: u64,
    /// Imbalance after the pass.
    pub imbalance: f64,
    /// Number of nodes that changed blocks in the pass.
    pub moved: u64,
    /// Wall-clock seconds of the pass.
    pub seconds: f64,
}

/// The persisted state of a dynamic partition: assignments, restream
/// trajectory and drift counters. See the [module docs](self) for the
/// on-disk layout.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionSnapshot {
    /// Number of blocks.
    pub num_blocks: u32,
    /// Block per node; `u32::MAX` marks an unassigned (deleted) node.
    pub assignments: Vec<u32>,
    /// Drift bookkeeping at snapshot time.
    pub counters: DriftCounters,
    /// Concatenated trajectory of the initial run and every restream
    /// fallback so far.
    pub trajectory: Vec<SnapshotPass>,
}

fn snap_err(msg: impl Into<String>) -> GraphError {
    GraphError::Parse(format!("snapshot trailer: {}", msg.into()))
}

/// Locates the trailer via the footer. `Ok(None)` when the file carries no
/// snapshot; a footer with valid magic but an impossible offset is a typed
/// error (the file was cut or spliced).
fn trailer_offset(file: &mut File) -> Result<Option<u64>> {
    let len = file.seek(SeekFrom::End(0))?;
    if len < FOOTER_LEN {
        return Ok(None);
    }
    file.seek(SeekFrom::Start(len - FOOTER_LEN))?;
    let offset = read_u64(file)?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != SNAP_MAGIC {
        return Ok(None);
    }
    if offset + TRAILER_FIXED + FOOTER_LEN > len {
        return Err(snap_err(format!(
            "footer points at offset {offset} but the file holds only {len} bytes"
        )));
    }
    Ok(Some(offset))
}

/// Reads the snapshot trailer of `stream`'s file, if present.
///
/// Runs [`DiskStream::revalidate`] first, so a swapped or rewritten stream
/// file is a typed error rather than a stale snapshot. Returns `Ok(None)`
/// for a file without a trailer.
pub fn read_snapshot(stream: &DiskStream) -> Result<Option<PartitionSnapshot>> {
    stream.revalidate()?;
    let mut file = File::open(stream.path())?;
    let Some(offset) = trailer_offset(&mut file)? else {
        return Ok(None);
    };
    let body_len = file.seek(SeekFrom::End(0))? - FOOTER_LEN - offset;
    file.seek(SeekFrom::Start(offset))?;
    let mut r = BufReader::new(file).take(body_len);

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| snap_err("truncated before the trailer magic"))?;
    if &magic != SNAP_MAGIC {
        return Err(snap_err("footer offset does not point at a trailer"));
    }
    let num_blocks = read_u32(&mut r)?;
    if num_blocks == 0 {
        return Err(snap_err("snapshot announces zero blocks"));
    }
    let n = read_u64(&mut r)?;
    // Node inserts can have grown the id space beyond the base graph, but a
    // snapshot can never cover fewer nodes than the file it trails.
    if n < stream.num_nodes() as u64 {
        return Err(GraphError::CountMismatch {
            what: "snapshot assignments",
            expected: stream.num_nodes() as u64,
            found: n,
        });
    }
    let expected_len = |t: u64| TRAILER_FIXED + n * 4 + t * PASS_LEN;
    if body_len < expected_len(0) {
        return Err(GraphError::Truncated {
            expected_nodes: n,
            read_nodes: (body_len.saturating_sub(TRAILER_FIXED)) / 4,
        });
    }
    let mut assignments = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let block = read_u32(&mut r)?;
        if block != u32::MAX && block >= num_blocks {
            return Err(snap_err(format!(
                "assignment {block} out of range for {num_blocks} blocks"
            )));
        }
        assignments.push(block);
    }
    let counters = DriftCounters {
        deltas_applied: read_u64(&mut r)?,
        moved_weight: read_u64(&mut r)?,
        baseline_cut: read_u64(&mut r)?,
        current_cut: read_u64(&mut r)?,
        restreams: read_u64(&mut r)?,
    };
    let t = read_u32(&mut r)? as u64;
    if body_len != expected_len(t) {
        return Err(GraphError::CountMismatch {
            what: "snapshot trajectory entries",
            expected: t,
            found: (body_len.saturating_sub(expected_len(0))) / PASS_LEN,
        });
    }
    let mut trajectory = Vec::with_capacity(t as usize);
    for _ in 0..t {
        trajectory.push(SnapshotPass {
            pass: read_u32(&mut r)?,
            edge_cut: read_u64(&mut r)?,
            imbalance: f64::from_le_bytes(read_u64(&mut r)?.to_le_bytes()),
            moved: read_u64(&mut r)?,
            seconds: f64::from_le_bytes(read_u64(&mut r)?.to_le_bytes()),
        });
    }
    Ok(Some(PartitionSnapshot {
        num_blocks,
        assignments,
        counters,
        trajectory,
    }))
}

/// Writes (or replaces) the snapshot trailer of `stream`'s file.
///
/// Runs [`DiskStream::revalidate`] first; requires the v2 or v3 format (v1
/// files predate the total-weight header the dynamic layer depends on) and
/// at least one assignment per node announced by the header (the dynamic id
/// space can only grow past the base graph). The node body
/// is never modified: a previous trailer is truncated away and the new one
/// appended in its place.
pub fn write_snapshot(stream: &DiskStream, snapshot: &PartitionSnapshot) -> Result<()> {
    stream.revalidate()?;
    if stream.version() == StreamFormatVersion::V1 {
        return Err(snap_err(
            "snapshots require the v2 or v3 vertex-stream format (rewrite the file with \
             write_stream_file)",
        ));
    }
    if snapshot.num_blocks == 0 {
        return Err(snap_err("snapshot announces zero blocks"));
    }
    if snapshot.assignments.len() < stream.num_nodes() {
        return Err(GraphError::CountMismatch {
            what: "snapshot assignments",
            expected: stream.num_nodes() as u64,
            found: snapshot.assignments.len() as u64,
        });
    }
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(stream.path())?;
    let offset = match trailer_offset(&mut file)? {
        Some(previous) => {
            file.set_len(previous)?;
            previous
        }
        None => file.seek(SeekFrom::End(0))?,
    };
    file.seek(SeekFrom::Start(offset))?;
    let mut w = BufWriter::new(file);
    w.write_all(SNAP_MAGIC)?;
    w.write_all(&snapshot.num_blocks.to_le_bytes())?;
    w.write_all(&(snapshot.assignments.len() as u64).to_le_bytes())?;
    for &block in &snapshot.assignments {
        w.write_all(&block.to_le_bytes())?;
    }
    let c = &snapshot.counters;
    for value in [
        c.deltas_applied,
        c.moved_weight,
        c.baseline_cut,
        c.current_cut,
        c.restreams,
    ] {
        w.write_all(&value.to_le_bytes())?;
    }
    w.write_all(&(snapshot.trajectory.len() as u32).to_le_bytes())?;
    for pass in &snapshot.trajectory {
        w.write_all(&pass.pass.to_le_bytes())?;
        w.write_all(&pass.edge_cut.to_le_bytes())?;
        w.write_all(&pass.imbalance.to_le_bytes())?;
        w.write_all(&pass.moved.to_le_bytes())?;
        w.write_all(&pass.seconds.to_le_bytes())?;
    }
    w.write_all(&offset.to_le_bytes())?;
    w.write_all(SNAP_MAGIC)?;
    w.flush()?;
    Ok(())
}

/// Removes the snapshot trailer of `stream`'s file, if present; returns
/// whether one was removed. Runs [`DiskStream::revalidate`] first.
pub fn clear_snapshot(stream: &DiskStream) -> Result<bool> {
    stream.revalidate()?;
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(stream.path())?;
    match trailer_offset(&mut file)? {
        Some(offset) => {
            file.set_len(offset)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_stream_file, write_stream_file};
    use crate::CsrGraph;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oms-graph-test-snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn ring(n: u32) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n as usize, &edges).unwrap()
    }

    fn sample_snapshot(n: usize) -> PartitionSnapshot {
        PartitionSnapshot {
            num_blocks: 4,
            assignments: (0..n as u32).map(|i| i % 4).collect(),
            counters: DriftCounters {
                deltas_applied: 123,
                moved_weight: 45,
                baseline_cut: 10,
                current_cut: 12,
                restreams: 2,
            },
            trajectory: vec![
                SnapshotPass {
                    pass: 0,
                    edge_cut: 14,
                    imbalance: 0.02,
                    moved: 0,
                    seconds: 0.5,
                },
                SnapshotPass {
                    pass: 1,
                    edge_cut: 10,
                    imbalance: 0.01,
                    moved: 3,
                    seconds: 0.25,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_on_a_v3_file() {
        use crate::io::{StreamFormatVersion, StreamWriteOptions};
        use crate::stream::NodeStream;
        let path = temp_path("roundtrip-v3.oms");
        let graph = ring(16);
        crate::io::write_stream_file_with(
            &graph,
            &path,
            StreamWriteOptions {
                version: StreamFormatVersion::V3,
                ..StreamWriteOptions::default()
            },
        )
        .unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(read_snapshot(&stream).unwrap(), None);

        let snap = sample_snapshot(16);
        write_snapshot(&stream, &snap).unwrap();
        assert_eq!(read_snapshot(&stream).unwrap(), Some(snap.clone()));

        // The trailer sits past the sectioned body and is invisible to the
        // bulk reader; replacing it keeps the body byte-identical.
        let back = read_stream_file(&path).unwrap();
        assert_eq!(back, graph);
        let mut reopened = DiskStream::open(&path).unwrap();
        let mut nodes = 0usize;
        reopened.stream_nodes(|_| nodes += 1).unwrap();
        assert_eq!(nodes, 16);
        write_snapshot(&reopened, &sample_snapshot(16)).unwrap();
        assert_eq!(read_snapshot(&reopened).unwrap(), Some(snap));

        // A trailer on a *truncated* v3 body still surfaces the truncation.
        clear_snapshot(&reopened).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let mut broken = DiskStream::open(&path).unwrap();
        assert!(matches!(
            broken.stream_nodes(|_| {}).unwrap_err(),
            crate::GraphError::Truncated { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_round_trips_and_body_stays_readable() {
        let path = temp_path("roundtrip.oms");
        let graph = ring(16);
        write_stream_file(&graph, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(read_snapshot(&stream).unwrap(), None);

        let snap = sample_snapshot(16);
        write_snapshot(&stream, &snap).unwrap();
        assert_eq!(read_snapshot(&stream).unwrap(), Some(snap.clone()));

        // The trailer is invisible to every existing reader.
        let back = read_stream_file(&path).unwrap();
        assert_eq!(back.num_nodes(), 16);
        assert_eq!(back.num_edges(), 16);

        // Rewriting replaces the trailer instead of stacking a second one.
        let len_one = std::fs::metadata(&path).unwrap().len();
        let mut snap2 = snap;
        snap2.counters.deltas_applied = 999;
        snap2.trajectory.pop();
        write_snapshot(&stream, &snap2).unwrap();
        let len_two = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len_two, len_one - PASS_LEN);
        assert_eq!(read_snapshot(&stream).unwrap(), Some(snap2));

        assert!(clear_snapshot(&stream).unwrap());
        assert!(!clear_snapshot(&stream).unwrap());
        assert_eq!(read_snapshot(&stream).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn too_few_assignments_are_rejected() {
        let path = temp_path("wrongcount.oms");
        write_stream_file(&ring(8), &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        let snap = sample_snapshot(5);
        let err = write_snapshot(&stream, &snap).unwrap_err();
        assert!(matches!(err, GraphError::CountMismatch { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grown_id_space_round_trips() {
        // After node inserts the dynamic id space is larger than the base
        // graph on disk; the trailer stores one assignment per dynamic id.
        let path = temp_path("grown.oms");
        write_stream_file(&ring(8), &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        let snap = sample_snapshot(11);
        write_snapshot(&stream, &snap).unwrap();
        assert_eq!(read_snapshot(&stream).unwrap(), Some(snap));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn swapped_file_between_resume_and_ingest_is_a_typed_error() {
        let path = temp_path("swapped.oms");
        write_stream_file(&ring(12), &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        write_snapshot(&stream, &sample_snapshot(12)).unwrap();

        // Another process replaces the stream file with a different graph
        // while our handle still describes the old one: the re-validation
        // inherited from the restream engine catches it.
        write_stream_file(&ring(20), &path).unwrap();
        let err = read_snapshot(&stream).unwrap_err();
        assert!(matches!(err, GraphError::CountMismatch { .. }), "{err:?}");
        let err = write_snapshot(&stream, &sample_snapshot(12)).unwrap_err();
        assert!(matches!(err, GraphError::CountMismatch { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_trailer_is_a_typed_error() {
        let path = temp_path("corrupt.oms");
        write_stream_file(&ring(10), &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        write_snapshot(&stream, &sample_snapshot(10)).unwrap();

        // Flip the stored assignment count inside the trailer.
        let bytes = std::fs::read(&path).unwrap();
        let mut cut = bytes.clone();
        let len = cut.len();
        let offset = u64::from_le_bytes(cut[len - 16..len - 8].try_into().unwrap()) as usize;
        cut[offset + 12..offset + 20].copy_from_slice(&999u64.to_le_bytes());
        std::fs::write(&path, &cut).unwrap();
        let err = read_snapshot(&stream).unwrap_err();
        assert!(matches!(err, GraphError::Truncated { .. }), "{err:?}");

        // A footer whose offset points outside the file (trailer truncated
        // by a crashed writer, footer spliced from elsewhere).
        let mut forged = bytes[..bytes.len() - 16].to_vec();
        forged.truncate(offset + 4);
        forged.extend_from_slice(&(offset as u64).to_le_bytes());
        forged.extend_from_slice(SNAP_MAGIC);
        std::fs::write(&path, &forged).unwrap();
        let err = read_snapshot(&stream).unwrap_err();
        assert!(matches!(err, GraphError::Parse(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }
}
