//! Binary vertex-stream format.
//!
//! The paper converts every benchmark graph to a *vertex-stream* format so
//! that one-pass algorithms can consume it either from memory or directly
//! from disk with `O(Δ)` working memory. Three on-disk versions exist:
//!
//! ```text
//! v3 (current, magic "OMSSTRM3") — sectioned / fixed-stride:
//!   magic   : 8 bytes  "OMSSTRM3"
//!   n       : u64 LE   number of nodes
//!   m       : u64 LE   number of undirected edges
//!   c(V)    : u64 LE   total node weight (n when node weights are absent)
//!   flags   : u8       bit 0 = node weights present, bit 1 = edge weights present
//!   pad     : 7 bytes  zero (header is 40 bytes, 8-byte aligned)
//!   sections, each starting 8-byte aligned (zero padding between):
//!     degrees      : n  × u32 LE
//!     [node weights: n  × u64 LE]   (if flag bit 0)
//!     neighbors    : 2m × u32 LE
//!     [edge weights: 2m × u64 LE]   (if flag bit 1)
//!   zero padding to the next 8-byte boundary (trailer alignment)
//! ```
//!
//! v3 stores each field as its own fixed-stride section instead of
//! interleaving them per node, so a pass fills [`NodeBatch`]'s
//! structure-of-arrays columns by bulk byte reads — one `read_exact` per
//! column per batch — instead of decoding every field through its own small
//! read. The columns are exactly the sections; decode is a little-endian
//! widening copy with no per-node branching.
//!
//! ```text
//! v2 (magic "OMSSTRM2") — interleaved:
//!   magic   : 8 bytes  "OMSSTRM2"
//!   n       : u64 LE   number of nodes
//!   m       : u64 LE   number of undirected edges
//!   c(V)    : u64 LE   total node weight (n when node weights are absent)
//!   flags   : u8       bit 0 = node weights present, bit 1 = edge weights present
//!   per node (in id order):
//!     [node weight : u64 LE]            (if flag bit 0)
//!     degree       : u32 LE
//!     neighbors    : degree × u32 LE
//!     [edge weights: degree × u64 LE]   (if flag bit 1)
//!
//! v1 (legacy, magic "OMSSTRM1"):
//!   same layout but without the c(V) header field and with u32 weights.
//! ```
//!
//! Version 2 fixes two weighted-graph defects of v1: weights are stored as
//! `u64` (v1 silently truncated weights above `u32::MAX`; writing such a
//! weight is now a typed [`GraphError::WeightOutOfRange`] error in v1 and
//! lossless in v2), and the total node weight `c(V)` lives in the header, so
//! [`DiskStream::open`] no longer needs a full decode pass over a weighted
//! file just to learn the capacity input `c(V)`.
//!
//! v1 and v2 files remain fully readable (weights default to 1 when the
//! flags are clear, exactly as before); [`write_stream_file`] writes v2 —
//! the interchange default — and `oms convert --stream-version 3` (or
//! [`StreamWriteOptions`]) upgrades a file to v3. Zero weights
//! are invalid in both versions — reads and writes reject them with
//! [`GraphError::WeightOutOfRange`] instead of letting a weight-0 node
//! corrupt capacity math downstream.
//!
//! [`DiskStream`] implements [`NodeStream`] on top of the format, so every
//! streaming partitioner in `oms-core` can run straight off disk.

use crate::batch::NodeBatch;
use crate::stream::{NodeStream, StreamedNode, DEFAULT_BATCH_SIZE};
use crate::{CsrGraph, EdgeWeight, GraphError, NodeId, NodeWeight, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

const MAGIC_V1: &[u8; 8] = b"OMSSTRM1";
const MAGIC_V2: &[u8; 8] = b"OMSSTRM2";
const MAGIC_V3: &[u8; 8] = b"OMSSTRM3";
const FLAG_NODE_WEIGHTS: u8 = 0b01;
const FLAG_EDGE_WEIGHTS: u8 = 0b10;
/// Section alignment of the v3 layout.
const V3_ALIGN: u64 = 8;

/// On-disk version of the vertex-stream format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StreamFormatVersion {
    /// Legacy format: u32 weights, no total weight in the header.
    V1,
    /// Interleaved format: u64 weights, total node weight in the header.
    #[default]
    V2,
    /// Sectioned format: v2's header (8-byte aligned) followed by
    /// fixed-stride per-field sections decoded by bulk copy.
    V3,
}

impl StreamFormatVersion {
    fn magic(self) -> &'static [u8; 8] {
        match self {
            StreamFormatVersion::V1 => MAGIC_V1,
            StreamFormatVersion::V2 => MAGIC_V2,
            StreamFormatVersion::V3 => MAGIC_V3,
        }
    }

    fn header_len(self) -> usize {
        match self {
            StreamFormatVersion::V1 => 8 + 8 + 8 + 1,
            StreamFormatVersion::V2 => 8 + 8 + 8 + 8 + 1,
            // v2's fields plus zero padding to an 8-byte boundary.
            StreamFormatVersion::V3 => 8 + 8 + 8 + 8 + 1 + 7,
        }
    }

    /// Largest weight this version can represent.
    fn max_weight(self) -> u64 {
        match self {
            StreamFormatVersion::V1 => u32::MAX as u64,
            StreamFormatVersion::V2 | StreamFormatVersion::V3 => u64::MAX,
        }
    }

    /// Version selector as it appears on the `convert` command line.
    pub fn from_cli(s: &str) -> Option<Self> {
        match s {
            "1" => Some(StreamFormatVersion::V1),
            "2" => Some(StreamFormatVersion::V2),
            "3" => Some(StreamFormatVersion::V3),
            _ => None,
        }
    }

    /// The version number as a small integer (for display).
    pub fn number(self) -> u32 {
        match self {
            StreamFormatVersion::V1 => 1,
            StreamFormatVersion::V2 => 2,
            StreamFormatVersion::V3 => 3,
        }
    }
}

/// Byte layout of a v3 (sectioned) stream file, derived from the header
/// counts alone — every section offset is computable without touching the
/// body, which is what lets each column be read with one bulk cursor.
#[derive(Clone, Copy, Debug)]
struct V3Layout {
    degrees_off: u64,
    node_weights_off: u64,
    node_weights_len: u64,
    neighbors_off: u64,
    edge_weights_off: u64,
    edge_weights_len: u64,
    /// End of the padded body; a snapshot trailer starts here.
    body_len: u64,
    /// Total zero padding between/after sections (excluding the header pad).
    padding: u64,
}

fn align_up(x: u64, align: u64) -> u64 {
    x.div_ceil(align) * align
}

fn v3_layout(n: u64, m: u64, flags: u8) -> V3Layout {
    let mut padding = 0u64;
    let mut cursor = StreamFormatVersion::V3.header_len() as u64;
    let degrees_off = cursor;
    cursor += 4 * n;
    let aligned = align_up(cursor, V3_ALIGN);
    padding += aligned - cursor;
    cursor = aligned;
    let node_weights_off = cursor;
    let node_weights_len = if flags & FLAG_NODE_WEIGHTS != 0 {
        8 * n
    } else {
        0
    };
    cursor += node_weights_len;
    let neighbors_off = cursor;
    cursor += 4 * 2 * m;
    let aligned = align_up(cursor, V3_ALIGN);
    padding += aligned - cursor;
    cursor = aligned;
    let edge_weights_off = cursor;
    let edge_weights_len = if flags & FLAG_EDGE_WEIGHTS != 0 {
        8 * 2 * m
    } else {
        0
    };
    cursor += edge_weights_len;
    V3Layout {
        degrees_off,
        node_weights_off,
        node_weights_len,
        neighbors_off,
        edge_weights_off,
        edge_weights_len,
        body_len: cursor,
        padding,
    }
}

/// Options of [`write_stream_file_with`].
///
/// By default the writer picks v2 and emits weight sections only when some
/// weight differs from 1. The `force_*` flags emit the sections regardless —
/// the equivalence test-suite uses them to prove that a file with *explicit*
/// unit weights streams byte-identically to one with implicit unit weights.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamWriteOptions {
    /// On-disk version to write.
    pub version: StreamFormatVersion,
    /// Write the node-weight section even when all node weights are 1.
    pub force_node_weights: bool,
    /// Write the edge-weight section even when all edge weights are 1.
    pub force_edge_weights: bool,
}

/// Writes `graph` to `path` in the current (v2) vertex-stream format.
pub fn write_stream_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    write_stream_file_with(graph, path, StreamWriteOptions::default())
}

/// Writes `graph` to `path` in the legacy v1 vertex-stream format.
///
/// Returns [`GraphError::WeightOutOfRange`] when a weight exceeds `u32::MAX`
/// (v1 cannot represent it); v1 files written by this function are readable
/// by every past and present reader.
pub fn write_stream_file_v1<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    write_stream_file_with(
        graph,
        path,
        StreamWriteOptions {
            version: StreamFormatVersion::V1,
            ..StreamWriteOptions::default()
        },
    )
}

/// Writes `graph` to `path` in the vertex-stream format described by
/// `options`.
pub fn write_stream_file_with<P: AsRef<Path>>(
    graph: &CsrGraph,
    path: P,
    options: StreamWriteOptions,
) -> Result<()> {
    let version = options.version;
    let max = version.max_weight();
    // Validate weights up front so a bad graph never leaves a half-written
    // file with a valid header behind.
    for v in graph.nodes() {
        let w = graph.node_weight(v);
        if w == 0 || w > max {
            return Err(GraphError::WeightOutOfRange {
                what: "node",
                node: v as u64,
                value: w,
                max,
            });
        }
        for &ew in graph.incident_edge_weights(v) {
            if ew == 0 || ew > max {
                return Err(GraphError::WeightOutOfRange {
                    what: "edge",
                    node: v as u64,
                    value: ew,
                    max,
                });
            }
        }
    }

    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let has_nw = options.force_node_weights || graph.node_weights().iter().any(|&x| x != 1);
    let has_ew = options.force_edge_weights || graph.edge_weights().iter().any(|&x| x != 1);
    let mut flags = 0u8;
    if has_nw {
        flags |= FLAG_NODE_WEIGHTS;
    }
    if has_ew {
        flags |= FLAG_EDGE_WEIGHTS;
    }
    w.write_all(version.magic())?;
    w.write_all(&(graph.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    if version != StreamFormatVersion::V1 {
        w.write_all(&graph.total_node_weight().to_le_bytes())?;
    }
    w.write_all(&[flags])?;

    if version == StreamFormatVersion::V3 {
        return write_v3_body(graph, w, flags);
    }

    let write_weight = |w: &mut BufWriter<File>, value: u64| -> Result<()> {
        match version {
            StreamFormatVersion::V1 => w.write_all(&(value as u32).to_le_bytes())?,
            _ => w.write_all(&value.to_le_bytes())?,
        }
        Ok(())
    };
    for v in graph.nodes() {
        if has_nw {
            write_weight(&mut w, graph.node_weight(v))?;
        }
        let neighbors = graph.neighbors(v);
        w.write_all(&(neighbors.len() as u32).to_le_bytes())?;
        for &u in neighbors {
            w.write_all(&u.to_le_bytes())?;
        }
        if has_ew {
            for &ew in graph.incident_edge_weights(v) {
                write_weight(&mut w, ew)?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes the sectioned v3 body (the header, including its padding byte run
/// up to the flags byte, has already been written).
fn write_v3_body(graph: &CsrGraph, mut w: BufWriter<File>, flags: u8) -> Result<()> {
    const PAD: [u8; 8] = [0u8; 8];
    // Header padding: flags byte at offset 32, zero-fill up to 40.
    w.write_all(&PAD[..7])?;
    let layout = v3_layout(graph.num_nodes() as u64, graph.num_edges() as u64, flags);
    let mut written = layout.degrees_off;
    for v in graph.nodes() {
        w.write_all(&(graph.neighbors(v).len() as u32).to_le_bytes())?;
        written += 4;
    }
    let pad = align_up(written, V3_ALIGN) - written;
    w.write_all(&PAD[..pad as usize])?;
    written += pad;
    debug_assert_eq!(written, layout.node_weights_off);
    if flags & FLAG_NODE_WEIGHTS != 0 {
        for &nw in graph.node_weights() {
            w.write_all(&nw.to_le_bytes())?;
        }
        written += layout.node_weights_len;
    }
    debug_assert_eq!(written, layout.neighbors_off);
    for v in graph.nodes() {
        for &u in graph.neighbors(v) {
            w.write_all(&u.to_le_bytes())?;
        }
        written += 4 * graph.neighbors(v).len() as u64;
    }
    let pad = align_up(written, V3_ALIGN) - written;
    w.write_all(&PAD[..pad as usize])?;
    written += pad;
    debug_assert_eq!(written, layout.edge_weights_off);
    if flags & FLAG_EDGE_WEIGHTS != 0 {
        for v in graph.nodes() {
            for &ew in graph.incident_edge_weights(v) {
                w.write_all(&ew.to_le_bytes())?;
            }
        }
        written += layout.edge_weights_len;
    }
    debug_assert_eq!(written, layout.body_len);
    w.flush()?;
    Ok(())
}

/// Reads a whole vertex-stream file (either version) back into an in-memory
/// [`CsrGraph`].
pub fn read_stream_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let mut stream = DiskStream::open(path)?;
    let n = stream.num_nodes();
    let mut xadj = Vec::with_capacity(n + 1);
    xadj.push(0usize);
    let mut adjncy = Vec::new();
    let mut eweights = Vec::new();
    let mut nweights = Vec::with_capacity(n);
    stream.stream_nodes(|node| {
        nweights.push(node.weight);
        adjncy.extend_from_slice(node.neighbors);
        eweights.extend_from_slice(node.edge_weights);
        xadj.push(adjncy.len());
    })?;
    Ok(CsrGraph::from_csr_unchecked(
        xadj, adjncy, eweights, nweights,
    ))
}

/// Per-section byte accounting of a vertex-stream file, as reported by
/// `oms info`. For the interleaved v1/v2 layouts the "sections" are the
/// logical byte totals of each field class; for v3 they are the physical
/// sections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamFileInfo {
    /// On-disk format version.
    pub version: StreamFormatVersion,
    /// Whether a node-weight section/field is present.
    pub has_node_weights: bool,
    /// Whether an edge-weight section/field is present.
    pub has_edge_weights: bool,
    /// Nodes announced by the header.
    pub num_nodes: u64,
    /// Undirected edges announced by the header.
    pub num_edges: u64,
    /// Header bytes (including the v3 header padding).
    pub header_bytes: u64,
    /// Bytes spent on degree fields (v1/v2) or the degree section (v3).
    pub degree_bytes: u64,
    /// Bytes spent on node weights.
    pub node_weight_bytes: u64,
    /// Bytes spent on adjacency entries.
    pub neighbor_bytes: u64,
    /// Bytes spent on edge weights.
    pub edge_weight_bytes: u64,
    /// Zero padding between sections (v3 only).
    pub padding_bytes: u64,
    /// Header + body size implied by the header counts.
    pub body_bytes: u64,
    /// Bytes past the body — a snapshot trailer, if any.
    pub trailer_bytes: u64,
    /// Actual file size.
    pub file_bytes: u64,
}

/// The typed error for a file shorter than the body its header announces.
/// The info path never decodes the body, so the number of complete node
/// records is estimated from the byte position where the file ends —
/// always strictly below `n`, matching the invariant of the read path's
/// [`GraphError::Truncated`].
fn truncated_info_error(n: u64, header_bytes: u64, body_bytes: u64, file_bytes: u64) -> GraphError {
    let payload = body_bytes.saturating_sub(header_bytes).max(1);
    let available = file_bytes.saturating_sub(header_bytes);
    GraphError::Truncated {
        expected_nodes: n,
        read_nodes: n.saturating_mul(available) / payload,
    }
}

/// Reads a vertex-stream file's header and reports its per-section byte
/// layout without decoding the body.
///
/// A file *shorter* than the body implied by the header counts is reported
/// as the same typed [`GraphError::Truncated`] the read path raises —
/// never as a zero-byte trailer.
pub fn stream_file_info<P: AsRef<Path>>(path: P) -> Result<StreamFileInfo> {
    let file = File::open(path.as_ref())?;
    let file_bytes = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let header = read_header(&mut r)?;
    let (n, m) = (header.n as u64, header.m as u64);
    let has_nw = header.flags & FLAG_NODE_WEIGHTS != 0;
    let has_ew = header.flags & FLAG_EDGE_WEIGHTS != 0;
    let header_bytes = header.version.header_len() as u64;
    let info = match header.version {
        StreamFormatVersion::V1 | StreamFormatVersion::V2 => {
            let ww = if header.version == StreamFormatVersion::V1 {
                4
            } else {
                8
            };
            let node_weight_bytes = if has_nw { n * ww } else { 0 };
            let edge_weight_bytes = if has_ew { 2 * m * ww } else { 0 };
            let body_bytes =
                header_bytes + node_weight_bytes + 4 * n + 4 * 2 * m + edge_weight_bytes;
            if file_bytes < body_bytes {
                return Err(truncated_info_error(
                    n,
                    header_bytes,
                    body_bytes,
                    file_bytes,
                ));
            }
            StreamFileInfo {
                version: header.version,
                has_node_weights: has_nw,
                has_edge_weights: has_ew,
                num_nodes: n,
                num_edges: m,
                header_bytes,
                degree_bytes: 4 * n,
                node_weight_bytes,
                neighbor_bytes: 4 * 2 * m,
                edge_weight_bytes,
                padding_bytes: 0,
                body_bytes,
                trailer_bytes: file_bytes - body_bytes,
                file_bytes,
            }
        }
        StreamFormatVersion::V3 => {
            let layout = v3_layout(n, m, header.flags);
            if file_bytes < layout.body_len {
                return Err(truncated_info_error(
                    n,
                    header_bytes,
                    layout.body_len,
                    file_bytes,
                ));
            }
            StreamFileInfo {
                version: header.version,
                has_node_weights: has_nw,
                has_edge_weights: has_ew,
                num_nodes: n,
                num_edges: m,
                header_bytes,
                degree_bytes: 4 * n,
                node_weight_bytes: layout.node_weights_len,
                neighbor_bytes: 4 * 2 * m,
                edge_weight_bytes: layout.edge_weights_len,
                padding_bytes: layout.padding,
                body_bytes: layout.body_len,
                trailer_bytes: file_bytes - layout.body_len,
                file_bytes,
            }
        }
    };
    Ok(info)
}

/// A one-pass stream read from a vertex-stream file on disk.
///
/// Each pass re-opens the file, so restreaming algorithms can reuse the same
/// value. Ingest is **double-buffered** by default: a reader thread decodes
/// batch `B+1` from disk while the consumer processes batch `B`, overlapping
/// I/O + decode with scoring. [`DiskStream::double_buffered`] switches back
/// to fully synchronous ingest (used by benchmarks to measure the overlap).
///
/// Every pass validates the file body against the header: a file ending
/// before all `n` announced nodes is a [`GraphError::Truncated`] error, a
/// body whose adjacency lists do not sum to `2m` entries is a
/// [`GraphError::CountMismatch`], and (v2) a body whose node weights do not
/// sum to the header's `c(V)` is a [`GraphError::CountMismatch`] too — a
/// corrupt file never silently streams wrong data. Zero weights anywhere in
/// the body are a [`GraphError::WeightOutOfRange`] error.
#[derive(Debug)]
pub struct DiskStream {
    path: PathBuf,
    version: StreamFormatVersion,
    num_nodes: usize,
    num_edges: usize,
    total_node_weight: NodeWeight,
    flags: u8,
    double_buffered: bool,
    read_batch_size: usize,
}

/// The header of a vertex-stream file, as read from disk.
struct Header {
    version: StreamFormatVersion,
    n: usize,
    m: usize,
    /// Total node weight; `None` for v1 files with node weights (they carry
    /// no total in the header, it must be counted).
    total_node_weight: Option<NodeWeight>,
    flags: u8,
}

fn read_header<R: Read>(r: &mut R) -> Result<Header> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let version = if &magic == MAGIC_V3 {
        StreamFormatVersion::V3
    } else if &magic == MAGIC_V2 {
        StreamFormatVersion::V2
    } else if &magic == MAGIC_V1 {
        StreamFormatVersion::V1
    } else {
        return Err(GraphError::Parse("not an OMS vertex-stream file".into()));
    };
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    let header_total = if version == StreamFormatVersion::V1 {
        None
    } else {
        Some(read_u64(r)?)
    };
    let mut flags = [0u8; 1];
    r.read_exact(&mut flags)?;
    let flags = flags[0];
    if version == StreamFormatVersion::V3 {
        // The sections of a v3 file are 8-byte aligned; non-zero header
        // padding means the layout math would read misaligned garbage.
        let mut pad = [0u8; 7];
        r.read_exact(&mut pad)?;
        if pad != [0u8; 7] {
            return Err(GraphError::Parse(
                "v3 header padding is not zero (misaligned or corrupt file)".into(),
            ));
        }
    }
    let total_node_weight = match (version, flags & FLAG_NODE_WEIGHTS != 0) {
        // v2/v3 always state c(V); a header claiming unit weights must
        // state n.
        (StreamFormatVersion::V2 | StreamFormatVersion::V3, false) => {
            let total = header_total.expect("v2/v3 headers carry a total");
            if total != n as u64 {
                return Err(GraphError::CountMismatch {
                    what: "header total node weight (unit weights imply n)",
                    expected: n as u64,
                    found: total,
                });
            }
            Some(total)
        }
        (StreamFormatVersion::V2 | StreamFormatVersion::V3, true) => header_total,
        (StreamFormatVersion::V1, false) => Some(n as u64),
        // v1 with node weights: the total is not in the header.
        (StreamFormatVersion::V1, true) => None,
    };
    Ok(Header {
        version,
        n,
        m,
        total_node_weight,
        flags,
    })
}

impl DiskStream {
    /// Opens a vertex-stream file (any version) and reads its header.
    ///
    /// v2/v3 headers state the total node weight `c(V)` directly (streaming
    /// algorithms need it up front to compute `L_max`); for legacy v1 files
    /// with node weights it is computed with one lightweight pass over the
    /// file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let mut r = BufReader::new(file);
        let header = read_header(&mut r)?;

        let mut stream = DiskStream {
            path,
            version: header.version,
            num_nodes: header.n,
            num_edges: header.m,
            total_node_weight: header.total_node_weight.unwrap_or(header.n as u64),
            flags: header.flags,
            double_buffered: true,
            read_batch_size: DEFAULT_BATCH_SIZE,
        };
        if header.total_node_weight.is_none() {
            // The header pass is synchronous: no compute to overlap with;
            // the reader's own checked accumulator supplies the total.
            let mut reader = PassReader::open(&stream)?;
            let mut batch = NodeBatch::new();
            while reader.fill(&mut batch, stream.read_batch_size)? {}
            stream.total_node_weight = reader.weight_sum();
        }
        Ok(stream)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// On-disk format version of the underlying file.
    pub fn version(&self) -> StreamFormatVersion {
        self.version
    }

    /// Enables or disables double-buffered ingest (enabled by default).
    pub fn double_buffered(mut self, enabled: bool) -> Self {
        self.double_buffered = enabled;
        self
    }

    /// Whether ingest is double-buffered.
    pub fn is_double_buffered(&self) -> bool {
        self.double_buffered
    }

    /// Sets the number of nodes decoded per ingest batch (used when the
    /// consumer streams per node rather than per batch).
    pub fn read_batch_size(mut self, nodes: usize) -> Self {
        self.read_batch_size = nodes.max(1);
        self
    }

    /// Re-reads the file header and checks it against the counts this
    /// stream was opened with — the same check [`NodeStream::reset`] runs
    /// between restreaming passes, where a file swapped or rewritten
    /// *between* passes would otherwise silently change the data under a
    /// restreaming run.
    ///
    /// The [snapshot layer](crate::io::snapshot) calls this before touching
    /// the trailer section, so a stream file that was truncated or swapped
    /// between a warm resume and the next delta ingest surfaces as a typed
    /// [`GraphError`] instead of silently reading a different graph.
    pub fn revalidate(&self) -> Result<()> {
        self.revalidate_header()
    }

    fn revalidate_header(&self) -> Result<()> {
        let file = File::open(&self.path)?;
        let mut r = BufReader::new(file);
        let header = read_header(&mut r).map_err(|e| match e {
            GraphError::Parse(_) => GraphError::Parse(
                "not an OMS vertex-stream file (header changed between passes)".into(),
            ),
            other => other,
        })?;
        if header.version != self.version {
            return Err(GraphError::Parse(
                "vertex-stream format version changed between passes".into(),
            ));
        }
        if header.n != self.num_nodes {
            return Err(GraphError::CountMismatch {
                what: "header nodes after rewind",
                expected: self.num_nodes as u64,
                found: header.n as u64,
            });
        }
        if header.m != self.num_edges {
            return Err(GraphError::CountMismatch {
                what: "header edges after rewind",
                expected: self.num_edges as u64,
                found: header.m as u64,
            });
        }
        if let Some(total) = header.total_node_weight {
            if total != self.total_node_weight {
                return Err(GraphError::CountMismatch {
                    what: "header total node weight after rewind",
                    expected: self.total_node_weight,
                    found: total,
                });
            }
        }
        if header.flags != self.flags {
            return Err(GraphError::Parse(
                "vertex-stream flags changed between passes".into(),
            ));
        }
        Ok(())
    }
}

/// The decode state of one pass over a vertex-stream file.
///
/// Both ingest modes (synchronous and double-buffered) fill batches through
/// this reader, so header validation happens exactly once, here. The two
/// variants match the two body layouts: v1/v2 interleave fields per node and
/// are decoded field by field; v3 stores each field as its own section and
/// is decoded by bulk copy straight into the batch's SoA columns.
enum PassReader {
    Interleaved(InterleavedReader),
    Sectioned(SectionedReader),
}

impl PassReader {
    fn open(stream: &DiskStream) -> Result<Self> {
        if stream.version == StreamFormatVersion::V3 {
            Ok(PassReader::Sectioned(SectionedReader::open(stream)?))
        } else {
            Ok(PassReader::Interleaved(InterleavedReader::open(stream)?))
        }
    }

    /// Clears `batch` and refills it with up to `max_nodes` decoded nodes.
    /// Returns `true` while more nodes remain after this batch.
    fn fill(&mut self, batch: &mut NodeBatch, max_nodes: usize) -> Result<bool> {
        match self {
            PassReader::Interleaved(r) => r.fill(batch, max_nodes),
            PassReader::Sectioned(r) => r.fill(batch, max_nodes),
        }
    }

    /// Checked sum of the node weights decoded so far.
    fn weight_sum(&self) -> NodeWeight {
        match self {
            PassReader::Interleaved(r) => r.weight_sum,
            PassReader::Sectioned(r) => r.weight_sum,
        }
    }
}

/// Field-by-field decoder for the interleaved v1/v2 body layouts.
struct InterleavedReader {
    r: BufReader<File>,
    version: StreamFormatVersion,
    has_node_weights: bool,
    has_edge_weights: bool,
    expected_nodes: usize,
    expected_edge_entries: u64,
    /// `c(V)` announced by a v2 header; validated against the body sum.
    expected_total_weight: Option<NodeWeight>,
    next_node: usize,
    edge_entries: u64,
    weight_sum: NodeWeight,
    scratch_neighbors: Vec<NodeId>,
    scratch_eweights: Vec<EdgeWeight>,
}

impl InterleavedReader {
    fn open(stream: &DiskStream) -> Result<Self> {
        let file = File::open(&stream.path)?;
        // A deep read buffer keeps the kernel's readahead busy; the default
        // 8 KiB would issue one syscall per handful of adjacency lists.
        let mut r = BufReader::with_capacity(1 << 20, file);
        let mut skip = vec![0u8; stream.version.header_len()];
        r.read_exact(&mut skip)?;
        let has_node_weights = stream.flags & FLAG_NODE_WEIGHTS != 0;
        Ok(InterleavedReader {
            r,
            version: stream.version,
            has_node_weights,
            has_edge_weights: stream.flags & FLAG_EDGE_WEIGHTS != 0,
            expected_nodes: stream.num_nodes,
            // Each undirected edge appears in both endpoints' lists.
            expected_edge_entries: 2 * stream.num_edges as u64,
            expected_total_weight: (stream.version == StreamFormatVersion::V2 && has_node_weights)
                .then_some(stream.total_node_weight),
            next_node: 0,
            edge_entries: 0,
            weight_sum: 0,
            scratch_neighbors: Vec::new(),
            scratch_eweights: Vec::new(),
        })
    }

    /// Maps an early EOF to the typed truncation error.
    fn truncated(&self, e: GraphError) -> GraphError {
        match e {
            GraphError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
                GraphError::Truncated {
                    expected_nodes: self.expected_nodes as u64,
                    read_nodes: self.next_node as u64,
                }
            }
            other => other,
        }
    }

    /// Reads one weight in this file's width.
    fn read_weight(&mut self) -> Result<u64> {
        match self.version {
            StreamFormatVersion::V1 => read_u32(&mut self.r).map(|w| w as u64),
            // v3 bodies never reach the interleaved decoder.
            StreamFormatVersion::V2 | StreamFormatVersion::V3 => read_u64(&mut self.r),
        }
        .map_err(|e| self.truncated(e))
    }

    /// Clears `batch` and refills it with up to `max_nodes` decoded nodes.
    /// Returns `true` while more nodes remain after this batch.
    fn fill(&mut self, batch: &mut NodeBatch, max_nodes: usize) -> Result<bool> {
        batch.clear();
        let max_nodes = max_nodes.max(1);
        while batch.len() < max_nodes && self.next_node < self.expected_nodes {
            let weight: NodeWeight = if self.has_node_weights {
                let w = self.read_weight()?;
                if w == 0 {
                    return Err(GraphError::WeightOutOfRange {
                        what: "node",
                        node: self.next_node as u64,
                        value: 0,
                        max: self.version.max_weight(),
                    });
                }
                w
            } else {
                1
            };
            let degree = read_u32(&mut self.r).map_err(|e| self.truncated(e))? as usize;
            self.scratch_neighbors.clear();
            self.scratch_neighbors.reserve(degree);
            for _ in 0..degree {
                let u = read_u32(&mut self.r).map_err(|e| self.truncated(e))?;
                self.scratch_neighbors.push(u);
            }
            if self.has_edge_weights {
                self.scratch_eweights.clear();
                self.scratch_eweights.reserve(degree);
                for _ in 0..degree {
                    let w = self.read_weight()?;
                    if w == 0 {
                        return Err(GraphError::WeightOutOfRange {
                            what: "edge",
                            node: self.next_node as u64,
                            value: 0,
                            max: self.version.max_weight(),
                        });
                    }
                    self.scratch_eweights.push(w as EdgeWeight);
                }
                batch.push_parts(
                    self.next_node as NodeId,
                    weight,
                    &self.scratch_neighbors,
                    &self.scratch_eweights,
                );
            } else {
                batch.push_unit_weight_edges(
                    self.next_node as NodeId,
                    weight,
                    &self.scratch_neighbors,
                );
            }
            self.edge_entries = self.edge_entries.saturating_add(degree as u64);
            // An adversarial file can hold weights that individually fit u64
            // but overflow the running total; that must be a typed error,
            // not a debug-build panic / release-build wraparound that could
            // collide with a crafted header total.
            self.weight_sum = self.weight_sum.checked_add(weight).ok_or_else(|| {
                GraphError::Parse(format!(
                    "total node weight overflows u64 at node {}",
                    self.next_node
                ))
            })?;
            self.next_node += 1;
        }
        let more = self.next_node < self.expected_nodes;
        if !more {
            if self.edge_entries != self.expected_edge_entries {
                return Err(GraphError::CountMismatch {
                    what: "edge entries",
                    expected: self.expected_edge_entries,
                    found: self.edge_entries,
                });
            }
            if let Some(expected) = self.expected_total_weight {
                if self.weight_sum != expected {
                    return Err(GraphError::CountMismatch {
                        what: "total node weight",
                        expected,
                        found: self.weight_sum,
                    });
                }
            }
        }
        Ok(more)
    }
}

/// Bulk decoder for the sectioned v3 layout: one independent sequential
/// cursor per section, one `read_exact` per batch per column. Decode is a
/// little-endian widening copy into the batch's SoA columns — no per-node
/// field dispatch, no per-value reads.
struct SectionedReader {
    degrees: BufReader<File>,
    node_weights: Option<BufReader<File>>,
    neighbors: BufReader<File>,
    edge_weights: Option<BufReader<File>>,
    expected_nodes: usize,
    expected_edge_entries: u64,
    /// `c(V)` announced by the header; validated against the body sum.
    expected_total_weight: NodeWeight,
    next_node: usize,
    edge_entries: u64,
    weight_sum: NodeWeight,
    scratch_bytes: Vec<u8>,
    scratch_degrees: Vec<u32>,
}

/// Appends the little-endian `u32`s in `bytes` to `dst` (bulk decode; the
/// compiler vectorises this into a straight widening copy).
fn decode_u32s(bytes: &[u8], dst: &mut Vec<u32>) {
    debug_assert_eq!(bytes.len() % 4, 0);
    dst.reserve(bytes.len() / 4);
    for c in bytes.chunks_exact(4) {
        dst.push(u32::from_le_bytes(c.try_into().unwrap()));
    }
}

/// Appends the little-endian `u64`s in `bytes` to `dst`.
fn decode_u64s(bytes: &[u8], dst: &mut Vec<u64>) {
    debug_assert_eq!(bytes.len() % 8, 0);
    dst.reserve(bytes.len() / 8);
    for c in bytes.chunks_exact(8) {
        dst.push(u64::from_le_bytes(c.try_into().unwrap()));
    }
}

impl SectionedReader {
    fn open(stream: &DiskStream) -> Result<Self> {
        let layout = v3_layout(
            stream.num_nodes as u64,
            stream.num_edges as u64,
            stream.flags,
        );
        let cursor = |off: u64, cap: usize| -> Result<BufReader<File>> {
            let mut f = File::open(&stream.path)?;
            f.seek(SeekFrom::Start(off))?;
            Ok(BufReader::with_capacity(cap, f))
        };
        let has_nw = stream.flags & FLAG_NODE_WEIGHTS != 0;
        let has_ew = stream.flags & FLAG_EDGE_WEIGHTS != 0;
        Ok(SectionedReader {
            degrees: cursor(layout.degrees_off, 1 << 16)?,
            node_weights: if has_nw {
                Some(cursor(layout.node_weights_off, 1 << 17)?)
            } else {
                None
            },
            neighbors: cursor(layout.neighbors_off, 1 << 20)?,
            edge_weights: if has_ew {
                Some(cursor(layout.edge_weights_off, 1 << 20)?)
            } else {
                None
            },
            expected_nodes: stream.num_nodes,
            expected_edge_entries: 2 * stream.num_edges as u64,
            expected_total_weight: stream.total_node_weight,
            next_node: 0,
            edge_entries: 0,
            weight_sum: 0,
            scratch_bytes: Vec::new(),
            scratch_degrees: Vec::new(),
        })
    }

    /// Maps an early EOF to the typed truncation error.
    fn truncated(&self, e: std::io::Error) -> GraphError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            GraphError::Truncated {
                expected_nodes: self.expected_nodes as u64,
                read_nodes: self.next_node as u64,
            }
        } else {
            GraphError::Io(e)
        }
    }

    fn fill(&mut self, batch: &mut NodeBatch, max_nodes: usize) -> Result<bool> {
        batch.clear();
        let max_nodes = max_nodes.max(1);
        let count = max_nodes.min(self.expected_nodes - self.next_node);
        if count > 0 {
            // Degrees column → ids + CSR offsets.
            self.scratch_bytes.resize(4 * count, 0);
            self.degrees
                .read_exact(&mut self.scratch_bytes)
                .map_err(|e| self.truncated(e))?;
            self.scratch_degrees.clear();
            decode_u32s(&self.scratch_bytes, &mut self.scratch_degrees);
            let batch_entries: u64 = self.scratch_degrees.iter().map(|&d| d as u64).sum();
            let total_entries = self.edge_entries.saturating_add(batch_entries);
            if total_entries > self.expected_edge_entries {
                // In a sectioned file an oversized degree would walk the
                // neighbor cursor into padding or a later section; stop on
                // the degrees column instead of decoding garbage.
                return Err(GraphError::CountMismatch {
                    what: "edge entries",
                    expected: self.expected_edge_entries,
                    found: total_entries,
                });
            }
            batch.extend_ids_sequential(self.next_node as NodeId, count);
            batch.extend_offsets_from_degrees(&self.scratch_degrees);

            // Node-weight column.
            if let Some(reader) = self.node_weights.as_mut() {
                self.scratch_bytes.resize(8 * count, 0);
                let read = reader.read_exact(&mut self.scratch_bytes);
                read.map_err(|e| self.truncated(e))?;
                decode_u64s(&self.scratch_bytes, batch.weights_vec_mut());
                let weights = &batch.weights_vec_mut()[..];
                let mut sum = self.weight_sum;
                for (i, &w) in weights.iter().enumerate() {
                    if w == 0 {
                        return Err(GraphError::WeightOutOfRange {
                            what: "node",
                            node: (self.next_node + i) as u64,
                            value: 0,
                            max: StreamFormatVersion::V3.max_weight(),
                        });
                    }
                    sum = sum.checked_add(w).ok_or_else(|| {
                        GraphError::Parse(format!(
                            "total node weight overflows u64 at node {}",
                            self.next_node + i
                        ))
                    })?;
                }
                self.weight_sum = sum;
            } else {
                batch.extend_unit_weights(count);
                self.weight_sum += count as u64;
            }

            // Neighbor column.
            self.scratch_bytes.resize(4 * batch_entries as usize, 0);
            self.neighbors
                .read_exact(&mut self.scratch_bytes)
                .map_err(|e| self.truncated(e))?;
            decode_u32s(&self.scratch_bytes, batch.neighbors_vec_mut());

            // Edge-weight column.
            if let Some(reader) = self.edge_weights.as_mut() {
                self.scratch_bytes.resize(8 * batch_entries as usize, 0);
                let read = reader.read_exact(&mut self.scratch_bytes);
                read.map_err(|e| self.truncated(e))?;
                decode_u64s(&self.scratch_bytes, batch.edge_weights_vec_mut());
                let ews = &batch.edge_weights_vec_mut()[..];
                if let Some(j) = ews.iter().position(|&w| w == 0) {
                    // Walk the degree prefix sums only on the error path to
                    // name the owning node in the typed error.
                    let mut node = self.next_node;
                    let mut end = 0usize;
                    for &d in &self.scratch_degrees {
                        end += d as usize;
                        if j < end {
                            break;
                        }
                        node += 1;
                    }
                    return Err(GraphError::WeightOutOfRange {
                        what: "edge",
                        node: node as u64,
                        value: 0,
                        max: StreamFormatVersion::V3.max_weight(),
                    });
                }
            } else {
                batch.unit_fill_edge_weights();
            }
            batch.debug_validate();
            self.edge_entries = total_entries;
            self.next_node += count;
        }
        let more = self.next_node < self.expected_nodes;
        if !more {
            if self.edge_entries != self.expected_edge_entries {
                return Err(GraphError::CountMismatch {
                    what: "edge entries",
                    expected: self.expected_edge_entries,
                    found: self.edge_entries,
                });
            }
            if self.node_weights.is_some() && self.weight_sum != self.expected_total_weight {
                return Err(GraphError::CountMismatch {
                    what: "total node weight",
                    expected: self.expected_total_weight,
                    found: self.weight_sum,
                });
            }
        }
        Ok(more)
    }
}

impl NodeStream for DiskStream {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.total_node_weight
    }

    fn reset(&mut self) -> Result<()> {
        self.revalidate_header()
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        let read_batch = self.read_batch_size;
        self.for_each_batch(read_batch, &mut |batch| {
            for node in batch.iter() {
                f(node);
            }
        })
    }

    fn for_each_batch(&mut self, batch_size: usize, f: &mut dyn FnMut(&NodeBatch)) -> Result<()> {
        let batch_size = batch_size.max(1);
        let mut reader = PassReader::open(self)?;

        if !self.double_buffered {
            let mut batch = NodeBatch::new();
            loop {
                let more = reader.fill(&mut batch, batch_size)?;
                if !batch.is_empty() {
                    f(&batch);
                }
                if !more {
                    return Ok(());
                }
            }
        }

        // Double-buffered ingest: a scoped reader thread decodes the next
        // batch while the caller consumes the current one. Two buffers
        // rotate through a pair of channels, so the steady state allocates
        // nothing.
        std::thread::scope(|scope| {
            let (full_tx, full_rx) = mpsc::sync_channel::<Result<NodeBatch>>(1);
            let (free_tx, free_rx) = mpsc::channel::<NodeBatch>();
            for _ in 0..2 {
                free_tx.send(NodeBatch::new()).expect("receiver alive");
            }
            scope.spawn(move || {
                while let Ok(mut batch) = free_rx.recv() {
                    match reader.fill(&mut batch, batch_size) {
                        Ok(more) => {
                            if !batch.is_empty() && full_tx.send(Ok(batch)).is_err() {
                                return; // consumer bailed out
                            }
                            if !more {
                                return; // dropping full_tx ends the pass
                            }
                        }
                        Err(e) => {
                            full_tx.send(Err(e)).ok();
                            return;
                        }
                    }
                }
            });
            while let Ok(item) = full_rx.recv() {
                let batch = item?;
                f(&batch);
                // The reader may already have finished; a dead receiver just
                // drops the buffer.
                free_tx.send(batch).ok();
            }
            Ok(())
        })
    }
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oms-graph-test-stream");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn weighted_sample() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.set_node_weight(0, 3).unwrap();
        b.set_node_weight(3, 7).unwrap();
        b.add_weighted_edge(0, 1, 2).unwrap();
        b.add_weighted_edge(1, 2, 5).unwrap();
        b.add_weighted_edge(2, 3, 1).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let path = temp_path("unweighted.oms");
        write_stream_file(&g, &path).unwrap();
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_weighted() {
        let g = weighted_sample();
        let path = temp_path("weighted.oms");
        write_stream_file(&g, &path).unwrap();
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_weighted_v1() {
        let g = weighted_sample();
        let path = temp_path("weighted-v1.oms");
        write_stream_file_v1(&g, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.version(), StreamFormatVersion::V1);
        assert_eq!(stream.total_node_weight(), g.total_node_weight());
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_read_with_implicit_unit_weights() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let path = temp_path("v1-implicit.oms");
        write_stream_file_v1(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.version(), StreamFormatVersion::V1);
        assert_eq!(stream.total_node_weight(), 5);
        stream
            .stream_nodes(|node| {
                assert_eq!(node.weight, 1);
                assert!(node.edge_weights.iter().all(|&w| w == 1));
            })
            .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forced_weight_sections_stream_identically() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let plain = temp_path("forced-plain.oms");
        let forced = temp_path("forced-explicit.oms");
        write_stream_file(&g, &plain).unwrap();
        write_stream_file_with(
            &g,
            &forced,
            StreamWriteOptions {
                force_node_weights: true,
                force_edge_weights: true,
                ..StreamWriteOptions::default()
            },
        )
        .unwrap();
        let collect = |path: &Path| {
            let mut seen: Vec<(NodeId, NodeWeight, Vec<NodeId>, Vec<EdgeWeight>)> = Vec::new();
            DiskStream::open(path)
                .unwrap()
                .stream_nodes(|n| {
                    seen.push((
                        n.node,
                        n.weight,
                        n.neighbors.to_vec(),
                        n.edge_weights.to_vec(),
                    ));
                })
                .unwrap();
            seen
        };
        assert_eq!(collect(&plain), collect(&forced));
        std::fs::remove_file(&plain).ok();
        std::fs::remove_file(&forced).ok();
    }

    #[test]
    fn v2_header_carries_total_weight_without_a_counting_pass() {
        let g = weighted_sample();
        let path = temp_path("header-total.oms");
        write_stream_file(&g, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.version(), StreamFormatVersion::V2);
        assert_eq!(stream.total_node_weight(), 3 + 1 + 1 + 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_total_weight_mismatch_is_a_typed_error() {
        let g = weighted_sample();
        let path = temp_path("total-mismatch.oms");
        write_stream_file(&g, &path).unwrap();
        // Corrupt the header total (bytes 24..32 in v2).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24..32].copy_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.total_node_weight(), 99);
        match stream.stream_nodes(|_| {}).unwrap_err() {
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => {
                assert_eq!(what, "total node weight");
                assert_eq!(expected, 99);
                assert_eq!(found, 12);
            }
            other => panic!("expected CountMismatch, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_unit_weight_header_total_must_equal_n() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("unit-total.oms");
        write_stream_file(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24..32].copy_from_slice(&17u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match DiskStream::open(&path).unwrap_err() {
            GraphError::CountMismatch {
                expected, found, ..
            } => {
                assert_eq!(expected, 4);
                assert_eq!(found, 17);
            }
            other => panic!("expected CountMismatch, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_node_weight_in_body_is_a_typed_error() {
        let g = weighted_sample();
        let path = temp_path("zero-weight.oms");
        write_stream_file(&g, &path).unwrap();
        // First body byte after the 33-byte v2 header is node 0's weight.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[33..41].copy_from_slice(&0u64.to_le_bytes());
        // Keep the header total consistent with the tampered body so the
        // zero-weight check is what fires.
        bytes[24..32].copy_from_slice(&(12u64 - 3).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        match stream.stream_nodes(|_| {}).unwrap_err() {
            GraphError::WeightOutOfRange {
                what, node, value, ..
            } => {
                assert_eq!(what, "node");
                assert_eq!(node, 0);
                assert_eq!(value, 0);
            }
            other => panic!("expected WeightOutOfRange, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflowing_weight_total_is_a_typed_error_not_a_panic() {
        // Two node weights of 2^63 each fit u64 individually but overflow
        // the running total; the reader must return a typed error.
        let mut b = GraphBuilder::new(2);
        b.set_node_weight(0, 2).unwrap();
        b.set_node_weight(1, 3).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let path = temp_path("overflow-total.oms");
        write_stream_file(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let half = 1u64 << 63;
        // v2 header is 33 bytes; node 0's weight follows, node 1's weight
        // sits after node 0's degree (4) + one neighbor (4).
        bytes[33..41].copy_from_slice(&half.to_le_bytes());
        bytes[49..57].copy_from_slice(&half.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        match stream.stream_nodes(|_| {}).unwrap_err() {
            GraphError::Parse(msg) => assert!(msg.contains("overflow"), "{msg}"),
            other => panic!("expected a typed overflow error, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_write_rejects_weights_beyond_u32() {
        let mut b = GraphBuilder::new(2);
        b.set_node_weight(0, u32::MAX as u64 + 1).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let path = temp_path("overflow-v1.oms");
        match write_stream_file_v1(&g, &path).unwrap_err() {
            GraphError::WeightOutOfRange {
                what, value, max, ..
            } => {
                assert_eq!(what, "node");
                assert_eq!(value, u32::MAX as u64 + 1);
                assert_eq!(max, u32::MAX as u64);
            }
            other => panic!("expected WeightOutOfRange, got: {other}"),
        }
        // v2 represents the same weight losslessly.
        write_stream_file(&g, &path).unwrap();
        let back = read_stream_file(&path).unwrap();
        assert_eq!(back.node_weight(0), u32::MAX as u64 + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_weight_graph_is_rejected_at_write_time() {
        // A hand-built graph with a zero edge weight must not produce a file.
        let g = CsrGraph::from_csr(vec![0, 1, 2], vec![1, 0], vec![0, 0], vec![1, 1]).unwrap();
        let path = temp_path("zero-write.oms");
        std::fs::remove_file(&path).ok();
        match write_stream_file(&g, &path).unwrap_err() {
            GraphError::WeightOutOfRange { what, value, .. } => {
                assert_eq!(what, "edge");
                assert_eq!(value, 0);
            }
            other => panic!("expected WeightOutOfRange, got: {other}"),
        }
        assert!(!path.exists(), "no half-written file may remain");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_header_and_counts() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let path = temp_path("header.oms");
        write_stream_file(&g, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.num_nodes(), 5);
        assert_eq!(stream.num_edges(), 4);
        assert_eq!(stream.total_node_weight(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_total_weight_with_node_weights() {
        let mut b = GraphBuilder::new(3);
        b.set_node_weight(0, 10).unwrap();
        b.set_node_weight(1, 20).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        for (name, version) in [
            ("weights-v2.oms", StreamFormatVersion::V2),
            ("weights-v1.oms", StreamFormatVersion::V1),
        ] {
            let path = temp_path(name);
            write_stream_file_with(
                &g,
                &path,
                StreamWriteOptions {
                    version,
                    ..StreamWriteOptions::default()
                },
            )
            .unwrap();
            let stream = DiskStream::open(&path).unwrap();
            assert_eq!(stream.total_node_weight(), 31, "{name}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn disk_stream_can_be_streamed_twice() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("twice.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let mut first = Vec::new();
        stream.stream_nodes(|n| first.push(n.node)).unwrap();
        let mut second = Vec::new();
        stream.stream_nodes(|n| second.push(n.node)).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, vec![0, 1, 2, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_magic_is_rejected() {
        let path = temp_path("garbage.oms");
        std::fs::write(&path, b"NOTAGRAPHFILE....").unwrap();
        assert!(DiskStream::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_batches_match_per_node_pass_in_both_ingest_modes() {
        let g = CsrGraph::from_edges(9, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (6, 7), (7, 8)])
            .unwrap();
        let path = temp_path("batches.oms");
        write_stream_file(&g, &path).unwrap();
        let collect = |stream: &mut DiskStream, batch_size: usize| {
            let mut seen: Vec<(u32, Vec<u32>)> = Vec::new();
            stream
                .for_each_batch(batch_size, &mut |batch| {
                    for n in batch.iter() {
                        seen.push((n.node, n.neighbors.to_vec()));
                    }
                })
                .unwrap();
            seen
        };
        let mut reference = Vec::new();
        let mut sync = DiskStream::open(&path).unwrap().double_buffered(false);
        sync.stream_nodes(|n| reference.push((n.node, n.neighbors.to_vec())))
            .unwrap();
        for batch_size in [1, 2, 4, 100] {
            assert_eq!(collect(&mut sync, batch_size), reference);
            let mut buffered = DiskStream::open(&path).unwrap();
            assert!(buffered.is_double_buffered());
            assert_eq!(collect(&mut buffered, batch_size), reference);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        for (name, version) in [
            ("truncated-v2.oms", StreamFormatVersion::V2),
            ("truncated-v1.oms", StreamFormatVersion::V1),
        ] {
            let path = temp_path(name);
            write_stream_file_with(
                &g,
                &path,
                StreamWriteOptions {
                    version,
                    ..StreamWriteOptions::default()
                },
            )
            .unwrap();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
            for double_buffered in [false, true] {
                let mut stream = DiskStream::open(&path)
                    .unwrap()
                    .double_buffered(double_buffered);
                let err = stream.stream_nodes(|_| {}).unwrap_err();
                match err {
                    GraphError::Truncated {
                        expected_nodes,
                        read_nodes,
                    } => {
                        assert_eq!(expected_nodes, 6);
                        assert!(read_nodes < 6, "read {read_nodes} of 6");
                    }
                    other => panic!("expected Truncated, got: {other}"),
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn rewind_after_truncation_error_fails_identically() {
        // Regression: after a pass died on a truncated file, rewinding and
        // streaming again must fail with the *same* typed error from the
        // top of the file — never resume mid-file or stream short.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let path = temp_path("truncated-rewind.oms");
        write_stream_file(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        for double_buffered in [false, true] {
            let mut stream = DiskStream::open(&path)
                .unwrap()
                .double_buffered(double_buffered);
            let expect_truncated = |err: GraphError| match err {
                GraphError::Truncated {
                    expected_nodes,
                    read_nodes,
                } => (expected_nodes, read_nodes),
                other => panic!("expected Truncated, got: {other}"),
            };
            let mut count_first = 0usize;
            let first = expect_truncated(stream.stream_nodes(|_| count_first += 1).unwrap_err());
            stream.reset().unwrap();
            let mut count_second = 0usize;
            let second = expect_truncated(stream.stream_nodes(|_| count_second += 1).unwrap_err());
            assert_eq!(first, second, "second pass must restart from the top");
            assert_eq!(
                count_first, count_second,
                "second pass must deliver the same (truncated) prefix, not resume mid-file"
            );
            assert!(count_second < 6);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewind_after_count_mismatch_fails_identically() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("mismatch-rewind.oms");
        write_stream_file(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16..24].copy_from_slice(&4u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let as_mismatch = |err: GraphError| match err {
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => (what, expected, found),
            other => panic!("expected CountMismatch, got: {other}"),
        };
        let first = as_mismatch(stream.stream_nodes(|_| {}).unwrap_err());
        stream.reset().unwrap();
        let second = as_mismatch(stream.stream_nodes(|_| {}).unwrap_err());
        assert_eq!(first, second);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_detects_a_file_swapped_between_passes() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let path = temp_path("swapped.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        stream.stream_nodes(|_| {}).unwrap();
        // Swap in a file with a different node count under the same path.
        let other = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        write_stream_file(&other, &path).unwrap();
        match stream.reset().unwrap_err() {
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => {
                assert_eq!(what, "header nodes after rewind");
                assert_eq!(expected, 5);
                assert_eq!(found, 3);
            }
            other => panic!("expected CountMismatch, got: {other}"),
        }
        // A deleted file is an I/O error, not a silent empty pass.
        std::fs::remove_file(&path).unwrap();
        assert!(stream.reset().is_err());
    }

    #[test]
    fn reset_detects_a_version_swap_between_passes() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("version-swap.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        stream.stream_nodes(|_| {}).unwrap();
        write_stream_file_v1(&g, &path).unwrap();
        assert!(stream.reset().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_on_an_intact_file_allows_further_passes() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("reset-ok.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let mut first = Vec::new();
        stream.stream_nodes(|n| first.push(n.node)).unwrap();
        stream.reset().unwrap();
        let mut second = Vec::new();
        stream.stream_nodes(|n| second.push(n.node)).unwrap();
        assert_eq!(first, second);
        std::fs::remove_file(&path).ok();
    }

    fn write_v3(graph: &CsrGraph, path: &Path) {
        write_stream_file_with(
            graph,
            path,
            StreamWriteOptions {
                version: StreamFormatVersion::V3,
                ..StreamWriteOptions::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn v3_roundtrip_unweighted() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let path = temp_path("v3-unweighted.oms");
        write_v3(&g, &path);
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.version(), StreamFormatVersion::V3);
        assert_eq!(stream.total_node_weight(), 6);
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_roundtrip_weighted() {
        let g = weighted_sample();
        let path = temp_path("v3-weighted.oms");
        write_v3(&g, &path);
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.version(), StreamFormatVersion::V3);
        assert_eq!(stream.total_node_weight(), g.total_node_weight());
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_batches_match_per_node_pass_in_both_ingest_modes() {
        let g = weighted_sample();
        let path = temp_path("v3-batches.oms");
        write_v3(&g, &path);
        let mut reference = Vec::new();
        let mut sync = DiskStream::open(&path).unwrap().double_buffered(false);
        sync.stream_nodes(|n| {
            reference.push((
                n.node,
                n.weight,
                n.neighbors.to_vec(),
                n.edge_weights.to_vec(),
            ))
        })
        .unwrap();
        assert_eq!(reference.len(), 4);
        for batch_size in [1, 2, 3, 100] {
            for double_buffered in [false, true] {
                let mut stream = DiskStream::open(&path)
                    .unwrap()
                    .double_buffered(double_buffered);
                let mut seen = Vec::new();
                stream
                    .for_each_batch(batch_size, &mut |batch| {
                        for n in batch.iter() {
                            seen.push((
                                n.node,
                                n.weight,
                                n.neighbors.to_vec(),
                                n.edge_weights.to_vec(),
                            ));
                        }
                    })
                    .unwrap();
                assert_eq!(seen, reference, "batch={batch_size} dbuf={double_buffered}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_truncated_file_is_a_typed_error() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let path = temp_path("v3-truncated.oms");
        write_v3(&g, &path);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        for double_buffered in [false, true] {
            let mut stream = DiskStream::open(&path)
                .unwrap()
                .double_buffered(double_buffered);
            match stream.stream_nodes(|_| {}).unwrap_err() {
                GraphError::Truncated { expected_nodes, .. } => assert_eq!(expected_nodes, 6),
                other => panic!("expected Truncated, got: {other}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_info_is_a_typed_error() {
        // Regression: `stream_file_info` used to compute the trailer with a
        // saturating subtraction, silently reporting a 0-byte trailer for a
        // file whose header announces a body longer than the file. It must
        // raise the same typed error as the read path instead.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        for (name, version) in [
            ("info-truncated-v2.oms", StreamFormatVersion::V2),
            ("info-truncated-v3.oms", StreamFormatVersion::V3),
        ] {
            let path = temp_path(name);
            let options = StreamWriteOptions {
                version,
                ..StreamWriteOptions::default()
            };
            write_stream_file_with(&g, &path, options).unwrap();
            let intact = stream_file_info(&path).unwrap();
            assert_eq!(intact.trailer_bytes, 0, "{version:?}");
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
            match stream_file_info(&path).unwrap_err() {
                GraphError::Truncated {
                    expected_nodes,
                    read_nodes,
                } => {
                    assert_eq!(expected_nodes, 6, "{version:?}");
                    assert!(read_nodes < 6, "{version:?}: read {read_nodes} of 6");
                }
                other => panic!("{version:?}: expected Truncated, got: {other}"),
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v3_nonzero_header_padding_is_a_typed_error() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let path = temp_path("v3-misaligned.oms");
        write_v3(&g, &path);
        let mut bytes = std::fs::read(&path).unwrap();
        // Byte 33 is the first of the 7 header padding bytes.
        bytes[33] = 1;
        std::fs::write(&path, &bytes).unwrap();
        match DiskStream::open(&path).unwrap_err() {
            GraphError::Parse(msg) => assert!(msg.contains("padding"), "{msg}"),
            other => panic!("expected Parse, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_oversized_degree_is_a_typed_error() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("v3-degree.oms");
        write_v3(&g, &path);
        let mut bytes = std::fs::read(&path).unwrap();
        // Node 0's degree is the first u32 of the degrees section (offset 40).
        bytes[40..44].copy_from_slice(&1000u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        match stream.stream_nodes(|_| {}).unwrap_err() {
            GraphError::CountMismatch { what, .. } => assert_eq!(what, "edge entries"),
            other => panic!("expected CountMismatch, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_zero_node_weight_is_a_typed_error() {
        let g = weighted_sample();
        let path = temp_path("v3-zero-weight.oms");
        write_v3(&g, &path);
        let info = stream_file_info(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The node-weight section follows the padded degrees section.
        let woff = (info.header_bytes + info.degree_bytes).div_ceil(8) * 8;
        bytes[woff as usize..woff as usize + 8].copy_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        match stream.stream_nodes(|_| {}).unwrap_err() {
            GraphError::WeightOutOfRange { what, node, .. } => {
                assert_eq!(what, "node");
                assert_eq!(node, 0);
            }
            other => panic!("expected WeightOutOfRange, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_header_total_mismatch_is_a_typed_error() {
        let g = weighted_sample();
        let path = temp_path("v3-total.oms");
        write_v3(&g, &path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24..32].copy_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        match stream.stream_nodes(|_| {}).unwrap_err() {
            GraphError::CountMismatch { what, expected, .. } => {
                assert_eq!(what, "total node weight");
                assert_eq!(expected, 99);
            }
            other => panic!("expected CountMismatch, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_streams_identically_to_v2() {
        let g = weighted_sample();
        let v2 = temp_path("ident-v2.oms");
        let v3 = temp_path("ident-v3.oms");
        write_stream_file(&g, &v2).unwrap();
        write_v3(&g, &v3);
        let collect = |path: &Path| {
            let mut seen: Vec<(NodeId, NodeWeight, Vec<NodeId>, Vec<EdgeWeight>)> = Vec::new();
            DiskStream::open(path)
                .unwrap()
                .stream_nodes(|n| {
                    seen.push((
                        n.node,
                        n.weight,
                        n.neighbors.to_vec(),
                        n.edge_weights.to_vec(),
                    ));
                })
                .unwrap();
            seen
        };
        assert_eq!(collect(&v2), collect(&v3));
        std::fs::remove_file(&v2).ok();
        std::fs::remove_file(&v3).ok();
    }

    #[test]
    fn v2_to_v3_to_v2_conversion_is_content_identical() {
        for (name, g) in [
            (
                "conv-unweighted",
                CsrGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]).unwrap(),
            ),
            ("conv-weighted", weighted_sample()),
        ] {
            let a = temp_path(&format!("{name}-a.oms"));
            let b = temp_path(&format!("{name}-b.oms"));
            let c = temp_path(&format!("{name}-c.oms"));
            write_stream_file(&g, &a).unwrap();
            write_v3(&read_stream_file(&a).unwrap(), &b);
            write_stream_file(&read_stream_file(&b).unwrap(), &c).unwrap();
            assert_eq!(
                std::fs::read(&a).unwrap(),
                std::fs::read(&c).unwrap(),
                "{name}: v2→v3→v2 must be byte-identical"
            );
            for p in [&a, &b, &c] {
                std::fs::remove_file(p).ok();
            }
        }
    }

    #[test]
    fn v3_file_info_reports_sections() {
        let g = weighted_sample();
        let path = temp_path("v3-info.oms");
        write_v3(&g, &path);
        let info = stream_file_info(&path).unwrap();
        assert_eq!(info.version, StreamFormatVersion::V3);
        assert_eq!(info.num_nodes, 4);
        assert_eq!(info.num_edges, 3);
        assert_eq!(info.header_bytes, 40);
        assert_eq!(info.degree_bytes, 16);
        assert_eq!(info.node_weight_bytes, 32);
        assert_eq!(info.neighbor_bytes, 24);
        assert_eq!(info.edge_weight_bytes, 48);
        assert_eq!(info.body_bytes, info.file_bytes);
        assert_eq!(info.trailer_bytes, 0);
        assert_eq!(
            info.header_bytes
                + info.degree_bytes
                + info.node_weight_bytes
                + info.neighbor_bytes
                + info.edge_weight_bytes
                + info.padding_bytes,
            info.body_bytes
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_body_count_mismatch_is_a_typed_error() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("mismatch.oms");
        write_stream_file(&g, &path).unwrap();
        // Lie in the header: claim one edge more than the body holds.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16..24].copy_from_slice(&4u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let err = stream.stream_nodes(|_| {}).unwrap_err();
        match err {
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => {
                assert_eq!(what, "edge entries");
                assert_eq!(expected, 8);
                assert_eq!(found, 6);
            }
            other => panic!("expected CountMismatch, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
