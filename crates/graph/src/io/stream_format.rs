//! Binary vertex-stream format.
//!
//! The paper converts every benchmark graph to a *vertex-stream* format so
//! that one-pass algorithms can consume it either from memory or directly
//! from disk with `O(Δ)` working memory. This module defines such a format:
//!
//! ```text
//! magic   : 8 bytes  "OMSSTRM1"
//! n       : u64 LE   number of nodes
//! m       : u64 LE   number of undirected edges
//! flags   : u8       bit 0 = node weights present, bit 1 = edge weights present
//! per node (in id order):
//!   [node weight : u32 LE]            (if flag bit 0)
//!   degree       : u32 LE
//!   neighbors    : degree × u32 LE
//!   [edge weights: degree × u32 LE]   (if flag bit 1)
//! ```
//!
//! [`DiskStream`] implements [`NodeStream`] on top of the format, so every
//! streaming partitioner in `oms-core` can run straight off disk.

use crate::stream::{NodeStream, StreamedNode};
use crate::{CsrGraph, EdgeWeight, GraphError, NodeId, NodeWeight, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"OMSSTRM1";
const FLAG_NODE_WEIGHTS: u8 = 0b01;
const FLAG_EDGE_WEIGHTS: u8 = 0b10;

/// Writes `graph` to `path` in the binary vertex-stream format.
pub fn write_stream_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let has_nw = graph.node_weights().iter().any(|&x| x != 1);
    let has_ew = graph.edge_weights().iter().any(|&x| x != 1);
    let mut flags = 0u8;
    if has_nw {
        flags |= FLAG_NODE_WEIGHTS;
    }
    if has_ew {
        flags |= FLAG_EDGE_WEIGHTS;
    }
    w.write_all(MAGIC)?;
    w.write_all(&(graph.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    w.write_all(&[flags])?;
    for v in graph.nodes() {
        if has_nw {
            w.write_all(&(graph.node_weight(v) as u32).to_le_bytes())?;
        }
        let neighbors = graph.neighbors(v);
        w.write_all(&(neighbors.len() as u32).to_le_bytes())?;
        for &u in neighbors {
            w.write_all(&u.to_le_bytes())?;
        }
        if has_ew {
            for &ew in graph.incident_edge_weights(v) {
                w.write_all(&(ew as u32).to_le_bytes())?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a whole vertex-stream file back into an in-memory [`CsrGraph`].
pub fn read_stream_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let mut stream = DiskStream::open(path)?;
    let n = stream.num_nodes();
    let mut xadj = Vec::with_capacity(n + 1);
    xadj.push(0usize);
    let mut adjncy = Vec::new();
    let mut eweights = Vec::new();
    let mut nweights = Vec::with_capacity(n);
    stream.stream_nodes(|node| {
        nweights.push(node.weight);
        adjncy.extend_from_slice(node.neighbors);
        eweights.extend_from_slice(node.edge_weights);
        xadj.push(adjncy.len());
    })?;
    Ok(CsrGraph::from_csr_unchecked(
        xadj, adjncy, eweights, nweights,
    ))
}

/// A one-pass stream read from a vertex-stream file on disk.
///
/// Each call to [`NodeStream::for_each_node`] re-opens the file and performs
/// a fresh pass, so restreaming algorithms can reuse the same value.
pub struct DiskStream {
    path: PathBuf,
    num_nodes: usize,
    num_edges: usize,
    total_node_weight: NodeWeight,
    flags: u8,
}

impl DiskStream {
    /// Opens a vertex-stream file and reads its header.
    ///
    /// The total node weight is computed with one lightweight pass over the
    /// file when node weights are present (streaming algorithms need `c(V)`
    /// up front to compute `L_max`).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(GraphError::Parse("not an OMS vertex-stream file".into()));
        }
        let n = read_u64(&mut r)? as usize;
        let m = read_u64(&mut r)? as usize;
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)?;
        let flags = flags[0];

        let mut stream = DiskStream {
            path,
            num_nodes: n,
            num_edges: m,
            total_node_weight: n as NodeWeight,
            flags,
        };
        if flags & FLAG_NODE_WEIGHTS != 0 {
            let mut total: NodeWeight = 0;
            stream.stream_nodes(|node| total += node.weight)?;
            stream.total_node_weight = total;
        }
        Ok(stream)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl NodeStream for DiskStream {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.total_node_weight
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        let file = File::open(&self.path)?;
        let mut r = BufReader::new(file);
        let mut skip = [0u8; 8 + 8 + 8 + 1];
        r.read_exact(&mut skip)?;

        let has_nw = self.flags & FLAG_NODE_WEIGHTS != 0;
        let has_ew = self.flags & FLAG_EDGE_WEIGHTS != 0;
        let mut neighbors: Vec<NodeId> = Vec::new();
        let mut eweights: Vec<EdgeWeight> = Vec::new();
        for v in 0..self.num_nodes {
            let weight: NodeWeight = if has_nw {
                read_u32(&mut r)? as NodeWeight
            } else {
                1
            };
            let degree = read_u32(&mut r)? as usize;
            neighbors.clear();
            neighbors.reserve(degree);
            for _ in 0..degree {
                neighbors.push(read_u32(&mut r)?);
            }
            eweights.clear();
            if has_ew {
                eweights.reserve(degree);
                for _ in 0..degree {
                    eweights.push(read_u32(&mut r)? as EdgeWeight);
                }
            } else {
                eweights.resize(degree, 1);
            }
            f(StreamedNode {
                node: v as NodeId,
                weight,
                neighbors: &neighbors,
                edge_weights: &eweights,
            });
        }
        Ok(())
    }
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oms-graph-test-stream");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let path = temp_path("unweighted.oms");
        write_stream_file(&g, &path).unwrap();
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_weighted() {
        let mut b = GraphBuilder::new(4);
        b.set_node_weight(0, 3).unwrap();
        b.set_node_weight(3, 7).unwrap();
        b.add_weighted_edge(0, 1, 2).unwrap();
        b.add_weighted_edge(1, 2, 5).unwrap();
        b.add_weighted_edge(2, 3, 1).unwrap();
        let g = b.build();
        let path = temp_path("weighted.oms");
        write_stream_file(&g, &path).unwrap();
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_header_and_counts() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let path = temp_path("header.oms");
        write_stream_file(&g, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.num_nodes(), 5);
        assert_eq!(stream.num_edges(), 4);
        assert_eq!(stream.total_node_weight(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_total_weight_with_node_weights() {
        let mut b = GraphBuilder::new(3);
        b.set_node_weight(0, 10).unwrap();
        b.set_node_weight(1, 20).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let path = temp_path("weights.oms");
        write_stream_file(&g, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.total_node_weight(), 31);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_can_be_streamed_twice() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("twice.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let mut first = Vec::new();
        stream.stream_nodes(|n| first.push(n.node)).unwrap();
        let mut second = Vec::new();
        stream.stream_nodes(|n| second.push(n.node)).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, vec![0, 1, 2, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_magic_is_rejected() {
        let path = temp_path("garbage.oms");
        std::fs::write(&path, b"NOTAGRAPHFILE....").unwrap();
        assert!(DiskStream::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
