//! Binary vertex-stream format.
//!
//! The paper converts every benchmark graph to a *vertex-stream* format so
//! that one-pass algorithms can consume it either from memory or directly
//! from disk with `O(Δ)` working memory. This module defines such a format:
//!
//! ```text
//! magic   : 8 bytes  "OMSSTRM1"
//! n       : u64 LE   number of nodes
//! m       : u64 LE   number of undirected edges
//! flags   : u8       bit 0 = node weights present, bit 1 = edge weights present
//! per node (in id order):
//!   [node weight : u32 LE]            (if flag bit 0)
//!   degree       : u32 LE
//!   neighbors    : degree × u32 LE
//!   [edge weights: degree × u32 LE]   (if flag bit 1)
//! ```
//!
//! [`DiskStream`] implements [`NodeStream`] on top of the format, so every
//! streaming partitioner in `oms-core` can run straight off disk.

use crate::batch::NodeBatch;
use crate::stream::{NodeStream, StreamedNode, DEFAULT_BATCH_SIZE};
use crate::{CsrGraph, EdgeWeight, GraphError, NodeId, NodeWeight, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

const MAGIC: &[u8; 8] = b"OMSSTRM1";
const FLAG_NODE_WEIGHTS: u8 = 0b01;
const FLAG_EDGE_WEIGHTS: u8 = 0b10;

/// Writes `graph` to `path` in the binary vertex-stream format.
pub fn write_stream_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let has_nw = graph.node_weights().iter().any(|&x| x != 1);
    let has_ew = graph.edge_weights().iter().any(|&x| x != 1);
    let mut flags = 0u8;
    if has_nw {
        flags |= FLAG_NODE_WEIGHTS;
    }
    if has_ew {
        flags |= FLAG_EDGE_WEIGHTS;
    }
    w.write_all(MAGIC)?;
    w.write_all(&(graph.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    w.write_all(&[flags])?;
    for v in graph.nodes() {
        if has_nw {
            w.write_all(&(graph.node_weight(v) as u32).to_le_bytes())?;
        }
        let neighbors = graph.neighbors(v);
        w.write_all(&(neighbors.len() as u32).to_le_bytes())?;
        for &u in neighbors {
            w.write_all(&u.to_le_bytes())?;
        }
        if has_ew {
            for &ew in graph.incident_edge_weights(v) {
                w.write_all(&(ew as u32).to_le_bytes())?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a whole vertex-stream file back into an in-memory [`CsrGraph`].
pub fn read_stream_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let mut stream = DiskStream::open(path)?;
    let n = stream.num_nodes();
    let mut xadj = Vec::with_capacity(n + 1);
    xadj.push(0usize);
    let mut adjncy = Vec::new();
    let mut eweights = Vec::new();
    let mut nweights = Vec::with_capacity(n);
    stream.stream_nodes(|node| {
        nweights.push(node.weight);
        adjncy.extend_from_slice(node.neighbors);
        eweights.extend_from_slice(node.edge_weights);
        xadj.push(adjncy.len());
    })?;
    Ok(CsrGraph::from_csr_unchecked(
        xadj, adjncy, eweights, nweights,
    ))
}

/// A one-pass stream read from a vertex-stream file on disk.
///
/// Each pass re-opens the file, so restreaming algorithms can reuse the same
/// value. Ingest is **double-buffered** by default: a reader thread decodes
/// batch `B+1` from disk while the consumer processes batch `B`, overlapping
/// I/O + decode with scoring. [`DiskStream::double_buffered`] switches back
/// to fully synchronous ingest (used by benchmarks to measure the overlap).
///
/// Every pass validates the file body against the header: a file ending
/// before all `n` announced nodes is a [`GraphError::Truncated`] error, and a
/// body whose adjacency lists do not sum to `2m` entries is a
/// [`GraphError::CountMismatch`] — a short file never silently streams short.
pub struct DiskStream {
    path: PathBuf,
    num_nodes: usize,
    num_edges: usize,
    total_node_weight: NodeWeight,
    flags: u8,
    double_buffered: bool,
    read_batch_size: usize,
}

impl DiskStream {
    /// Opens a vertex-stream file and reads its header.
    ///
    /// The total node weight is computed with one lightweight pass over the
    /// file when node weights are present (streaming algorithms need `c(V)`
    /// up front to compute `L_max`).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(GraphError::Parse("not an OMS vertex-stream file".into()));
        }
        let n = read_u64(&mut r)? as usize;
        let m = read_u64(&mut r)? as usize;
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)?;
        let flags = flags[0];

        let mut stream = DiskStream {
            path,
            num_nodes: n,
            num_edges: m,
            total_node_weight: n as NodeWeight,
            flags,
            double_buffered: true,
            read_batch_size: DEFAULT_BATCH_SIZE,
        };
        if flags & FLAG_NODE_WEIGHTS != 0 {
            let mut total: NodeWeight = 0;
            // The header pass is synchronous: no compute to overlap with.
            let mut reader = PassReader::open(&stream)?;
            let mut batch = NodeBatch::new();
            while reader.fill(&mut batch, stream.read_batch_size)? {
                total += batch.iter().map(|node| node.weight).sum::<NodeWeight>();
            }
            total += batch.iter().map(|node| node.weight).sum::<NodeWeight>();
            stream.total_node_weight = total;
        }
        Ok(stream)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Enables or disables double-buffered ingest (enabled by default).
    pub fn double_buffered(mut self, enabled: bool) -> Self {
        self.double_buffered = enabled;
        self
    }

    /// Whether ingest is double-buffered.
    pub fn is_double_buffered(&self) -> bool {
        self.double_buffered
    }

    /// Sets the number of nodes decoded per ingest batch (used when the
    /// consumer streams per node rather than per batch).
    pub fn read_batch_size(mut self, nodes: usize) -> Self {
        self.read_batch_size = nodes.max(1);
        self
    }

    /// Re-reads the file header and checks it against the counts announced
    /// when the stream was opened.
    ///
    /// Every pass starts from the top of the file anyway (see
    /// [`PassReader::open`]), so a rewind can never resume mid-file — but a
    /// file that was swapped or rewritten *between* passes would silently
    /// change the data under a restreaming run. This check turns that into a
    /// typed error before the next pass starts.
    fn revalidate_header(&self) -> Result<()> {
        let file = File::open(&self.path)?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(GraphError::Parse(
                "not an OMS vertex-stream file (header changed between passes)".into(),
            ));
        }
        let n = read_u64(&mut r)? as usize;
        let m = read_u64(&mut r)? as usize;
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)?;
        if n != self.num_nodes {
            return Err(GraphError::CountMismatch {
                what: "header nodes after rewind",
                expected: self.num_nodes as u64,
                found: n as u64,
            });
        }
        if m != self.num_edges {
            return Err(GraphError::CountMismatch {
                what: "header edges after rewind",
                expected: self.num_edges as u64,
                found: m as u64,
            });
        }
        if flags[0] != self.flags {
            return Err(GraphError::Parse(
                "vertex-stream flags changed between passes".into(),
            ));
        }
        Ok(())
    }
}

/// The decode state of one pass over a vertex-stream file.
///
/// Both ingest modes (synchronous and double-buffered) fill batches through
/// this reader, so header validation happens exactly once, here.
struct PassReader {
    r: BufReader<File>,
    has_node_weights: bool,
    has_edge_weights: bool,
    expected_nodes: usize,
    expected_edge_entries: u64,
    next_node: usize,
    edge_entries: u64,
    scratch_neighbors: Vec<NodeId>,
    scratch_eweights: Vec<EdgeWeight>,
}

impl PassReader {
    fn open(stream: &DiskStream) -> Result<Self> {
        let file = File::open(&stream.path)?;
        // A deep read buffer keeps the kernel's readahead busy; the default
        // 8 KiB would issue one syscall per handful of adjacency lists.
        let mut r = BufReader::with_capacity(1 << 20, file);
        let mut skip = [0u8; 8 + 8 + 8 + 1];
        r.read_exact(&mut skip)?;
        Ok(PassReader {
            r,
            has_node_weights: stream.flags & FLAG_NODE_WEIGHTS != 0,
            has_edge_weights: stream.flags & FLAG_EDGE_WEIGHTS != 0,
            expected_nodes: stream.num_nodes,
            // Each undirected edge appears in both endpoints' lists.
            expected_edge_entries: 2 * stream.num_edges as u64,
            next_node: 0,
            edge_entries: 0,
            scratch_neighbors: Vec::new(),
            scratch_eweights: Vec::new(),
        })
    }

    /// Maps an early EOF to the typed truncation error.
    fn truncated(&self, e: GraphError) -> GraphError {
        match e {
            GraphError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
                GraphError::Truncated {
                    expected_nodes: self.expected_nodes as u64,
                    read_nodes: self.next_node as u64,
                }
            }
            other => other,
        }
    }

    /// Clears `batch` and refills it with up to `max_nodes` decoded nodes.
    /// Returns `true` while more nodes remain after this batch.
    fn fill(&mut self, batch: &mut NodeBatch, max_nodes: usize) -> Result<bool> {
        batch.clear();
        let max_nodes = max_nodes.max(1);
        while batch.len() < max_nodes && self.next_node < self.expected_nodes {
            let weight: NodeWeight = if self.has_node_weights {
                read_u32(&mut self.r).map_err(|e| self.truncated(e))? as NodeWeight
            } else {
                1
            };
            let degree = read_u32(&mut self.r).map_err(|e| self.truncated(e))? as usize;
            self.scratch_neighbors.clear();
            self.scratch_neighbors.reserve(degree);
            for _ in 0..degree {
                let u = read_u32(&mut self.r).map_err(|e| self.truncated(e))?;
                self.scratch_neighbors.push(u);
            }
            if self.has_edge_weights {
                self.scratch_eweights.clear();
                self.scratch_eweights.reserve(degree);
                for _ in 0..degree {
                    let w = read_u32(&mut self.r).map_err(|e| self.truncated(e))?;
                    self.scratch_eweights.push(w as EdgeWeight);
                }
                batch.push_parts(
                    self.next_node as NodeId,
                    weight,
                    &self.scratch_neighbors,
                    &self.scratch_eweights,
                );
            } else {
                batch.push_unit_weight_edges(
                    self.next_node as NodeId,
                    weight,
                    &self.scratch_neighbors,
                );
            }
            self.edge_entries += degree as u64;
            self.next_node += 1;
        }
        let more = self.next_node < self.expected_nodes;
        if !more && self.edge_entries != self.expected_edge_entries {
            return Err(GraphError::CountMismatch {
                what: "edge entries",
                expected: self.expected_edge_entries,
                found: self.edge_entries,
            });
        }
        Ok(more)
    }
}

impl NodeStream for DiskStream {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.total_node_weight
    }

    fn reset(&mut self) -> Result<()> {
        self.revalidate_header()
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        let read_batch = self.read_batch_size;
        self.for_each_batch(read_batch, &mut |batch| {
            for node in batch.iter() {
                f(node);
            }
        })
    }

    fn for_each_batch(&mut self, batch_size: usize, f: &mut dyn FnMut(&NodeBatch)) -> Result<()> {
        let batch_size = batch_size.max(1);
        let mut reader = PassReader::open(self)?;

        if !self.double_buffered {
            let mut batch = NodeBatch::new();
            loop {
                let more = reader.fill(&mut batch, batch_size)?;
                if !batch.is_empty() {
                    f(&batch);
                }
                if !more {
                    return Ok(());
                }
            }
        }

        // Double-buffered ingest: a scoped reader thread decodes the next
        // batch while the caller consumes the current one. Two buffers
        // rotate through a pair of channels, so the steady state allocates
        // nothing.
        std::thread::scope(|scope| {
            let (full_tx, full_rx) = mpsc::sync_channel::<Result<NodeBatch>>(1);
            let (free_tx, free_rx) = mpsc::channel::<NodeBatch>();
            for _ in 0..2 {
                free_tx.send(NodeBatch::new()).expect("receiver alive");
            }
            scope.spawn(move || {
                while let Ok(mut batch) = free_rx.recv() {
                    match reader.fill(&mut batch, batch_size) {
                        Ok(more) => {
                            if !batch.is_empty() && full_tx.send(Ok(batch)).is_err() {
                                return; // consumer bailed out
                            }
                            if !more {
                                return; // dropping full_tx ends the pass
                            }
                        }
                        Err(e) => {
                            full_tx.send(Err(e)).ok();
                            return;
                        }
                    }
                }
            });
            while let Ok(item) = full_rx.recv() {
                let batch = item?;
                f(&batch);
                // The reader may already have finished; a dead receiver just
                // drops the buffer.
                free_tx.send(batch).ok();
            }
            Ok(())
        })
    }
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oms-graph-test-stream");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let path = temp_path("unweighted.oms");
        write_stream_file(&g, &path).unwrap();
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_weighted() {
        let mut b = GraphBuilder::new(4);
        b.set_node_weight(0, 3).unwrap();
        b.set_node_weight(3, 7).unwrap();
        b.add_weighted_edge(0, 1, 2).unwrap();
        b.add_weighted_edge(1, 2, 5).unwrap();
        b.add_weighted_edge(2, 3, 1).unwrap();
        let g = b.build();
        let path = temp_path("weighted.oms");
        write_stream_file(&g, &path).unwrap();
        let back = read_stream_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_header_and_counts() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let path = temp_path("header.oms");
        write_stream_file(&g, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.num_nodes(), 5);
        assert_eq!(stream.num_edges(), 4);
        assert_eq!(stream.total_node_weight(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_total_weight_with_node_weights() {
        let mut b = GraphBuilder::new(3);
        b.set_node_weight(0, 10).unwrap();
        b.set_node_weight(1, 20).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let path = temp_path("weights.oms");
        write_stream_file(&g, &path).unwrap();
        let stream = DiskStream::open(&path).unwrap();
        assert_eq!(stream.total_node_weight(), 31);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_can_be_streamed_twice() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("twice.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let mut first = Vec::new();
        stream.stream_nodes(|n| first.push(n.node)).unwrap();
        let mut second = Vec::new();
        stream.stream_nodes(|n| second.push(n.node)).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, vec![0, 1, 2, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_magic_is_rejected() {
        let path = temp_path("garbage.oms");
        std::fs::write(&path, b"NOTAGRAPHFILE....").unwrap();
        assert!(DiskStream::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_batches_match_per_node_pass_in_both_ingest_modes() {
        let g = CsrGraph::from_edges(9, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (6, 7), (7, 8)])
            .unwrap();
        let path = temp_path("batches.oms");
        write_stream_file(&g, &path).unwrap();
        let collect = |stream: &mut DiskStream, batch_size: usize| {
            let mut seen: Vec<(u32, Vec<u32>)> = Vec::new();
            stream
                .for_each_batch(batch_size, &mut |batch| {
                    for n in batch.iter() {
                        seen.push((n.node, n.neighbors.to_vec()));
                    }
                })
                .unwrap();
            seen
        };
        let mut reference = Vec::new();
        let mut sync = DiskStream::open(&path).unwrap().double_buffered(false);
        sync.stream_nodes(|n| reference.push((n.node, n.neighbors.to_vec())))
            .unwrap();
        for batch_size in [1, 2, 4, 100] {
            assert_eq!(collect(&mut sync, batch_size), reference);
            let mut buffered = DiskStream::open(&path).unwrap();
            assert!(buffered.is_double_buffered());
            assert_eq!(collect(&mut buffered, batch_size), reference);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let path = temp_path("truncated.oms");
        write_stream_file(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        for double_buffered in [false, true] {
            let mut stream = DiskStream::open(&path)
                .unwrap()
                .double_buffered(double_buffered);
            let err = stream.stream_nodes(|_| {}).unwrap_err();
            match err {
                GraphError::Truncated {
                    expected_nodes,
                    read_nodes,
                } => {
                    assert_eq!(expected_nodes, 6);
                    assert!(read_nodes < 6, "read {read_nodes} of 6");
                }
                other => panic!("expected Truncated, got: {other}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewind_after_truncation_error_fails_identically() {
        // Regression: after a pass died on a truncated file, rewinding and
        // streaming again must fail with the *same* typed error from the
        // top of the file — never resume mid-file or stream short.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let path = temp_path("truncated-rewind.oms");
        write_stream_file(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        for double_buffered in [false, true] {
            let mut stream = DiskStream::open(&path)
                .unwrap()
                .double_buffered(double_buffered);
            let expect_truncated = |err: GraphError| match err {
                GraphError::Truncated {
                    expected_nodes,
                    read_nodes,
                } => (expected_nodes, read_nodes),
                other => panic!("expected Truncated, got: {other}"),
            };
            let mut count_first = 0usize;
            let first = expect_truncated(stream.stream_nodes(|_| count_first += 1).unwrap_err());
            stream.reset().unwrap();
            let mut count_second = 0usize;
            let second = expect_truncated(stream.stream_nodes(|_| count_second += 1).unwrap_err());
            assert_eq!(first, second, "second pass must restart from the top");
            assert_eq!(
                count_first, count_second,
                "second pass must deliver the same (truncated) prefix, not resume mid-file"
            );
            assert!(count_second < 6);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewind_after_count_mismatch_fails_identically() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("mismatch-rewind.oms");
        write_stream_file(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16..24].copy_from_slice(&4u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let as_mismatch = |err: GraphError| match err {
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => (what, expected, found),
            other => panic!("expected CountMismatch, got: {other}"),
        };
        let first = as_mismatch(stream.stream_nodes(|_| {}).unwrap_err());
        stream.reset().unwrap();
        let second = as_mismatch(stream.stream_nodes(|_| {}).unwrap_err());
        assert_eq!(first, second);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_detects_a_file_swapped_between_passes() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let path = temp_path("swapped.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        stream.stream_nodes(|_| {}).unwrap();
        // Swap in a file with a different node count under the same path.
        let other = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        write_stream_file(&other, &path).unwrap();
        match stream.reset().unwrap_err() {
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => {
                assert_eq!(what, "header nodes after rewind");
                assert_eq!(expected, 5);
                assert_eq!(found, 3);
            }
            other => panic!("expected CountMismatch, got: {other}"),
        }
        // A deleted file is an I/O error, not a silent empty pass.
        std::fs::remove_file(&path).unwrap();
        assert!(stream.reset().is_err());
    }

    #[test]
    fn reset_on_an_intact_file_allows_further_passes() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("reset-ok.oms");
        write_stream_file(&g, &path).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let mut first = Vec::new();
        stream.stream_nodes(|n| first.push(n.node)).unwrap();
        stream.reset().unwrap();
        let mut second = Vec::new();
        stream.stream_nodes(|n| second.push(n.node)).unwrap();
        assert_eq!(first, second);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_body_count_mismatch_is_a_typed_error() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let path = temp_path("mismatch.oms");
        write_stream_file(&g, &path).unwrap();
        // Lie in the header: claim one edge more than the body holds.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16..24].copy_from_slice(&4u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let err = stream.stream_nodes(|_| {}).unwrap_err();
        match err {
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => {
                assert_eq!(what, "edge entries");
                assert_eq!(expected, 8);
                assert_eq!(found, 6);
            }
            other => panic!("expected CountMismatch, got: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
