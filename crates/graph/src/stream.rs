//! The one-pass streaming model.
//!
//! In the one-pass model (Stanton & Kliot), nodes arrive one at a time
//! together with their adjacency lists and must be assigned to a block
//! immediately and permanently. The only global information a streaming
//! partitioner may rely on are the *counts* `n` and `m` and the total node
//! weight (needed by Fennel to compute its `α` and by every algorithm to
//! compute the balance constraint `L_max`).
//!
//! [`NodeStream`] captures exactly that contract. Two implementations are
//! provided here — [`InMemoryStream`] (streaming from RAM, as in the paper's
//! running-time experiments) and [`ChunkedStream`] (the vertex-centric
//! chunking used by the shared-memory parallelisation) — and a third one,
//! [`crate::io::DiskStream`], streams the binary vertex-stream format from
//! disk.

use crate::batch::NodeBatch;
use crate::{CsrGraph, EdgeWeight, NodeId, NodeOrdering, NodeWeight, Result};

/// Default number of nodes per batch when a caller does not specify one.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// A node as it appears on the stream: its id, weight and adjacency list.
#[derive(Clone, Copy, Debug)]
pub struct StreamedNode<'a> {
    /// The node's id in the original graph.
    pub node: NodeId,
    /// The node's weight.
    pub weight: NodeWeight,
    /// Neighbors of the node (ids in the original graph).
    pub neighbors: &'a [NodeId],
    /// Weights of the incident edges, aligned with `neighbors`.
    pub edge_weights: &'a [EdgeWeight],
}

impl<'a> StreamedNode<'a> {
    /// Degree of the streamed node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Iterator over `(neighbor, edge weight)` pairs.
    pub fn neighbors_weighted(&self) -> impl Iterator<Item = (NodeId, EdgeWeight)> + 'a {
        self.neighbors
            .iter()
            .copied()
            .zip(self.edge_weights.iter().copied())
    }
}

/// A single pass over the nodes of a graph.
///
/// Implementors must visit every node exactly once per call to
/// [`NodeStream::for_each_node`]. Re-streaming algorithms simply call it
/// again.
///
/// The trait is dyn-compatible (`for_each_node` takes `&mut dyn FnMut`), so
/// heterogeneous frontends can pass `&mut dyn NodeStream` to the object-safe
/// partitioner API in `oms-core` without monomorphising per stream type. Use
/// [`NodeStream::stream_nodes`] at call sites to keep passing plain closures.
pub trait NodeStream {
    /// Number of nodes `n` of the streamed graph.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `m` of the streamed graph.
    fn num_edges(&self) -> usize;

    /// Total node weight `c(V)` of the streamed graph.
    fn total_node_weight(&self) -> NodeWeight;

    /// Rewinds the stream to its beginning, so the next
    /// [`NodeStream::for_each_node`] / [`NodeStream::for_each_batch`] call
    /// delivers a full pass starting from the first node.
    ///
    /// Multi-pass (restreaming) drivers call this between passes. In-memory
    /// sources rewind trivially (every pass starts from the front anyway);
    /// sources with external state re-open and re-validate it — e.g.
    /// [`crate::io::DiskStream`] re-opens the file and checks that its header
    /// still matches the counts announced when the stream was first opened,
    /// so a file that was truncated or swapped between passes fails with a
    /// typed error instead of silently streaming different data.
    fn reset(&mut self) -> Result<()> {
        Ok(())
    }

    /// Performs one pass, invoking `f` for every node in stream order.
    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()>;

    /// Performs one pass delivering the stream in [`NodeBatch`]es of up to
    /// `batch_size` nodes (in stream order; concatenating all batches yields
    /// exactly one full pass).
    ///
    /// The default implementation accumulates `for_each_node` output into a
    /// reused batch buffer; sources override it to fill batches directly
    /// ([`InMemoryStream`], [`ChunkedStream`]) or to overlap ingest with
    /// consumption on a reader thread ([`crate::io::DiskStream`]).
    fn for_each_batch(&mut self, batch_size: usize, f: &mut dyn FnMut(&NodeBatch)) -> Result<()> {
        let batch_size = batch_size.max(1);
        let mut batch = NodeBatch::new();
        self.for_each_node(&mut |node| {
            batch.push(node);
            if batch.len() >= batch_size {
                f(&batch);
                batch.clear();
            }
        })?;
        if !batch.is_empty() {
            f(&batch);
        }
        Ok(())
    }

    /// The in-memory graph behind this stream, when there is one.
    ///
    /// Random-access drivers (the shared-memory parallel partitioners, the
    /// multilevel baseline) use this to skip materialisation; disk streams
    /// return `None` and are materialised on demand.
    fn as_graph(&self) -> Option<&CsrGraph> {
        None
    }

    /// Convenience wrapper around [`NodeStream::for_each_node`] accepting a
    /// plain closure (no `&mut` at the call site).
    fn stream_nodes<F>(&mut self, mut f: F) -> Result<()>
    where
        F: FnMut(StreamedNode<'_>),
        Self: Sized,
    {
        self.for_each_node(&mut f)
    }
}

impl<S: NodeStream + ?Sized> NodeStream for &mut S {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn total_node_weight(&self) -> NodeWeight {
        (**self).total_node_weight()
    }

    fn reset(&mut self) -> Result<()> {
        (**self).reset()
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        (**self).for_each_node(f)
    }

    fn for_each_batch(&mut self, batch_size: usize, f: &mut dyn FnMut(&NodeBatch)) -> Result<()> {
        (**self).for_each_batch(batch_size, f)
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        (**self).as_graph()
    }
}

/// Fills batches straight from a CSR graph for the node sequence `order`,
/// avoiding the per-node closure round trip of the default implementation.
fn batches_from_graph(
    graph: &CsrGraph,
    order: impl Iterator<Item = NodeId>,
    batch_size: usize,
    f: &mut dyn FnMut(&NodeBatch),
) {
    let batch_size = batch_size.max(1);
    let mut batch = NodeBatch::with_capacity(batch_size, 0);
    for v in order {
        batch.push_parts(
            v,
            graph.node_weight(v),
            graph.neighbors(v),
            graph.incident_edge_weights(v),
        );
        if batch.len() >= batch_size {
            f(&batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        f(&batch);
    }
}

/// Adapter forcing batch size 1: every node is copied into its own
/// singleton [`NodeBatch`] before being delivered — both per node
/// (`for_each_node`) and per batch (`for_each_batch`).
///
/// Used by the equivalence test suite as the classic per-node reference
/// path, and by benchmarks that measure the cost of per-node batch
/// delivery against the native (zero-copy or bulk-batched) path of the
/// wrapped source.
pub struct PerNodeBatches<S>(pub S);

impl<S: NodeStream> NodeStream for PerNodeBatches<S> {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.0.num_edges()
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.0.total_node_weight()
    }

    fn reset(&mut self) -> Result<()> {
        self.0.reset()
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        self.for_each_batch(1, &mut |batch| f(batch.get(0)))
    }

    fn for_each_batch(&mut self, _batch_size: usize, f: &mut dyn FnMut(&NodeBatch)) -> Result<()> {
        let mut batch = NodeBatch::new();
        self.0.for_each_node(&mut |node| {
            batch.clear();
            batch.push(node);
            f(&batch);
        })
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        self.0.as_graph()
    }
}

/// Streams a [`CsrGraph`] held in memory, optionally permuted.
///
/// This mirrors the paper's experimental setup: "we stream the input directly
/// from the internal memory to obtain clear running time comparisons".
pub struct InMemoryStream<'g> {
    graph: &'g CsrGraph,
    order: Option<Vec<NodeId>>,
}

impl<'g> InMemoryStream<'g> {
    /// Streams `graph` in natural order.
    pub fn new(graph: &'g CsrGraph) -> Self {
        InMemoryStream { graph, order: None }
    }

    /// Streams `graph` in the order produced by `ordering`.
    pub fn with_ordering(graph: &'g CsrGraph, ordering: NodeOrdering) -> Self {
        let order = match ordering {
            NodeOrdering::Natural => None,
            other => Some(other.permutation(graph)),
        };
        InMemoryStream { graph, order }
    }

    /// Streams `graph` in an explicitly given order.
    pub fn with_permutation(graph: &'g CsrGraph, permutation: Vec<NodeId>) -> Self {
        InMemoryStream {
            graph,
            order: Some(permutation),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    fn streamed(&self, v: NodeId) -> StreamedNode<'_> {
        StreamedNode {
            node: v,
            weight: self.graph.node_weight(v),
            neighbors: self.graph.neighbors(v),
            edge_weights: self.graph.incident_edge_weights(v),
        }
    }
}

impl<'g> NodeStream for InMemoryStream<'g> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.graph.total_node_weight()
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        Some(self.graph)
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        match &self.order {
            None => {
                for v in self.graph.nodes() {
                    f(self.streamed(v));
                }
            }
            Some(order) => {
                for &v in order {
                    f(self.streamed(v));
                }
            }
        }
        Ok(())
    }

    fn for_each_batch(&mut self, batch_size: usize, f: &mut dyn FnMut(&NodeBatch)) -> Result<()> {
        match &self.order {
            None => batches_from_graph(self.graph, self.graph.nodes(), batch_size, f),
            Some(order) => batches_from_graph(self.graph, order.iter().copied(), batch_size, f),
        }
        Ok(())
    }
}

/// Splits the stream of a [`CsrGraph`] into contiguous chunks of nodes for
/// the vertex-centric shared-memory parallelisation (§3.4 of the paper).
///
/// Each chunk can be processed by a different thread; the partitioner is
/// responsible for keeping its block weights consistent (atomics).
pub struct ChunkedStream<'g> {
    graph: &'g CsrGraph,
    order: Vec<NodeId>,
}

impl<'g> ChunkedStream<'g> {
    /// Creates a chunked view over `graph` streamed in `ordering` order.
    pub fn new(graph: &'g CsrGraph, ordering: NodeOrdering) -> Self {
        ChunkedStream {
            graph,
            order: ordering.permutation(graph),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The full stream order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Splits the stream order into at most `num_chunks` contiguous slices of
    /// (nearly) equal length. Fewer chunks are returned when the graph has
    /// fewer nodes than `num_chunks`.
    pub fn chunks(&self, num_chunks: usize) -> Vec<&[NodeId]> {
        let n = self.order.len();
        if n == 0 || num_chunks == 0 {
            return Vec::new();
        }
        let chunk_size = n.div_ceil(num_chunks);
        self.order.chunks(chunk_size).collect()
    }

    /// Materialises the [`StreamedNode`] view of node `v`.
    pub fn streamed(&self, v: NodeId) -> StreamedNode<'_> {
        StreamedNode {
            node: v,
            weight: self.graph.node_weight(v),
            neighbors: self.graph.neighbors(v),
            edge_weights: self.graph.incident_edge_weights(v),
        }
    }
}

impl<'g> NodeStream for ChunkedStream<'g> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.graph.total_node_weight()
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        Some(self.graph)
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        for &v in &self.order {
            f(self.streamed(v));
        }
        Ok(())
    }

    fn for_each_batch(&mut self, batch_size: usize, f: &mut dyn FnMut(&NodeBatch)) -> Result<()> {
        batches_from_graph(self.graph, self.order.iter().copied(), batch_size, f);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap()
    }

    #[test]
    fn in_memory_stream_visits_all_nodes_in_order() {
        let g = sample();
        let mut stream = InMemoryStream::new(&g);
        let mut seen = Vec::new();
        stream
            .stream_nodes(|node| {
                seen.push(node.node);
                assert_eq!(node.degree(), g.degree(node.node));
            })
            .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stream_counts_match_graph() {
        let g = sample();
        let stream = InMemoryStream::new(&g);
        assert_eq!(stream.num_nodes(), 5);
        assert_eq!(stream.num_edges(), 6);
        assert_eq!(stream.total_node_weight(), 5);
    }

    #[test]
    fn permuted_stream_respects_permutation() {
        let g = sample();
        let perm = vec![4, 3, 2, 1, 0];
        let mut stream = InMemoryStream::with_permutation(&g, perm.clone());
        let mut seen = Vec::new();
        stream.stream_nodes(|node| seen.push(node.node)).unwrap();
        assert_eq!(seen, perm);
    }

    #[test]
    fn ordered_stream_with_random_order_is_a_permutation() {
        let g = sample();
        let mut stream = InMemoryStream::with_ordering(&g, NodeOrdering::Random(9));
        let mut seen = Vec::new();
        stream.stream_nodes(|node| seen.push(node.node)).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn streamed_node_exposes_weighted_neighbors() {
        let g = sample();
        let mut stream = InMemoryStream::new(&g);
        stream
            .stream_nodes(|node| {
                if node.node == 1 {
                    let pairs: Vec<_> = node.neighbors_weighted().collect();
                    assert_eq!(pairs.len(), 3);
                    assert!(pairs.iter().all(|&(_, w)| w == 1));
                }
            })
            .unwrap();
    }

    #[test]
    fn chunked_stream_covers_all_nodes_exactly_once() {
        let g = sample();
        let chunked = ChunkedStream::new(&g, NodeOrdering::Natural);
        let chunks = chunked.chunks(2);
        assert_eq!(chunks.len(), 2);
        let mut all: Vec<NodeId> = chunks.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chunked_stream_handles_more_chunks_than_nodes() {
        let g = sample();
        let chunked = ChunkedStream::new(&g, NodeOrdering::Natural);
        let chunks = chunked.chunks(100);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn chunked_stream_zero_chunks_is_empty() {
        let g = sample();
        let chunked = ChunkedStream::new(&g, NodeOrdering::Natural);
        assert!(chunked.chunks(0).is_empty());
    }

    /// Replays a full pass through `for_each_batch` and checks it matches the
    /// per-node pass exactly (ids, weights, adjacency, order).
    fn assert_batches_match_nodes<S: NodeStream>(stream: &mut S, batch_size: usize) {
        let mut per_node: Vec<(NodeId, NodeWeight, Vec<NodeId>, Vec<EdgeWeight>)> = Vec::new();
        stream
            .for_each_node(&mut |n| {
                per_node.push((
                    n.node,
                    n.weight,
                    n.neighbors.to_vec(),
                    n.edge_weights.to_vec(),
                ));
            })
            .unwrap();
        let mut batched = Vec::new();
        let mut sizes = Vec::new();
        stream
            .for_each_batch(batch_size, &mut |batch| {
                sizes.push(batch.len());
                for n in batch.iter() {
                    batched.push((
                        n.node,
                        n.weight,
                        n.neighbors.to_vec(),
                        n.edge_weights.to_vec(),
                    ));
                }
            })
            .unwrap();
        assert_eq!(per_node, batched);
        assert!(sizes.iter().all(|&s| s <= batch_size.max(1)));
    }

    #[test]
    fn in_memory_batches_match_per_node_pass() {
        let g = sample();
        for batch_size in [1, 2, 3, 100] {
            assert_batches_match_nodes(&mut InMemoryStream::new(&g), batch_size);
            assert_batches_match_nodes(
                &mut InMemoryStream::with_ordering(&g, NodeOrdering::Random(7)),
                batch_size,
            );
        }
    }

    #[test]
    fn chunked_stream_batches_match_per_node_pass() {
        let g = sample();
        for batch_size in [1, 2, 100] {
            assert_batches_match_nodes(
                &mut ChunkedStream::new(&g, NodeOrdering::Natural),
                batch_size,
            );
        }
    }

    #[test]
    fn per_node_adapter_emits_singleton_batches() {
        let g = sample();
        let mut stream = PerNodeBatches(InMemoryStream::new(&g));
        let mut sizes = Vec::new();
        let mut ids = Vec::new();
        stream
            .for_each_batch(1000, &mut |batch| {
                sizes.push(batch.len());
                ids.extend(batch.iter().map(|n| n.node));
            })
            .unwrap();
        assert!(sizes.iter().all(|&s| s == 1));
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(stream.num_nodes(), 5);
        assert_eq!(stream.num_edges(), 6);
    }

    #[test]
    fn default_for_each_batch_flushes_partial_tail() {
        // A stream type without a batch override exercises the default impl.
        struct Wrapper<'g>(InMemoryStream<'g>);
        impl NodeStream for Wrapper<'_> {
            fn num_nodes(&self) -> usize {
                self.0.num_nodes()
            }
            fn num_edges(&self) -> usize {
                self.0.num_edges()
            }
            fn total_node_weight(&self) -> NodeWeight {
                self.0.total_node_weight()
            }
            fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
                self.0.for_each_node(f)
            }
        }
        let g = sample();
        let mut sizes = Vec::new();
        Wrapper(InMemoryStream::new(&g))
            .for_each_batch(2, &mut |batch| sizes.push(batch.len()))
            .unwrap();
        assert_eq!(sizes, vec![2, 2, 1]);
    }
}
