//! The one-pass streaming model.
//!
//! In the one-pass model (Stanton & Kliot), nodes arrive one at a time
//! together with their adjacency lists and must be assigned to a block
//! immediately and permanently. The only global information a streaming
//! partitioner may rely on are the *counts* `n` and `m` and the total node
//! weight (needed by Fennel to compute its `α` and by every algorithm to
//! compute the balance constraint `L_max`).
//!
//! [`NodeStream`] captures exactly that contract. Two implementations are
//! provided here — [`InMemoryStream`] (streaming from RAM, as in the paper's
//! running-time experiments) and [`ChunkedStream`] (the vertex-centric
//! chunking used by the shared-memory parallelisation) — and a third one,
//! [`crate::io::DiskStream`], streams the binary vertex-stream format from
//! disk.

use crate::{CsrGraph, EdgeWeight, NodeId, NodeOrdering, NodeWeight, Result};

/// A node as it appears on the stream: its id, weight and adjacency list.
#[derive(Clone, Copy, Debug)]
pub struct StreamedNode<'a> {
    /// The node's id in the original graph.
    pub node: NodeId,
    /// The node's weight.
    pub weight: NodeWeight,
    /// Neighbors of the node (ids in the original graph).
    pub neighbors: &'a [NodeId],
    /// Weights of the incident edges, aligned with `neighbors`.
    pub edge_weights: &'a [EdgeWeight],
}

impl<'a> StreamedNode<'a> {
    /// Degree of the streamed node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Iterator over `(neighbor, edge weight)` pairs.
    pub fn neighbors_weighted(&self) -> impl Iterator<Item = (NodeId, EdgeWeight)> + 'a {
        self.neighbors
            .iter()
            .copied()
            .zip(self.edge_weights.iter().copied())
    }
}

/// A single pass over the nodes of a graph.
///
/// Implementors must visit every node exactly once per call to
/// [`NodeStream::for_each_node`]. Re-streaming algorithms simply call it
/// again.
///
/// The trait is dyn-compatible (`for_each_node` takes `&mut dyn FnMut`), so
/// heterogeneous frontends can pass `&mut dyn NodeStream` to the object-safe
/// partitioner API in `oms-core` without monomorphising per stream type. Use
/// [`NodeStream::stream_nodes`] at call sites to keep passing plain closures.
pub trait NodeStream {
    /// Number of nodes `n` of the streamed graph.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `m` of the streamed graph.
    fn num_edges(&self) -> usize;

    /// Total node weight `c(V)` of the streamed graph.
    fn total_node_weight(&self) -> NodeWeight;

    /// Performs one pass, invoking `f` for every node in stream order.
    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()>;

    /// The in-memory graph behind this stream, when there is one.
    ///
    /// Random-access drivers (the shared-memory parallel partitioners, the
    /// multilevel baseline) use this to skip materialisation; disk streams
    /// return `None` and are materialised on demand.
    fn as_graph(&self) -> Option<&CsrGraph> {
        None
    }

    /// Convenience wrapper around [`NodeStream::for_each_node`] accepting a
    /// plain closure (no `&mut` at the call site).
    fn stream_nodes<F>(&mut self, mut f: F) -> Result<()>
    where
        F: FnMut(StreamedNode<'_>),
        Self: Sized,
    {
        self.for_each_node(&mut f)
    }
}

impl<S: NodeStream + ?Sized> NodeStream for &mut S {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn total_node_weight(&self) -> NodeWeight {
        (**self).total_node_weight()
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        (**self).for_each_node(f)
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        (**self).as_graph()
    }
}

/// Streams a [`CsrGraph`] held in memory, optionally permuted.
///
/// This mirrors the paper's experimental setup: "we stream the input directly
/// from the internal memory to obtain clear running time comparisons".
pub struct InMemoryStream<'g> {
    graph: &'g CsrGraph,
    order: Option<Vec<NodeId>>,
}

impl<'g> InMemoryStream<'g> {
    /// Streams `graph` in natural order.
    pub fn new(graph: &'g CsrGraph) -> Self {
        InMemoryStream { graph, order: None }
    }

    /// Streams `graph` in the order produced by `ordering`.
    pub fn with_ordering(graph: &'g CsrGraph, ordering: NodeOrdering) -> Self {
        let order = match ordering {
            NodeOrdering::Natural => None,
            other => Some(other.permutation(graph)),
        };
        InMemoryStream { graph, order }
    }

    /// Streams `graph` in an explicitly given order.
    pub fn with_permutation(graph: &'g CsrGraph, permutation: Vec<NodeId>) -> Self {
        InMemoryStream {
            graph,
            order: Some(permutation),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    fn streamed(&self, v: NodeId) -> StreamedNode<'_> {
        StreamedNode {
            node: v,
            weight: self.graph.node_weight(v),
            neighbors: self.graph.neighbors(v),
            edge_weights: self.graph.incident_edge_weights(v),
        }
    }
}

impl<'g> NodeStream for InMemoryStream<'g> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.graph.total_node_weight()
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        Some(self.graph)
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        match &self.order {
            None => {
                for v in self.graph.nodes() {
                    f(self.streamed(v));
                }
            }
            Some(order) => {
                for &v in order {
                    f(self.streamed(v));
                }
            }
        }
        Ok(())
    }
}

/// Splits the stream of a [`CsrGraph`] into contiguous chunks of nodes for
/// the vertex-centric shared-memory parallelisation (§3.4 of the paper).
///
/// Each chunk can be processed by a different thread; the partitioner is
/// responsible for keeping its block weights consistent (atomics).
pub struct ChunkedStream<'g> {
    graph: &'g CsrGraph,
    order: Vec<NodeId>,
}

impl<'g> ChunkedStream<'g> {
    /// Creates a chunked view over `graph` streamed in `ordering` order.
    pub fn new(graph: &'g CsrGraph, ordering: NodeOrdering) -> Self {
        ChunkedStream {
            graph,
            order: ordering.permutation(graph),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The full stream order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Splits the stream order into at most `num_chunks` contiguous slices of
    /// (nearly) equal length. Fewer chunks are returned when the graph has
    /// fewer nodes than `num_chunks`.
    pub fn chunks(&self, num_chunks: usize) -> Vec<&[NodeId]> {
        let n = self.order.len();
        if n == 0 || num_chunks == 0 {
            return Vec::new();
        }
        let chunk_size = n.div_ceil(num_chunks);
        self.order.chunks(chunk_size).collect()
    }

    /// Materialises the [`StreamedNode`] view of node `v`.
    pub fn streamed(&self, v: NodeId) -> StreamedNode<'_> {
        StreamedNode {
            node: v,
            weight: self.graph.node_weight(v),
            neighbors: self.graph.neighbors(v),
            edge_weights: self.graph.incident_edge_weights(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap()
    }

    #[test]
    fn in_memory_stream_visits_all_nodes_in_order() {
        let g = sample();
        let mut stream = InMemoryStream::new(&g);
        let mut seen = Vec::new();
        stream
            .stream_nodes(|node| {
                seen.push(node.node);
                assert_eq!(node.degree(), g.degree(node.node));
            })
            .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stream_counts_match_graph() {
        let g = sample();
        let stream = InMemoryStream::new(&g);
        assert_eq!(stream.num_nodes(), 5);
        assert_eq!(stream.num_edges(), 6);
        assert_eq!(stream.total_node_weight(), 5);
    }

    #[test]
    fn permuted_stream_respects_permutation() {
        let g = sample();
        let perm = vec![4, 3, 2, 1, 0];
        let mut stream = InMemoryStream::with_permutation(&g, perm.clone());
        let mut seen = Vec::new();
        stream.stream_nodes(|node| seen.push(node.node)).unwrap();
        assert_eq!(seen, perm);
    }

    #[test]
    fn ordered_stream_with_random_order_is_a_permutation() {
        let g = sample();
        let mut stream = InMemoryStream::with_ordering(&g, NodeOrdering::Random(9));
        let mut seen = Vec::new();
        stream.stream_nodes(|node| seen.push(node.node)).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn streamed_node_exposes_weighted_neighbors() {
        let g = sample();
        let mut stream = InMemoryStream::new(&g);
        stream
            .stream_nodes(|node| {
                if node.node == 1 {
                    let pairs: Vec<_> = node.neighbors_weighted().collect();
                    assert_eq!(pairs.len(), 3);
                    assert!(pairs.iter().all(|&(_, w)| w == 1));
                }
            })
            .unwrap();
    }

    #[test]
    fn chunked_stream_covers_all_nodes_exactly_once() {
        let g = sample();
        let chunked = ChunkedStream::new(&g, NodeOrdering::Natural);
        let chunks = chunked.chunks(2);
        assert_eq!(chunks.len(), 2);
        let mut all: Vec<NodeId> = chunks.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chunked_stream_handles_more_chunks_than_nodes() {
        let g = sample();
        let chunked = ChunkedStream::new(&g, NodeOrdering::Natural);
        let chunks = chunked.chunks(100);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn chunked_stream_zero_chunks_is_empty() {
        let g = sample();
        let chunked = ChunkedStream::new(&g, NodeOrdering::Natural);
        assert!(chunked.chunks(0).is_empty());
    }
}
