//! Edge-list accumulator producing [`CsrGraph`]s.
//!
//! The paper preprocesses every benchmark graph by removing parallel edges,
//! self loops and edge directions and assigning unit weights; this builder
//! performs exactly that normalisation (weights of parallel edges are summed
//! when they are explicitly weighted).

use crate::{CsrGraph, EdgeWeight, GraphError, NodeId, NodeWeight, Result};

/// Incremental builder for undirected graphs.
///
/// Edges may be added in any order and in either direction; the builder
/// stores each edge once and materialises both arcs when [`GraphBuilder::build`]
/// is called. Self loops are silently dropped, duplicate edges are merged by
/// summing their weights.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, EdgeWeight)>,
    node_weights: Vec<NodeWeight>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes of unit weight.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
            node_weights: vec![1; n],
        }
    }

    /// Creates a builder with a capacity hint for the number of edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::with_capacity(m),
            node_weights: vec![1; n],
        }
    }

    /// Number of nodes this builder was created for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far (before deduplication).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sets the weight of node `v`.
    pub fn set_node_weight(&mut self, v: NodeId, w: NodeWeight) -> Result<()> {
        self.check_node(v)?;
        self.node_weights[v as usize] = w;
        Ok(())
    }

    /// Adds the undirected edge `{u, v}` with unit weight.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.add_weighted_edge(u, v, 1)
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// Self loops are ignored. Duplicate edges are merged at build time by
    /// summing weights.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: EdgeWeight) -> Result<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(());
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
        Ok(())
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if (v as usize) < self.num_nodes {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes as u64,
            })
        }
    }

    /// Consumes the builder and produces the CSR graph.
    pub fn build(mut self) -> CsrGraph {
        // Deduplicate: sort canonical (u < v) edges and merge weights.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut dedup: Vec<(NodeId, NodeId, EdgeWeight)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            match dedup.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => dedup.push((u, v, w)),
            }
        }

        // Counting sort into CSR.
        let n = self.num_nodes;
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &dedup {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        for d in &degree {
            xadj.push(xadj.last().unwrap() + d);
        }
        let mut cursor = xadj.clone();
        let mut adjncy = vec![0 as NodeId; 2 * dedup.len()];
        let mut eweights = vec![0 as EdgeWeight; 2 * dedup.len()];
        for &(u, v, w) in &dedup {
            let cu = cursor[u as usize];
            adjncy[cu] = v;
            eweights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            adjncy[cv] = u;
            eweights[cv] = w;
            cursor[v as usize] += 1;
        }
        // Keep each adjacency list sorted for deterministic iteration and
        // O(log d) membership queries if ever needed.
        for v in 0..n {
            let range = xadj[v]..xadj[v + 1];
            let mut pairs: Vec<(NodeId, EdgeWeight)> = adjncy[range.clone()]
                .iter()
                .copied()
                .zip(eweights[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(x, _)| x);
            for (i, (x, w)) in pairs.into_iter().enumerate() {
                adjncy[xadj[v] + i] = x;
                eweights[xadj[v] + i] = w;
            }
        }

        CsrGraph::from_csr_unchecked(xadj, adjncy, eweights, self.node_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_square() {
        let mut b = GraphBuilder::new(4);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_weighted_edges_are_merged() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 3).unwrap();
        b.add_weighted_edge(1, 0, 4).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn node_weights_are_preserved() {
        let mut b = GraphBuilder::new(3);
        b.set_node_weight(0, 10).unwrap();
        b.set_node_weight(2, 5).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.node_weight(0), 10);
        assert_eq!(g.node_weight(1), 1);
        assert_eq!(g.node_weight(2), 5);
        assert_eq!(g.total_node_weight(), 16);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new(5);
        for &v in &[4, 2, 3, 1] {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn out_of_range_node_weight_rejected() {
        let mut b = GraphBuilder::new(2);
        assert!(b.set_node_weight(5, 1).is_err());
    }

    #[test]
    fn capacity_constructor_counts_nodes() {
        let b = GraphBuilder::with_capacity(7, 100);
        assert_eq!(b.num_nodes(), 7);
        assert_eq!(b.num_pending_edges(), 0);
    }
}
