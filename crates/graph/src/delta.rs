//! Graph change sets for dynamic-graph maintenance.
//!
//! A long-lived partitioning service does not see a static stream: edges and
//! nodes appear and disappear over time. This module defines the unit of
//! change the dynamic layer ingests — the [`DeltaBatch`], a
//! structure-of-arrays change set mirroring [`NodeBatch`](crate::NodeBatch)
//! — together with a small text *trace* format so churn workloads can be
//! generated once, stored and replayed reproducibly.
//!
//! ## Trace grammar
//!
//! One operation per line; `#` starts a comment, blank lines are ignored:
//!
//! ```text
//! +e u v [w]    insert undirected edge {u, v} with weight w (default 1)
//! -e u v        delete edge {u, v}
//! +n v [w]      insert node v with weight w (default 1)
//! -n v          delete node v (its incident edges go with it)
//! !             checkpoint: ends the current batch
//! ```
//!
//! [`read_delta_trace`] splits a trace at its checkpoints into one
//! [`DeltaBatch`] per section; [`write_delta_trace`] is its inverse.

use crate::{EdgeWeight, GraphError, NodeId, NodeWeight, Result};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The kind of one graph mutation in a [`DeltaBatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Insert an undirected edge `{u, v}` with a weight.
    EdgeInsert,
    /// Delete the edge `{u, v}`.
    EdgeDelete,
    /// Insert a new node `u` with a node weight (`v` unused).
    NodeInsert,
    /// Delete node `u` and all its incident edges (`v` unused).
    NodeDelete,
}

/// One decoded graph mutation, the per-operation view of a [`DeltaBatch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Insert the undirected edge `{u, v}` with weight `w`.
    EdgeInsert {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// Edge weight (≥ 1).
        w: EdgeWeight,
    },
    /// Delete the undirected edge `{u, v}`.
    EdgeDelete {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Insert node `node` with weight `weight`. The node starts isolated;
    /// subsequent edge inserts attach it.
    NodeInsert {
        /// The new node id.
        node: NodeId,
        /// Its node weight (≥ 1).
        weight: NodeWeight,
    },
    /// Delete `node` together with all its incident edges.
    NodeDelete {
        /// The node to remove.
        node: NodeId,
    },
}

/// A batch of graph mutations in structure-of-arrays layout, mirroring
/// [`NodeBatch`](crate::NodeBatch): four parallel arrays (kind, two node
/// operands, weight) that recycle their allocations across batches via
/// [`DeltaBatch::clear`]. One batch is the unit of ingestion — the dynamic
/// layer applies a whole batch, then reports quality at the checkpoint.
#[derive(Clone, Debug, Default)]
pub struct DeltaBatch {
    kinds: Vec<DeltaKind>,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    weights: Vec<u64>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// An empty batch with room for `ops` operations.
    pub fn with_capacity(ops: usize) -> Self {
        DeltaBatch {
            kinds: Vec::with_capacity(ops),
            a: Vec::with_capacity(ops),
            b: Vec::with_capacity(ops),
            weights: Vec::with_capacity(ops),
        }
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Empties the batch, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.a.clear();
        self.b.clear();
        self.weights.clear();
    }

    /// Appends one operation.
    pub fn push(&mut self, delta: Delta) {
        let (kind, a, b, w) = match delta {
            Delta::EdgeInsert { u, v, w } => (DeltaKind::EdgeInsert, u, v, w),
            Delta::EdgeDelete { u, v } => (DeltaKind::EdgeDelete, u, v, 0),
            Delta::NodeInsert { node, weight } => (DeltaKind::NodeInsert, node, 0, weight),
            Delta::NodeDelete { node } => (DeltaKind::NodeDelete, node, 0, 0),
        };
        self.kinds.push(kind);
        self.a.push(a);
        self.b.push(b);
        self.weights.push(w);
    }

    /// Appends an edge insert.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, w: EdgeWeight) {
        self.push(Delta::EdgeInsert { u, v, w });
    }

    /// Appends an edge delete.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) {
        self.push(Delta::EdgeDelete { u, v });
    }

    /// Appends a node insert.
    pub fn insert_node(&mut self, node: NodeId, weight: NodeWeight) {
        self.push(Delta::NodeInsert { node, weight });
    }

    /// Appends a node delete.
    pub fn delete_node(&mut self, node: NodeId) {
        self.push(Delta::NodeDelete { node });
    }

    /// The `i`-th operation.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> Delta {
        match self.kinds[i] {
            DeltaKind::EdgeInsert => Delta::EdgeInsert {
                u: self.a[i],
                v: self.b[i],
                w: self.weights[i],
            },
            DeltaKind::EdgeDelete => Delta::EdgeDelete {
                u: self.a[i],
                v: self.b[i],
            },
            DeltaKind::NodeInsert => Delta::NodeInsert {
                node: self.a[i],
                weight: self.weights[i],
            },
            DeltaKind::NodeDelete => Delta::NodeDelete { node: self.a[i] },
        }
    }

    /// Iterates over the operations in order.
    pub fn iter(&self) -> impl Iterator<Item = Delta> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Delta::EdgeInsert { u, v, w: 1 } => write!(f, "+e {u} {v}"),
            Delta::EdgeInsert { u, v, w } => write!(f, "+e {u} {v} {w}"),
            Delta::EdgeDelete { u, v } => write!(f, "-e {u} {v}"),
            Delta::NodeInsert { node, weight: 1 } => write!(f, "+n {node}"),
            Delta::NodeInsert { node, weight } => write!(f, "+n {node} {weight}"),
            Delta::NodeDelete { node } => write!(f, "-n {node}"),
        }
    }
}

fn trace_err(line: u64, msg: impl Into<String>) -> GraphError {
    GraphError::Parse(format!("delta trace line {line}: {}", msg.into()))
}

fn parse_id(tok: &str, line: u64, what: &str) -> Result<NodeId> {
    tok.parse::<NodeId>()
        .map_err(|_| trace_err(line, format!("invalid {what} '{tok}'")))
}

fn parse_weight(tok: Option<&str>, line: u64) -> Result<u64> {
    let Some(tok) = tok else { return Ok(1) };
    let w = tok
        .parse::<u64>()
        .map_err(|_| trace_err(line, format!("invalid weight '{tok}'")))?;
    if w == 0 {
        return Err(trace_err(line, "weights must be >= 1"));
    }
    Ok(w)
}

/// Parses one trace line into an operation; `Ok(None)` marks a checkpoint
/// (`!`). Comments and blank lines must be filtered before calling.
fn parse_line(text: &str, line: u64) -> Result<Option<Delta>> {
    let mut tok = text.split_ascii_whitespace();
    let op = tok.next().expect("caller filters blank lines");
    if op == "!" {
        return match tok.next() {
            None => Ok(None),
            Some(extra) => Err(trace_err(line, format!("unexpected '{extra}' after '!'"))),
        };
    }
    let delta = match op {
        "+e" | "-e" => {
            let u = parse_id(
                tok.next().ok_or_else(|| trace_err(line, "missing u"))?,
                line,
                "node id",
            )?;
            let v = parse_id(
                tok.next().ok_or_else(|| trace_err(line, "missing v"))?,
                line,
                "node id",
            )?;
            if u == v {
                return Err(trace_err(line, "self loops are not allowed"));
            }
            if op == "+e" {
                Delta::EdgeInsert {
                    u,
                    v,
                    w: parse_weight(tok.next(), line)?,
                }
            } else {
                Delta::EdgeDelete { u, v }
            }
        }
        "+n" => {
            let node = parse_id(
                tok.next()
                    .ok_or_else(|| trace_err(line, "missing node id"))?,
                line,
                "node id",
            )?;
            Delta::NodeInsert {
                node,
                weight: parse_weight(tok.next(), line)?,
            }
        }
        "-n" => Delta::NodeDelete {
            node: parse_id(
                tok.next()
                    .ok_or_else(|| trace_err(line, "missing node id"))?,
                line,
                "node id",
            )?,
        },
        other => {
            return Err(trace_err(
                line,
                format!("unknown operation '{other}' (expected +e, -e, +n, -n or !)"),
            ))
        }
    };
    match (tok.next(), delta) {
        (Some(extra), _) => Err(trace_err(line, format!("trailing input '{extra}'"))),
        (None, delta) => Ok(Some(delta)),
    }
}

/// Parses a delta trace from text, splitting it at `!` checkpoints into one
/// [`DeltaBatch`] per section. A final section without a trailing `!` forms
/// a last batch; empty sections are dropped.
pub fn parse_delta_trace(text: &str) -> Result<Vec<DeltaBatch>> {
    let mut batches = Vec::new();
    let mut current = DeltaBatch::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line, i as u64 + 1)? {
            Some(delta) => current.push(delta),
            None => {
                if !current.is_empty() {
                    batches.push(std::mem::take(&mut current));
                }
            }
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

/// Reads a delta trace file (see the [module docs](self) for the grammar).
pub fn read_delta_trace(path: impl AsRef<Path>) -> Result<Vec<DeltaBatch>> {
    let mut text = String::new();
    BufReader::new(File::open(path)?).read_to_string(&mut text)?;
    parse_delta_trace(&text)
}

/// Serializes batches into the trace text format; every batch ends with a
/// `!` checkpoint line.
pub fn format_delta_trace(batches: &[DeltaBatch]) -> String {
    let mut out = String::new();
    for batch in batches {
        for delta in batch.iter() {
            out.push_str(&delta.to_string());
            out.push('\n');
        }
        out.push_str("!\n");
    }
    out
}

/// Writes batches as a delta trace file, one `!` checkpoint per batch.
pub fn write_delta_trace(path: impl AsRef<Path>, batches: &[DeltaBatch]) -> Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(format_delta_trace(batches).as_bytes())?;
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_push_get_round_trip() {
        let mut batch = DeltaBatch::with_capacity(4);
        batch.insert_edge(1, 2, 5);
        batch.delete_edge(3, 4);
        batch.insert_node(9, 2);
        batch.delete_node(7);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.get(0), Delta::EdgeInsert { u: 1, v: 2, w: 5 });
        assert_eq!(batch.get(1), Delta::EdgeDelete { u: 3, v: 4 });
        assert_eq!(batch.get(2), Delta::NodeInsert { node: 9, weight: 2 });
        assert_eq!(batch.get(3), Delta::NodeDelete { node: 7 });
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn trace_text_round_trips() {
        let text = "\
# a comment
+e 0 1
+e 1 2 7
!
-e 0 1   # inline comment
+n 10 3
!
-n 2
";
        let batches = parse_delta_trace(text).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[0].get(1), Delta::EdgeInsert { u: 1, v: 2, w: 7 });
        assert_eq!(
            batches[1].get(1),
            Delta::NodeInsert {
                node: 10,
                weight: 3
            }
        );
        assert_eq!(batches[2].get(0), Delta::NodeDelete { node: 2 });

        let formatted = format_delta_trace(&batches);
        let reparsed = parse_delta_trace(&formatted).unwrap();
        assert_eq!(reparsed.len(), batches.len());
        for (a, b) in reparsed.iter().zip(&batches) {
            assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_sections_are_dropped() {
        let batches = parse_delta_trace("!\n!\n+e 0 1\n!\n!\n").unwrap();
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad in [
            "xx 1 2",
            "+e 1",
            "+e 1 1",
            "+e 1 2 0",
            "+e 1 2 3 4",
            "-n",
            "+n -3",
            "! extra",
        ] {
            let err = parse_delta_trace(bad).unwrap_err();
            assert!(matches!(err, GraphError::Parse(_)), "{bad:?} gave {err:?}");
            assert!(err.to_string().contains("line 1"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("oms-graph-test-delta");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.deltas");
        let mut batch = DeltaBatch::new();
        batch.insert_edge(0, 1, 1);
        batch.delete_node(5);
        write_delta_trace(&path, std::slice::from_ref(&batch)).unwrap();
        let read = read_delta_trace(&path).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(
            read[0].iter().collect::<Vec<_>>(),
            batch.iter().collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).ok();
    }
}
