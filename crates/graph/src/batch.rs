//! Reusable batch buffers for the batched streaming pipeline.
//!
//! A [`NodeBatch`] holds a contiguous run of streamed nodes in
//! structure-of-arrays form: node ids, node weights and a CSR-style adjacency
//! (offsets into shared neighbor / edge-weight arrays). Batches are the unit
//! of work of the batch executor in `oms-core`: stream sources fill them
//! (possibly on a dedicated reader thread), partitioners consume them node by
//! node or as a whole (the buffered algorithms build model graphs out of
//! them).
//!
//! The buffer is designed to be *recycled*: [`NodeBatch::clear`] resets the
//! logical content but keeps every allocation, so a steady-state pipeline
//! performs no allocation per batch.

use crate::stream::StreamedNode;
use crate::{EdgeWeight, NodeId, NodeWeight};

/// A batch of streamed nodes in structure-of-arrays layout.
#[derive(Clone, Debug, Default)]
pub struct NodeBatch {
    ids: Vec<NodeId>,
    weights: Vec<NodeWeight>,
    /// CSR-style offsets into `neighbors` / `edge_weights`; `offsets[i]..offsets[i+1]`
    /// is the adjacency of the batch's `i`-th node. Always `len() + 1` long.
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    edge_weights: Vec<EdgeWeight>,
}

impl NodeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        NodeBatch {
            ids: Vec::new(),
            weights: Vec::new(),
            offsets: vec![0],
            neighbors: Vec::new(),
            edge_weights: Vec::new(),
        }
    }

    /// An empty batch with room for `nodes` nodes and `edge_entries`
    /// adjacency entries.
    pub fn with_capacity(nodes: usize, edge_entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        NodeBatch {
            ids: Vec::with_capacity(nodes),
            weights: Vec::with_capacity(nodes),
            offsets,
            neighbors: Vec::with_capacity(edge_entries),
            edge_weights: Vec::with_capacity(edge_entries),
        }
    }

    /// Number of nodes currently in the batch.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the batch holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of adjacency entries in the batch (the batch's edge
    /// mass; each undirected edge with both endpoints in the batch counts
    /// twice).
    pub fn total_edge_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Removes all nodes but keeps the allocations for reuse.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.weights.clear();
        self.offsets.truncate(1);
        self.neighbors.clear();
        self.edge_weights.clear();
    }

    /// Appends a streamed node (copying its adjacency into the batch).
    pub fn push(&mut self, node: StreamedNode<'_>) {
        self.push_parts(node.node, node.weight, node.neighbors, node.edge_weights);
    }

    /// Appends a node given as raw parts. `neighbors` and `edge_weights`
    /// must be aligned.
    pub fn push_parts(
        &mut self,
        id: NodeId,
        weight: NodeWeight,
        neighbors: &[NodeId],
        edge_weights: &[EdgeWeight],
    ) {
        debug_assert_eq!(neighbors.len(), edge_weights.len());
        self.ids.push(id);
        self.weights.push(weight);
        self.neighbors.extend_from_slice(neighbors);
        self.edge_weights.extend_from_slice(edge_weights);
        self.offsets.push(self.neighbors.len());
    }

    /// Appends a node whose incident edges all have unit weight.
    pub fn push_unit_weight_edges(&mut self, id: NodeId, weight: NodeWeight, neighbors: &[NodeId]) {
        self.ids.push(id);
        self.weights.push(weight);
        self.neighbors.extend_from_slice(neighbors);
        self.edge_weights.resize(self.neighbors.len(), 1);
        self.offsets.push(self.neighbors.len());
    }

    /// Bulk-appends `count` nodes with consecutive ids starting at
    /// `first_id`. Only the id column is filled; the caller must follow up
    /// with matching weight / offset / adjacency appends (the sectioned
    /// stream-format v3 decode path fills each column in one pass).
    pub(crate) fn extend_ids_sequential(&mut self, first_id: NodeId, count: usize) {
        self.ids.extend((0..count).map(|i| first_id + i as NodeId));
    }

    /// Appends `count` unit node weights.
    pub(crate) fn extend_unit_weights(&mut self, count: usize) {
        let new_len = self.weights.len() + count;
        self.weights.resize(new_len, 1);
    }

    /// Extends the CSR offsets column from per-node degrees, continuing from
    /// the current end of the adjacency arrays.
    pub(crate) fn extend_offsets_from_degrees(&mut self, degrees: &[u32]) {
        let mut end = *self.offsets.last().expect("offsets always non-empty");
        self.offsets.reserve(degrees.len());
        for &d in degrees {
            end += d as usize;
            self.offsets.push(end);
        }
    }

    /// Pads the edge-weight column with unit weights up to the neighbor
    /// column's length (sectioned decode of an unweighted-edge file).
    pub(crate) fn unit_fill_edge_weights(&mut self) {
        let n = self.neighbors.len();
        self.edge_weights.resize(n, 1);
    }

    /// Direct append access to the node-weight column (bulk decode).
    pub(crate) fn weights_vec_mut(&mut self) -> &mut Vec<NodeWeight> {
        &mut self.weights
    }

    /// Direct append access to the neighbor column (bulk decode).
    pub(crate) fn neighbors_vec_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.neighbors
    }

    /// Direct append access to the edge-weight column (bulk decode).
    pub(crate) fn edge_weights_vec_mut(&mut self) -> &mut Vec<EdgeWeight> {
        &mut self.edge_weights
    }

    /// Cheap structural invariant check for the bulk-append paths: every
    /// column consistent with the offsets table.
    pub(crate) fn debug_validate(&self) {
        debug_assert_eq!(self.offsets.len(), self.ids.len() + 1);
        debug_assert_eq!(self.weights.len(), self.ids.len());
        debug_assert_eq!(*self.offsets.last().unwrap(), self.neighbors.len());
        debug_assert_eq!(self.edge_weights.len(), self.neighbors.len());
    }

    /// The `i`-th node of the batch as a [`StreamedNode`] view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> StreamedNode<'_> {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        StreamedNode {
            node: self.ids[i],
            weight: self.weights[i],
            neighbors: &self.neighbors[lo..hi],
            edge_weights: &self.edge_weights[lo..hi],
        }
    }

    /// Iterates over the batch's nodes in stream order.
    pub fn iter(&self) -> impl Iterator<Item = StreamedNode<'_>> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The ids of the batch's nodes in stream order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut batch = NodeBatch::new();
        batch.push_parts(7, 2, &[1, 2, 3], &[10, 20, 30]);
        batch.push_parts(8, 1, &[], &[]);
        batch.push_unit_weight_edges(9, 5, &[4]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.total_edge_entries(), 4);

        let first = batch.get(0);
        assert_eq!(first.node, 7);
        assert_eq!(first.weight, 2);
        assert_eq!(first.neighbors, &[1, 2, 3]);
        assert_eq!(first.edge_weights, &[10, 20, 30]);

        let second = batch.get(1);
        assert_eq!(second.degree(), 0);

        let third = batch.get(2);
        assert_eq!(third.neighbors, &[4]);
        assert_eq!(third.edge_weights, &[1]);

        let ids: Vec<NodeId> = batch.iter().map(|n| n.node).collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut batch = NodeBatch::with_capacity(4, 16);
        batch.push_parts(0, 1, &[1, 2], &[1, 1]);
        let neighbors_cap = 16;
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.total_edge_entries(), 0);
        assert!(batch.ids.capacity() >= 4);
        assert!(batch.neighbors.capacity() >= neighbors_cap);
        // Reusable after clearing.
        batch.push_parts(3, 1, &[0], &[9]);
        assert_eq!(batch.get(0).edge_weights, &[9]);
    }
}
