//! # oms-graph
//!
//! Graph substrate for the OMS (Online Multi-Section) streaming partitioning
//! framework.
//!
//! This crate provides everything the streaming partitioners need to know
//! about graphs, while keeping the partitioning logic itself out:
//!
//! * [`CsrGraph`] — a compact, immutable, undirected graph in compressed
//!   sparse row form with node and edge weights.
//! * [`GraphBuilder`] — an edge-list accumulator that deduplicates parallel
//!   edges, drops self loops and produces a [`CsrGraph`].
//! * [`NodeStream`] and its implementations — the *one-pass streaming model*
//!   used throughout the paper: nodes arrive one at a time together with
//!   their adjacency lists and must be assigned to blocks immediately.
//! * Graph I/O — the METIS text format, plain edge lists and a compact
//!   binary *vertex-stream* format that can be streamed from disk.
//! * [`NodeOrdering`] — stream orders (natural, random, BFS, DFS, degree)
//!   used in streaming-order experiments.
//!
//! The crate is deliberately independent of any partitioning concept so that
//! generators, partitioners, mappers and metrics can all share it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod io;
pub mod ordering;
pub mod stream;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use ordering::NodeOrdering;
pub use stream::{ChunkedStream, InMemoryStream, NodeStream, StreamedNode};

/// Identifier of a node. Graphs in this project are laptop-scale (tens of
/// millions of nodes at most), so 32 bits are sufficient and halve the memory
/// traffic of the adjacency array compared to `usize`.
pub type NodeId = u32;

/// Weight of a node. The paper uses unit node weights, but the whole pipeline
/// is written for weighted nodes so that coarsened graphs (multilevel
/// baseline) can reuse it.
pub type NodeWeight = u64;

/// Weight of an edge.
pub type EdgeWeight = u64;

/// Errors produced when constructing or reading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// Number of nodes in the graph.
        num_nodes: u64,
    },
    /// The input file or stream was malformed.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A structural invariant of the CSR representation was violated.
    Invalid(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
