//! # oms-graph
//!
//! Graph substrate for the OMS (Online Multi-Section) streaming partitioning
//! framework.
//!
//! This crate provides everything the streaming partitioners need to know
//! about graphs, while keeping the partitioning logic itself out:
//!
//! * [`CsrGraph`] — a compact, immutable, undirected graph in compressed
//!   sparse row form with node and edge weights.
//! * [`GraphBuilder`] — an edge-list accumulator that deduplicates parallel
//!   edges, drops self loops and produces a [`CsrGraph`].
//! * [`NodeStream`] and its implementations — the *one-pass streaming model*
//!   used throughout the paper: nodes arrive one at a time together with
//!   their adjacency lists and must be assigned to blocks immediately.
//! * [`NodeBatch`] and [`NodeStream::for_each_batch`] — the batched face of
//!   the same contract: sources fill reusable structure-of-arrays batches
//!   (and [`io::DiskStream`] decodes the next batch on a reader thread while
//!   the current one is consumed), which the batch executor in `oms-core`
//!   drives.
//! * [`EdgeStream`] and the [`EdgesOf`] adapter — the streaming
//!   *edge*-partitioning (vertex-cut) face of the same sources: every
//!   [`NodeStream`] becomes a batched `(u, v, w)` edge stream with
//!   multi-pass `reset()`, no separate on-disk format required.
//! * Graph I/O — the METIS text format, plain edge lists and a compact
//!   binary *vertex-stream* format that can be streamed from disk.
//! * [`NodeOrdering`] — stream orders (natural, random, BFS, DFS, degree)
//!   used in streaming-order experiments.
//!
//! The crate is deliberately independent of any partitioning concept so that
//! generators, partitioners, mappers and metrics can all share it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod edge_stream;
pub mod io;
pub mod ordering;
pub mod stream;
pub mod traversal;

pub use batch::NodeBatch;
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use delta::{
    format_delta_trace, parse_delta_trace, read_delta_trace, write_delta_trace, Delta, DeltaBatch,
    DeltaKind,
};
pub use edge_stream::{EdgeBatch, EdgeStream, EdgesOf, StreamedEdge, DEFAULT_EDGE_BATCH_SIZE};
pub use ordering::NodeOrdering;
pub use stream::{
    ChunkedStream, InMemoryStream, NodeStream, PerNodeBatches, StreamedNode, DEFAULT_BATCH_SIZE,
};

/// Identifier of a node. Graphs in this project are laptop-scale (tens of
/// millions of nodes at most), so 32 bits are sufficient and halve the memory
/// traffic of the adjacency array compared to `usize`.
pub type NodeId = u32;

/// Weight of a node. The paper uses unit node weights, but the whole pipeline
/// is written for weighted nodes so that coarsened graphs (multilevel
/// baseline) can reuse it.
pub type NodeWeight = u64;

/// Weight of an edge.
pub type EdgeWeight = u64;

/// Errors produced when constructing or reading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// Number of nodes in the graph.
        num_nodes: u64,
    },
    /// The input file or stream was malformed.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A structural invariant of the CSR representation was violated.
    Invalid(String),
    /// A vertex-stream file ended before all nodes announced by its header
    /// were read.
    Truncated {
        /// Number of nodes the header announced.
        expected_nodes: u64,
        /// Number of complete node records actually read.
        read_nodes: u64,
    },
    /// The body of a vertex-stream file contradicts its header counts.
    CountMismatch {
        /// Which count disagreed (e.g. `"edge entries"`).
        what: &'static str,
        /// Value implied by the header.
        expected: u64,
        /// Value actually found in the body.
        found: u64,
    },
    /// A node or edge weight outside the valid range of the format being
    /// read or written (zero, or larger than the format can represent).
    WeightOutOfRange {
        /// `"node"` or `"edge"`.
        what: &'static str,
        /// Node the weight belongs to (for edge weights, the node whose
        /// adjacency list carried the weight).
        node: u64,
        /// The offending weight value.
        value: u64,
        /// Largest weight the format can represent.
        max: u64,
    },
    /// A METIS text file was malformed; `line` is the 1-based line number
    /// of the offending input line (0 when the file ended prematurely).
    MetisParse {
        /// 1-based line number of the offending line.
        line: u64,
        /// What was wrong.
        msg: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
            GraphError::Truncated {
                expected_nodes,
                read_nodes,
            } => write!(
                f,
                "truncated vertex stream: header announces {expected_nodes} nodes but the file ends after {read_nodes}"
            ),
            GraphError::CountMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "vertex stream count mismatch: header implies {expected} {what} but the body holds {found}"
            ),
            GraphError::WeightOutOfRange {
                what,
                node,
                value,
                max,
            } => write!(
                f,
                "invalid {what} weight {value} at node {node}: weights must be between 1 and {max}"
            ),
            GraphError::MetisParse { line, msg } => {
                if *line == 0 {
                    write!(f, "METIS parse error: {msg}")
                } else {
                    write!(f, "METIS parse error at line {line}: {msg}")
                }
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
