//! The streaming *edge*-partitioning model.
//!
//! Vertex-cut partitioners assign **edges** (not nodes) to blocks, so they
//! consume the graph as a stream of `(u, v, w)` triples. [`EdgeStream`]
//! captures that contract in the same spirit as [`crate::NodeStream`]: one
//! full pass per call, a [`EdgeStream::reset`] rewind for multi-pass
//! (re-streaming) drivers, and only the global counts `n` and `m` as up-front
//! knowledge.
//!
//! No new on-disk format is required: [`EdgesOf`] adapts *any*
//! [`crate::NodeStream`] — in-memory, chunked, or the binary vertex-stream
//! files on disk (v1 and v2, unit and weighted) — into an edge stream by
//! emitting each undirected edge exactly once, at the moment its smaller
//! endpoint is streamed. Because every node-stream source delivers the same
//! node order, the induced *edge order* is identical across sources too,
//! which is what makes byte-identical edge assignments across
//! memory/chunked/disk possible.

use crate::batch::NodeBatch;
use crate::stream::NodeStream;
use crate::{CsrGraph, EdgeWeight, NodeId, Result};

/// Default number of edges per batch when a caller does not specify one.
pub const DEFAULT_EDGE_BATCH_SIZE: usize = 8192;

/// An edge as it appears on the stream: both endpoints and the weight.
///
/// The adapter emits `u < v` (self loops cannot occur; the graph builder
/// drops them), and each undirected edge appears exactly once per pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamedEdge {
    /// The smaller endpoint.
    pub u: NodeId,
    /// The larger endpoint.
    pub v: NodeId,
    /// Weight of the edge.
    pub weight: EdgeWeight,
}

/// A reusable structure-of-arrays batch of streamed edges.
#[derive(Clone, Debug, Default)]
pub struct EdgeBatch {
    us: Vec<NodeId>,
    vs: Vec<NodeId>,
    weights: Vec<EdgeWeight>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EdgeBatch::default()
    }

    /// An empty batch with room for `capacity` edges.
    pub fn with_capacity(capacity: usize) -> Self {
        EdgeBatch {
            us: Vec::with_capacity(capacity),
            vs: Vec::with_capacity(capacity),
            weights: Vec::with_capacity(capacity),
        }
    }

    /// Number of edges currently in the batch.
    pub fn len(&self) -> usize {
        self.us.len()
    }

    /// Whether the batch holds no edges.
    pub fn is_empty(&self) -> bool {
        self.us.is_empty()
    }

    /// Appends one edge.
    pub fn push(&mut self, edge: StreamedEdge) {
        self.us.push(edge.u);
        self.vs.push(edge.v);
        self.weights.push(edge.weight);
    }

    /// Removes all edges, keeping the allocations.
    pub fn clear(&mut self) {
        self.us.clear();
        self.vs.clear();
        self.weights.clear();
    }

    /// The `i`-th edge of the batch.
    pub fn get(&self, i: usize) -> StreamedEdge {
        StreamedEdge {
            u: self.us[i],
            v: self.vs[i],
            weight: self.weights[i],
        }
    }

    /// Iterator over the edges of the batch.
    pub fn iter(&self) -> impl Iterator<Item = StreamedEdge> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// A single pass over the undirected edges of a graph.
///
/// Implementors must visit every edge exactly once per call to
/// [`EdgeStream::for_each_edge`], in an order that is stable across passes
/// (multi-pass drivers address edges by their stream position). The trait is
/// dyn-compatible, mirroring [`crate::NodeStream`].
pub trait EdgeStream {
    /// Number of nodes `n` of the streamed graph.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `m` of the streamed graph.
    fn num_edges(&self) -> usize;

    /// Rewinds the stream so the next [`EdgeStream::for_each_edge`] call
    /// delivers a full pass starting from the first edge. Sources with
    /// external state re-open and re-validate it (see
    /// [`crate::NodeStream::reset`]).
    fn reset(&mut self) -> Result<()> {
        Ok(())
    }

    /// Performs one pass, invoking `f` for every edge in stream order.
    fn for_each_edge(&mut self, f: &mut dyn FnMut(StreamedEdge)) -> Result<()>;

    /// Performs one pass delivering the stream in [`EdgeBatch`]es of up to
    /// `batch_size` edges (concatenating all batches yields exactly one
    /// full pass).
    fn for_each_edge_batch(
        &mut self,
        batch_size: usize,
        f: &mut dyn FnMut(&EdgeBatch),
    ) -> Result<()> {
        let batch_size = batch_size.max(1);
        let mut batch = EdgeBatch::with_capacity(batch_size);
        self.for_each_edge(&mut |edge| {
            batch.push(edge);
            if batch.len() >= batch_size {
                f(&batch);
                batch.clear();
            }
        })?;
        if !batch.is_empty() {
            f(&batch);
        }
        Ok(())
    }

    /// The in-memory graph behind this stream, when there is one.
    fn as_graph(&self) -> Option<&CsrGraph> {
        None
    }
}

impl<E: EdgeStream + ?Sized> EdgeStream for &mut E {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn reset(&mut self) -> Result<()> {
        (**self).reset()
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(StreamedEdge)) -> Result<()> {
        (**self).for_each_edge(f)
    }

    fn for_each_edge_batch(
        &mut self,
        batch_size: usize,
        f: &mut dyn FnMut(&EdgeBatch),
    ) -> Result<()> {
        (**self).for_each_edge_batch(batch_size, f)
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        (**self).as_graph()
    }
}

/// Adapts any [`NodeStream`] into an [`EdgeStream`].
///
/// A node stream delivers every undirected edge twice (once from each
/// endpoint's adjacency list); the adapter emits it exactly once, at the
/// moment the **smaller** endpoint is streamed. The resulting edge order is
/// therefore a pure function of the node order — identical across every
/// source that streams the same node sequence — and rewinding the adapter
/// rewinds the wrapped source, so multi-pass edge partitioners inherit the
/// disk streams' re-open-and-revalidate discipline for free.
pub struct EdgesOf<S>(pub S);

impl<S: NodeStream> EdgesOf<S> {
    /// The wrapped node stream.
    pub fn into_inner(self) -> S {
        self.0
    }
}

impl<S: NodeStream> EdgeStream for EdgesOf<S> {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.0.num_edges()
    }

    fn reset(&mut self) -> Result<()> {
        self.0.reset()
    }

    fn for_each_edge(&mut self, f: &mut dyn FnMut(StreamedEdge)) -> Result<()> {
        // Drive the batch-level reader rather than the per-node adapter, so
        // disk sources decode whole batches (sectioned bulk copy on v3,
        // double-buffered ingest on all versions) before edges are emitted.
        self.0
            .for_each_batch(crate::DEFAULT_BATCH_SIZE, &mut |nodes: &NodeBatch| {
                for node in nodes.iter() {
                    let u = node.node;
                    for (v, w) in node.neighbors_weighted() {
                        if u < v {
                            f(StreamedEdge { u, v, weight: w });
                        }
                    }
                }
            })
    }

    fn for_each_edge_batch(
        &mut self,
        batch_size: usize,
        f: &mut dyn FnMut(&EdgeBatch),
    ) -> Result<()> {
        // Fill batches straight from the node batches, skipping the
        // per-edge closure round trip of the default implementation.
        let batch_size = batch_size.max(1);
        let mut batch = EdgeBatch::with_capacity(batch_size);
        self.0
            .for_each_batch(crate::DEFAULT_BATCH_SIZE, &mut |nodes: &NodeBatch| {
                for node in nodes.iter() {
                    let u = node.node;
                    for (v, w) in node.neighbors_weighted() {
                        if u < v {
                            batch.push(StreamedEdge { u, v, weight: w });
                            if batch.len() >= batch_size {
                                f(&batch);
                                batch.clear();
                            }
                        }
                    }
                }
            })?;
        if !batch.is_empty() {
            f(&batch);
        }
        Ok(())
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        self.0.as_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryStream, NodeOrdering};

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]).unwrap()
    }

    fn collect_edges(stream: &mut dyn EdgeStream) -> Vec<(NodeId, NodeId, EdgeWeight)> {
        let mut edges = Vec::new();
        stream
            .for_each_edge(&mut |e| edges.push((e.u, e.v, e.weight)))
            .unwrap();
        edges
    }

    #[test]
    fn adapter_emits_every_edge_exactly_once() {
        let g = sample();
        let mut stream = EdgesOf(InMemoryStream::new(&g));
        let edges = collect_edges(&mut stream);
        assert_eq!(edges.len(), g.num_edges());
        let from_graph: Vec<_> = g.edges().collect();
        assert_eq!(edges, from_graph, "natural order matches CsrGraph::edges");
    }

    #[test]
    fn adapter_counts_match_graph() {
        let g = sample();
        let stream = EdgesOf(InMemoryStream::new(&g));
        assert_eq!(stream.num_nodes(), 5);
        assert_eq!(stream.num_edges(), 6);
        assert!(stream.as_graph().is_some());
    }

    #[test]
    fn permuted_node_order_still_covers_every_edge_once() {
        let g = sample();
        let mut stream = EdgesOf(InMemoryStream::with_ordering(&g, NodeOrdering::Random(3)));
        let mut edges = collect_edges(&mut stream);
        edges.sort_unstable();
        let mut expected: Vec<_> = g.edges().collect();
        expected.sort_unstable();
        assert_eq!(edges, expected);
    }

    #[test]
    fn reset_allows_a_second_identical_pass() {
        let g = sample();
        let mut stream = EdgesOf(InMemoryStream::new(&g));
        let first = collect_edges(&mut stream);
        stream.reset().unwrap();
        let second = collect_edges(&mut stream);
        assert_eq!(first, second);
    }

    #[test]
    fn edge_batches_match_per_edge_pass() {
        let g = sample();
        for batch_size in [1, 2, 3, 100] {
            let mut stream = EdgesOf(InMemoryStream::new(&g));
            let per_edge = collect_edges(&mut stream);
            stream.reset().unwrap();
            let mut batched = Vec::new();
            let mut sizes = Vec::new();
            stream
                .for_each_edge_batch(batch_size, &mut |batch| {
                    sizes.push(batch.len());
                    batched.extend(batch.iter().map(|e| (e.u, e.v, e.weight)));
                })
                .unwrap();
            assert_eq!(per_edge, batched, "batch size {batch_size}");
            assert!(sizes.iter().all(|&s| s <= batch_size));
        }
    }

    #[test]
    fn default_batch_impl_flushes_partial_tail() {
        // A thin wrapper without a batch override exercises the default.
        struct Wrapper<'g>(EdgesOf<InMemoryStream<'g>>);
        impl EdgeStream for Wrapper<'_> {
            fn num_nodes(&self) -> usize {
                self.0.num_nodes()
            }
            fn num_edges(&self) -> usize {
                self.0.num_edges()
            }
            fn for_each_edge(&mut self, f: &mut dyn FnMut(StreamedEdge)) -> Result<()> {
                self.0.for_each_edge(f)
            }
        }
        let g = sample();
        let mut sizes = Vec::new();
        Wrapper(EdgesOf(InMemoryStream::new(&g)))
            .for_each_edge_batch(4, &mut |batch| sizes.push(batch.len()))
            .unwrap();
        assert_eq!(sizes, vec![4, 2]);
    }

    #[test]
    fn weighted_edges_carry_their_weights() {
        let mut b = crate::GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 7).unwrap();
        b.add_weighted_edge(1, 2, 9).unwrap();
        let g = b.build();
        let mut stream = EdgesOf(InMemoryStream::new(&g));
        let edges = collect_edges(&mut stream);
        assert_eq!(edges, vec![(0, 1, 7), (1, 2, 9)]);
    }
}
