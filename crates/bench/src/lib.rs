//! # oms-bench
//!
//! The benchmark harness that regenerates every table and figure of the OMS
//! paper's evaluation (§4). Each binary corresponds to one experiment:
//!
//! | binary          | paper artefact                                      |
//! |-----------------|------------------------------------------------------|
//! | `corpus_table`  | Table 1 (benchmark instances)                         |
//! | `tuning`        | §4 parameter-tuning results                           |
//! | `fig2_quality`  | Fig. 2a/2b (quality) and Fig. 2d/2e (profiles)         |
//! | `fig2_runtime`  | Fig. 2c (speedup over Fennel) and Fig. 2f (profile)    |
//! | `scalability`   | Table 2 and Fig. 3 (threads sweep)                     |
//! | `memory`        | §4.1 memory-requirements paragraph                     |
//! | `edgepart`      | vertex-cut replication factor (beyond the paper)       |
//!
//! All binaries accept `--scale <f>` (instance size multiplier, default
//! 0.05), `--reps <n>` (repetitions, default 2), `--out <dir>` (CSV output
//! directory, default `target/experiments`) and `--quick`. The absolute
//! numbers depend on the host machine and on the synthetic corpus, but the
//! *relationships* the paper reports (who wins, by roughly which factor, how
//! results change with `k` and the thread count) are reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod runners;

pub use args::BenchArgs;
pub use runners::{
    mapping_suite, partitioning_suite, quality_corpus, run_job, scalability_corpus, AlgoResult,
};
