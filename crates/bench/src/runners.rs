//! Shared experiment drivers: corpus selection and algorithm suites.

use oms_core::{
    Fennel, Hashing, OmsConfig, OnePassConfig, OnlineMultiSection, Partition,
    StreamingPartitioner,
};
use oms_gen::{scaled_corpus, CorpusClass};
use oms_graph::CsrGraph;
use oms_mapping::{mapping_cost, Topology};
use oms_metrics::{edge_cut, measure_repeated};
use oms_multilevel::{MultilevelConfig, MultilevelPartitioner, RecursiveMultisection};

/// The outcome of running one algorithm on one instance.
#[derive(Clone, Debug)]
pub struct AlgoResult {
    /// Algorithm name (`hashing`, `fennel`, `oms`, `nh-oms`, `multilevel`,
    /// `rms` — the latter being the IntMap-like offline recursive
    /// multi-section).
    pub algorithm: String,
    /// Instance name.
    pub instance: String,
    /// Number of blocks / PEs.
    pub k: u32,
    /// Edge-cut of the produced partition.
    pub edge_cut: u64,
    /// Process-mapping cost `J` (0 when no topology is involved).
    pub mapping_cost: u64,
    /// Mean running time in seconds.
    pub seconds: f64,
}

/// The corpus used by the quality and runtime experiments (all instances).
pub fn quality_corpus(scale: f64, seed: u64) -> Vec<(String, CsrGraph)> {
    scaled_corpus(scale, seed)
        .into_iter()
        .map(|(name, _, graph)| (name, graph))
        .collect()
}

/// The corpus used by the scalability experiments: the paper restricts the
/// threads sweep to its largest instances, so this keeps only the graphs
/// above the median node count (and always at least three).
pub fn scalability_corpus(scale: f64, seed: u64) -> Vec<(String, CsrGraph)> {
    let mut all: Vec<(String, CorpusClass, CsrGraph)> = scaled_corpus(scale, seed);
    all.sort_by_key(|(_, _, g)| std::cmp::Reverse(g.num_nodes()));
    let keep = (all.len() / 2).max(3).min(all.len());
    all.truncate(keep);
    all.into_iter().map(|(name, _, g)| (name, g)).collect()
}

/// Runs the graph-partitioning suite (Hashing, Fennel, nh-OMS, multilevel)
/// for one instance and one `k`, measuring edge-cut and running time.
pub fn partitioning_suite(
    name: &str,
    graph: &CsrGraph,
    k: u32,
    reps: usize,
    include_in_memory: bool,
) -> Vec<AlgoResult> {
    let mut results = Vec::new();
    let one_pass = OnePassConfig::default();

    let (hash_partition, hash_time) =
        measure_repeated(reps, || Hashing::new(k, one_pass).partition_graph(graph).unwrap());
    results.push(result(name, "hashing", k, graph, &hash_partition, None, hash_time));

    let (fennel_partition, fennel_time) =
        measure_repeated(reps, || Fennel::new(k, one_pass).partition_graph(graph).unwrap());
    results.push(result(name, "fennel", k, graph, &fennel_partition, None, fennel_time));

    let nh_oms = OnlineMultiSection::flat(k, OmsConfig::default()).unwrap();
    let (oms_partition, oms_time) = measure_repeated(reps, || nh_oms.partition_graph(graph).unwrap());
    results.push(result(name, "nh-oms", k, graph, &oms_partition, None, oms_time));

    if include_in_memory {
        let ml = MultilevelPartitioner::new(k, MultilevelConfig::default());
        let (ml_partition, ml_time) = measure_repeated(reps, || ml.partition(graph).unwrap());
        results.push(result(name, "multilevel", k, graph, &ml_partition, None, ml_time));
    }
    results
}

/// Runs the process-mapping suite (Hashing, Fennel with identity mapping,
/// OMS, offline recursive multi-section) for one instance and one topology.
pub fn mapping_suite(
    name: &str,
    graph: &CsrGraph,
    topology: &Topology,
    reps: usize,
    include_in_memory: bool,
) -> Vec<AlgoResult> {
    let k = topology.num_pes();
    let mut results = Vec::new();
    let one_pass = OnePassConfig::default();

    let (hash_partition, hash_time) =
        measure_repeated(reps, || Hashing::new(k, one_pass).partition_graph(graph).unwrap());
    results.push(result(
        name,
        "hashing",
        k,
        graph,
        &hash_partition,
        Some(topology),
        hash_time,
    ));

    let (fennel_partition, fennel_time) =
        measure_repeated(reps, || Fennel::new(k, one_pass).partition_graph(graph).unwrap());
    results.push(result(
        name,
        "fennel",
        k,
        graph,
        &fennel_partition,
        Some(topology),
        fennel_time,
    ));

    let oms = OnlineMultiSection::with_hierarchy(topology.hierarchy().clone(), OmsConfig::default());
    let (oms_partition, oms_time) = measure_repeated(reps, || oms.partition_graph(graph).unwrap());
    results.push(result(
        name,
        "oms",
        k,
        graph,
        &oms_partition,
        Some(topology),
        oms_time,
    ));

    if include_in_memory {
        let rms = RecursiveMultisection::new(topology.hierarchy().clone(), MultilevelConfig::default());
        let (rms_partition, rms_time) = measure_repeated(reps, || rms.partition(graph).unwrap());
        results.push(result(
            name,
            "rms",
            k,
            graph,
            &rms_partition,
            Some(topology),
            rms_time,
        ));
    }
    results
}

fn result(
    instance: &str,
    algorithm: &str,
    k: u32,
    graph: &CsrGraph,
    partition: &Partition,
    topology: Option<&Topology>,
    seconds: f64,
) -> AlgoResult {
    AlgoResult {
        algorithm: algorithm.to_string(),
        instance: instance.to_string(),
        k,
        edge_cut: edge_cut(graph, partition.assignments()),
        mapping_cost: topology
            .map(|t| mapping_cost(graph, partition.assignments(), t))
            .unwrap_or(0),
        seconds,
    }
}

/// Builds the paper's default topology `S = 4:16:r`, `D = 1:10:100` for a
/// given extension factor `r` (`k = 64·r`).
pub fn paper_topology(r: u32) -> Topology {
    Topology::paper_default(r.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_corpus_is_nonempty_and_valid() {
        let corpus = quality_corpus(0.02, 1);
        assert!(corpus.len() >= 10);
        for (name, g) in &corpus {
            assert!(g.num_nodes() > 0, "{name}");
        }
    }

    #[test]
    fn scalability_corpus_keeps_the_larger_half() {
        let all = quality_corpus(0.02, 1);
        let big = scalability_corpus(0.02, 1);
        assert!(big.len() < all.len());
        assert!(big.len() >= 3);
        let min_big = big.iter().map(|(_, g)| g.num_nodes()).min().unwrap();
        let max_all = all.iter().map(|(_, g)| g.num_nodes()).max().unwrap();
        assert!(min_big <= max_all);
    }

    #[test]
    fn partitioning_suite_reports_all_algorithms() {
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 3);
        let results = partitioning_suite("test", &g, 16, 1, true);
        let names: Vec<&str> = results.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(names, vec!["hashing", "fennel", "nh-oms", "multilevel"]);
        // Quality ordering of the paper: multilevel ≤ fennel-ish ≤ hashing.
        let cut = |a: &str| results.iter().find(|r| r.algorithm == a).unwrap().edge_cut;
        assert!(cut("multilevel") <= cut("hashing"));
        assert!(cut("fennel") <= cut("hashing"));
        assert!(cut("nh-oms") <= cut("hashing"));
    }

    #[test]
    fn mapping_suite_reports_mapping_costs() {
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 5);
        let topology = Topology::parse("2:2:2", "1:10:100").unwrap();
        let results = mapping_suite("test", &g, &topology, 1, false);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.mapping_cost > 0));
        let cost = |a: &str| {
            results
                .iter()
                .find(|r| r.algorithm == a)
                .unwrap()
                .mapping_cost
        };
        assert!(cost("oms") <= cost("hashing"));
    }

    #[test]
    fn paper_topology_has_64r_pes() {
        assert_eq!(paper_topology(8).num_pes(), 512);
        assert_eq!(paper_topology(2).num_pes(), 128);
    }
}
