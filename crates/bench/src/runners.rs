//! Shared experiment drivers: corpus selection and algorithm suites.
//!
//! Every suite is a data-driven list of [`JobSpec`] strings resolved through
//! the shared `oms-core::api` registry — adding an algorithm to an
//! experiment means adding one spec string, not another construction match
//! arm.

use oms_core::{JobSpec, Partition};
use oms_gen::{scaled_corpus, CorpusClass};
use oms_graph::{CsrGraph, InMemoryStream};
use oms_mapping::{mapping_cost, Topology};
use oms_metrics::{edge_cut, measure_repeated};

/// The outcome of running one algorithm on one instance.
#[derive(Clone, Debug)]
pub struct AlgoResult {
    /// Registry name of the algorithm (`hashing`, `fennel`, `nh-oms`,
    /// `oms`, `multilevel`, `rms`, …).
    pub algorithm: String,
    /// Instance name.
    pub instance: String,
    /// Number of blocks / PEs.
    pub k: u32,
    /// Edge-cut of the produced partition.
    pub edge_cut: u64,
    /// Process-mapping cost `J` (0 when no topology is involved).
    pub mapping_cost: u64,
    /// Mean running time in seconds.
    pub seconds: f64,
}

/// The corpus used by the quality and runtime experiments (all instances).
pub fn quality_corpus(scale: f64, seed: u64) -> Vec<(String, CsrGraph)> {
    scaled_corpus(scale, seed)
        .into_iter()
        .map(|(name, _, graph)| (name, graph))
        .collect()
}

/// The corpus used by the scalability experiments: the paper restricts the
/// threads sweep to its largest instances, so this keeps only the graphs
/// above the median node count (and always at least three).
pub fn scalability_corpus(scale: f64, seed: u64) -> Vec<(String, CsrGraph)> {
    let mut all: Vec<(String, CorpusClass, CsrGraph)> = scaled_corpus(scale, seed);
    all.sort_by_key(|(_, _, g)| std::cmp::Reverse(g.num_nodes()));
    let keep = (all.len() / 2).max(3).min(all.len());
    all.truncate(keep);
    all.into_iter().map(|(name, _, g)| (name, g)).collect()
}

/// Builds and runs one job on one instance, timing `reps` repetitions of
/// the partitioning itself and evaluating quality on the final partition.
pub fn run_job(
    instance: &str,
    spec: &str,
    graph: &CsrGraph,
    reps: usize,
    topology: Option<&Topology>,
) -> AlgoResult {
    let job: JobSpec = spec
        .parse()
        .unwrap_or_else(|e| panic!("bad suite spec '{spec}': {e}"));
    let partitioner = job
        .build()
        .unwrap_or_else(|e| panic!("cannot build suite spec '{spec}': {e}"));
    let (partition, seconds) = measure_repeated(reps, || {
        partitioner
            .partition(&mut InMemoryStream::new(graph))
            .unwrap_or_else(|e| panic!("'{spec}' failed on {instance}: {e}"))
    });
    result(
        instance,
        &partitioner.name(),
        job.num_blocks(),
        graph,
        &partition,
        topology,
        seconds,
    )
}

/// Runs the graph-partitioning suite (Hashing, Fennel, nh-OMS, buffered,
/// multilevel) for one instance and one `k`, measuring edge-cut and running
/// time. `buffered` sits between the one-pass streamers and the in-memory
/// baseline: streaming memory, per-batch multilevel model solves.
pub fn partitioning_suite(
    name: &str,
    graph: &CsrGraph,
    k: u32,
    reps: usize,
    include_in_memory: bool,
) -> Vec<AlgoResult> {
    oms_multilevel::register_algorithms();
    let mut specs = vec![
        format!("hashing:{k}"),
        format!("fennel:{k}"),
        format!("nh-oms:{k}"),
        format!("buffered:{k}"),
    ];
    if include_in_memory {
        specs.push(format!("multilevel:{k}"));
    }
    specs
        .iter()
        .map(|spec| run_job(name, spec, graph, reps, None))
        .collect()
}

/// Runs the process-mapping suite (Hashing, Fennel with identity mapping,
/// OMS, offline recursive multi-section) for one instance and one topology.
pub fn mapping_suite(
    name: &str,
    graph: &CsrGraph,
    topology: &Topology,
    reps: usize,
    include_in_memory: bool,
) -> Vec<AlgoResult> {
    oms_multilevel::register_algorithms();
    let k = topology.num_pes();
    let hierarchy = topology.hierarchy().to_string_spec();
    let mut specs = vec![
        format!("hashing:{k}"),
        format!("fennel:{k}"),
        format!("oms:{hierarchy}"),
    ];
    if include_in_memory {
        specs.push(format!("rms:{hierarchy}"));
    }
    specs
        .iter()
        .map(|spec| run_job(name, spec, graph, reps, Some(topology)))
        .collect()
}

fn result(
    instance: &str,
    algorithm: &str,
    k: u32,
    graph: &CsrGraph,
    partition: &Partition,
    topology: Option<&Topology>,
    seconds: f64,
) -> AlgoResult {
    AlgoResult {
        algorithm: algorithm.to_string(),
        instance: instance.to_string(),
        k,
        edge_cut: edge_cut(graph, partition.assignments()),
        mapping_cost: topology
            .map(|t| mapping_cost(graph, partition.assignments(), t))
            .unwrap_or(0),
        seconds,
    }
}

/// Builds the paper's default topology `S = 4:16:r`, `D = 1:10:100` for a
/// given extension factor `r` (`k = 64·r`).
pub fn paper_topology(r: u32) -> Topology {
    Topology::paper_default(r.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_corpus_is_nonempty_and_valid() {
        let corpus = quality_corpus(0.02, 1);
        assert!(corpus.len() >= 10);
        for (name, g) in &corpus {
            assert!(g.num_nodes() > 0, "{name}");
        }
    }

    #[test]
    fn scalability_corpus_keeps_the_larger_half() {
        let all = quality_corpus(0.02, 1);
        let big = scalability_corpus(0.02, 1);
        assert!(big.len() < all.len());
        assert!(big.len() >= 3);
        let min_big = big.iter().map(|(_, g)| g.num_nodes()).min().unwrap();
        let max_all = all.iter().map(|(_, g)| g.num_nodes()).max().unwrap();
        assert!(min_big <= max_all);
    }

    #[test]
    fn partitioning_suite_reports_all_algorithms() {
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 3);
        let results = partitioning_suite("test", &g, 16, 1, true);
        let names: Vec<&str> = results.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(
            names,
            vec!["hashing", "fennel", "nh-oms", "buffered", "multilevel"]
        );
        // Quality ordering of the paper: multilevel ≤ fennel-ish ≤ hashing,
        // with buffered in the streaming-with-multilevel-quality middle.
        let cut = |a: &str| results.iter().find(|r| r.algorithm == a).unwrap().edge_cut;
        assert!(cut("multilevel") <= cut("hashing"));
        assert!(cut("fennel") <= cut("hashing"));
        assert!(cut("nh-oms") <= cut("hashing"));
        assert!(cut("buffered") <= cut("hashing"));
    }

    #[test]
    fn mapping_suite_reports_mapping_costs() {
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 5);
        let topology = Topology::parse("2:2:2", "1:10:100").unwrap();
        let results = mapping_suite("test", &g, &topology, 1, false);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.mapping_cost > 0));
        let cost = |a: &str| {
            results
                .iter()
                .find(|r| r.algorithm == a)
                .unwrap()
                .mapping_cost
        };
        assert!(cost("oms") <= cost("hashing"));
    }

    #[test]
    fn run_job_accepts_any_registered_spec() {
        oms_multilevel::register_algorithms();
        let g = oms_gen::planted_partition(200, 4, 0.1, 0.01, 7);
        let r = run_job("test", "fennel:8@passes=2", &g, 1, None);
        assert_eq!(r.algorithm, "fennel");
        assert_eq!(r.k, 8);
        assert_eq!(r.mapping_cost, 0);
    }

    #[test]
    fn paper_topology_has_64r_pes() {
        assert_eq!(paper_topology(8).num_pes(), 512);
        assert_eq!(paper_topology(2).num_pes(), 128);
    }
}
