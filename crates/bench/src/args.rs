//! Minimal command-line argument handling shared by all benchmark binaries.
//!
//! Only a handful of flags are needed, so this avoids an external argument
//! parser: `--scale <f64>`, `--reps <usize>`, `--out <dir>`, `--k <u32>`
//! (repeatable), `--threads <usize>` (repeatable), `--quick`,
//! `--weights <unit|nodes|edges|full>` (the weighted-corpus knob).

use oms_gen::WeightScheme;
use std::path::PathBuf;

/// Parsed benchmark options.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Corpus size multiplier (1.0 ≈ tens of thousands of nodes per graph).
    pub scale: f64,
    /// Repetitions per algorithm/instance (arithmetically averaged).
    pub reps: usize,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Explicit list of k values (or hierarchy extensions `r` where k = 64r).
    pub ks: Vec<u32>,
    /// Explicit list of thread counts for scalability runs.
    pub threads: Vec<usize>,
    /// Quick mode: smallest possible configuration (used by CI / tests).
    pub quick: bool,
    /// Corpus weighting scheme (`--weights unit|nodes|edges|full`).
    pub weights: WeightScheme,
    /// Remaining positional arguments.
    pub rest: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 0.05,
            reps: 2,
            out_dir: PathBuf::from("target/experiments"),
            ks: Vec::new(),
            threads: Vec::new(),
            quick: false,
            weights: WeightScheme::Unit,
            rest: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        parsed.scale = v;
                    }
                }
                "--reps" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        parsed.reps = v;
                    }
                }
                "--out" => {
                    if let Some(v) = iter.next() {
                        parsed.out_dir = PathBuf::from(v);
                    }
                }
                "--k" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        parsed.ks.push(v);
                    }
                }
                "--threads" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        parsed.threads.push(v);
                    }
                }
                "--quick" => parsed.quick = true,
                "--weights" => {
                    if let Some(v) = iter.next().and_then(|s| WeightScheme::parse(&s)) {
                        parsed.weights = v;
                    }
                }
                other => parsed.rest.push(other.to_string()),
            }
        }
        if parsed.quick {
            parsed.scale = parsed.scale.min(0.02);
            parsed.reps = 1;
        }
        parsed
    }

    /// The k values to sweep (`k = 64·r`, mirroring the paper's
    /// `r ∈ {1, 2, 4, …}` sweep), falling back to a small default grid.
    pub fn k_values(&self) -> Vec<u32> {
        if !self.ks.is_empty() {
            return self.ks.clone();
        }
        if self.quick {
            vec![64, 256]
        } else {
            vec![64, 128, 256, 512, 1024]
        }
    }

    /// The thread counts to sweep, falling back to `1, 2, 4, …` up to the
    /// host parallelism.
    pub fn thread_values(&self) -> Vec<usize> {
        if !self.threads.is_empty() {
            return self.threads.clone();
        }
        let max = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let mut values = vec![1usize];
        while let Some(&last) = values.last() {
            if last * 2 > max || values.len() >= 6 {
                break;
            }
            values.push(last * 2);
        }
        values
    }

    /// Ensures the output directory exists and returns it.
    pub fn ensure_out_dir(&self) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).ok();
        self.out_dir.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sensible() {
        let a = parse(&[]);
        assert!(a.scale > 0.0);
        assert!(a.reps >= 1);
        assert!(!a.quick);
        assert!(!a.k_values().is_empty());
        assert!(!a.thread_values().is_empty());
    }

    #[test]
    fn parses_scale_reps_and_out() {
        let a = parse(&["--scale", "0.5", "--reps", "7", "--out", "/tmp/x"]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.reps, 7);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn repeated_k_and_threads_accumulate() {
        let a = parse(&[
            "--k",
            "64",
            "--k",
            "512",
            "--threads",
            "2",
            "--threads",
            "8",
        ]);
        assert_eq!(a.k_values(), vec![64, 512]);
        assert_eq!(a.thread_values(), vec![2, 8]);
    }

    #[test]
    fn quick_mode_shrinks_everything() {
        let a = parse(&["--quick", "--scale", "1.0"]);
        assert!(a.quick);
        assert!(a.scale <= 0.02);
        assert_eq!(a.reps, 1);
        assert_eq!(a.k_values(), vec![64, 256]);
    }

    #[test]
    fn weights_knob_parses() {
        assert_eq!(parse(&[]).weights, WeightScheme::Unit);
        assert_eq!(parse(&["--weights", "full"]).weights, WeightScheme::Full);
        assert_eq!(parse(&["--weights", "nodes"]).weights, WeightScheme::Nodes);
    }

    #[test]
    fn unknown_arguments_are_collected() {
        let a = parse(&["--objective", "mapping"]);
        assert_eq!(
            a.rest,
            vec!["--objective".to_string(), "mapping".to_string()]
        );
    }

    #[test]
    fn thread_values_start_at_one_and_double() {
        let a = parse(&[]);
        let t = a.thread_values();
        assert_eq!(t[0], 1);
        for w in t.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }
}
