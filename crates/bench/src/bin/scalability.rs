//! Regenerates Table 2 (average running time and speedup vs. thread count)
//! and Fig. 3 (per-graph speedup/time curves) for `k = 8192` (configurable
//! with `--k`).
//!
//! Algorithms: parallel Hashing, parallel Fennel, parallel nh-OMS, parallel
//! OMS (hierarchy `4:16:r` with `64·r = k`) and the multilevel baseline.
//!
//! ```text
//! cargo run --release -p oms-bench --bin scalability -- --scale 0.1 --k 1024
//! cargo run --release -p oms-bench --bin scalability -- --per-graph
//! ```

use oms_bench::{scalability_corpus, BenchArgs};
use oms_core::parallel::{hashing_parallel, onepass_parallel, FlatScorer};
use oms_core::{HierarchySpec, OmsConfig, OnePassConfig, OnlineMultiSection};
use oms_graph::CsrGraph;
use oms_metrics::{geometric_mean, measure_repeated, Table};
use oms_multilevel::{MultilevelConfig, MultilevelPartitioner};
use std::collections::BTreeMap;

const ALGOS: &[&str] = &["hashing", "nh-oms", "oms", "fennel", "multilevel"];

fn run(algorithm: &str, graph: &CsrGraph, k: u32, threads: usize, reps: usize) -> f64 {
    let one_pass = OnePassConfig::default();
    let (_, secs) = match algorithm {
        "hashing" => measure_repeated(reps, || {
            hashing_parallel(graph, k, one_pass, threads).unwrap()
        }),
        "fennel" => measure_repeated(reps, || {
            onepass_parallel(graph, k, FlatScorer::Fennel, one_pass, threads).unwrap()
        }),
        "nh-oms" => {
            let oms = OnlineMultiSection::flat(k, OmsConfig::default()).unwrap();
            measure_repeated(reps, || oms.partition_graph_parallel(graph, threads).unwrap())
        }
        "oms" => {
            let r = (k / 64).max(2);
            let hierarchy = HierarchySpec::new(vec![4, 16, r]).unwrap();
            let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
            measure_repeated(reps, || oms.partition_graph_parallel(graph, threads).unwrap())
        }
        "multilevel" => {
            let ml = MultilevelPartitioner::new(k, MultilevelConfig::default());
            measure_repeated(reps, || ml.partition_with_threads(graph, threads).unwrap())
        }
        other => panic!("unknown algorithm {other}"),
    };
    secs
}

fn main() {
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let per_graph = args.rest.iter().any(|a| a == "--per-graph");
    let k = args.ks.first().copied().unwrap_or(1024);
    let corpus = scalability_corpus(args.scale, 42);
    let threads = args.thread_values();

    // algorithm → thread count → per-graph times
    let mut times: BTreeMap<&str, BTreeMap<usize, Vec<(String, f64)>>> = BTreeMap::new();
    for &algo in ALGOS {
        for &t in &threads {
            for (name, graph) in &corpus {
                let secs = run(algo, graph, k, t, args.reps);
                times
                    .entry(algo)
                    .or_default()
                    .entry(t)
                    .or_default()
                    .push((name.clone(), secs));
            }
        }
    }

    // ---- Table 2: average running time and speedup per thread count ------
    let mut table2 = Table::new(
        &format!("Table 2 — average running time [s] and speedup, k = {k}"),
        &[
            "threads",
            "hashing RT",
            "hashing SU",
            "nh-oms RT",
            "nh-oms SU",
            "oms RT",
            "oms SU",
            "fennel RT",
            "fennel SU",
            "multilevel RT",
            "multilevel SU",
        ],
    );
    let mean_time = |algo: &str, t: usize| -> f64 {
        geometric_mean(
            &times[algo][&t]
                .iter()
                .map(|(_, secs)| *secs)
                .collect::<Vec<_>>(),
        )
    };
    for &t in &threads {
        let mut row = vec![t.to_string()];
        for &algo in ALGOS {
            let rt = mean_time(algo, t);
            let base = mean_time(algo, threads[0]);
            row.push(format!("{rt:.3}"));
            row.push(format!("{:.1}", base / rt.max(1e-12)));
        }
        table2.add_row(row);
    }
    print!("{}", table2.to_text());
    table2.write_csv(&out_dir.join("table2_scalability.csv")).ok();

    // ---- Fig. 3: per-graph speedups and running times --------------------
    if per_graph {
        for (name, _) in &corpus {
            let mut fig3 = Table::new(
                &format!("Fig. 3 — {name}: running time [s] (speedup) vs threads, k = {k}"),
                &["threads", "hashing", "nh-oms", "oms", "fennel", "multilevel"],
            );
            for &t in &threads {
                let mut row = vec![t.to_string()];
                for &algo in ALGOS {
                    let get = |tt: usize| {
                        times[algo][&tt]
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, s)| *s)
                            .unwrap_or(f64::NAN)
                    };
                    let rt = get(t);
                    let su = get(threads[0]) / rt.max(1e-12);
                    row.push(format!("{rt:.3} ({su:.1}x)"));
                }
                fig3.add_row(row);
            }
            print!("\n{}", fig3.to_text());
            fig3.write_csv(&out_dir.join(format!("fig3_{name}.csv"))).ok();
        }
    }
    println!("\nwrote CSVs to {}", out_dir.display());
}
