//! Regenerates Table 2 (average running time and speedup vs. thread count)
//! and Fig. 3 (per-graph speedup/time curves) for `k = 8192` (configurable
//! with `--k`).
//!
//! Algorithms: Hashing, Fennel, nh-OMS, OMS (hierarchy `4:16:r` with
//! `64·r = k`) and the multilevel baseline, each dispatched through the
//! shared registry with `threads=t` in the job spec. Note the measurement
//! protocol: at `t = 1` the registry builds the *sequential* implementation,
//! so the SU columns report speedup over the sequential baseline (slightly
//! stricter than speedup over the parallel driver pinned to one thread).
//!
//! ```text
//! cargo run --release -p oms-bench --bin scalability -- --scale 0.1 --k 1024
//! cargo run --release -p oms-bench --bin scalability -- --per-graph
//! ```

use oms_bench::{run_job, scalability_corpus, BenchArgs};
use oms_graph::CsrGraph;
use oms_metrics::{geometric_mean, Table};
use std::collections::BTreeMap;

const ALGOS: &[&str] = &["hashing", "nh-oms", "oms", "fennel", "multilevel"];

/// The job spec of one (algorithm, k, threads) cell; the hierarchy algorithm
/// uses the paper's `4:16:r` machine with `64·r = k`.
fn spec_for(algorithm: &str, k: u32, threads: usize) -> String {
    match algorithm {
        "oms" => format!("oms:4:16:{}@threads={threads}", (k / 64).max(2)),
        other => format!("{other}:{k}@threads={threads}"),
    }
}

fn run(algorithm: &str, name: &str, graph: &CsrGraph, k: u32, threads: usize, reps: usize) -> f64 {
    run_job(name, &spec_for(algorithm, k, threads), graph, reps, None).seconds
}

fn main() {
    oms_multilevel::register_algorithms();
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let per_graph = args.rest.iter().any(|a| a == "--per-graph");
    let k = args.ks.first().copied().unwrap_or(1024);
    let corpus = scalability_corpus(args.scale, 42);
    let threads = args.thread_values();

    // algorithm → thread count → per-graph times
    type TimesByThreads = BTreeMap<usize, Vec<(String, f64)>>;
    let mut times: BTreeMap<&str, TimesByThreads> = BTreeMap::new();
    for &algo in ALGOS {
        for &t in &threads {
            for (name, graph) in &corpus {
                let secs = run(algo, name, graph, k, t, args.reps);
                times
                    .entry(algo)
                    .or_default()
                    .entry(t)
                    .or_default()
                    .push((name.clone(), secs));
            }
        }
    }

    // ---- Table 2: average running time and speedup per thread count ------
    let mut table2 = Table::new(
        &format!("Table 2 — average running time [s] and speedup, k = {k}"),
        &[
            "threads",
            "hashing RT",
            "hashing SU",
            "nh-oms RT",
            "nh-oms SU",
            "oms RT",
            "oms SU",
            "fennel RT",
            "fennel SU",
            "multilevel RT",
            "multilevel SU",
        ],
    );
    let mean_time = |algo: &str, t: usize| -> f64 {
        geometric_mean(
            &times[algo][&t]
                .iter()
                .map(|(_, secs)| *secs)
                .collect::<Vec<_>>(),
        )
    };
    for &t in &threads {
        let mut row = vec![t.to_string()];
        for &algo in ALGOS {
            let rt = mean_time(algo, t);
            let base = mean_time(algo, threads[0]);
            row.push(format!("{rt:.3}"));
            row.push(format!("{:.1}", base / rt.max(1e-12)));
        }
        table2.add_row(row);
    }
    print!("{}", table2.to_text());
    table2
        .write_csv(&out_dir.join("table2_scalability.csv"))
        .ok();

    // ---- Fig. 3: per-graph speedups and running times --------------------
    if per_graph {
        for (name, _) in &corpus {
            let mut fig3 = Table::new(
                &format!("Fig. 3 — {name}: running time [s] (speedup) vs threads, k = {k}"),
                &[
                    "threads",
                    "hashing",
                    "nh-oms",
                    "oms",
                    "fennel",
                    "multilevel",
                ],
            );
            for &t in &threads {
                let mut row = vec![t.to_string()];
                for &algo in ALGOS {
                    let get = |tt: usize| {
                        times[algo][&tt]
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, s)| *s)
                            .unwrap_or(f64::NAN)
                    };
                    let rt = get(t);
                    let su = get(threads[0]) / rt.max(1e-12);
                    row.push(format!("{rt:.3} ({su:.1}x)"));
                }
                fig3.add_row(row);
            }
            print!("\n{}", fig3.to_text());
            fig3.write_csv(&out_dir.join(format!("fig3_{name}.csv")))
                .ok();
        }
    }
    println!("\nwrote CSVs to {}", out_dir.display());
}
