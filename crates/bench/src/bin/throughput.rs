//! Hot-path throughput benchmark: nodes/s and edges/s per algorithm × source.
//!
//! Measures the single-pass streaming rate of the flat partitioners
//! (hashing, LDG, Fennel, `k = 64`) over three stream sources:
//!
//! * **memory** — `InMemoryStream`, pure scoring-kernel throughput;
//! * **disk v2** — the interleaved per-field stream format, cold page cache;
//! * **disk v3** — the sectioned fixed-stride format decoded by bulk copy.
//!
//! An extra row runs Fennel under the deterministic sharded engine
//! (`S = 4`, memory source) to track the buffering + exchange overhead, and
//! one more scans the stream through the [`EdgesOf`] adapter (no scoring),
//! isolating raw edge-ingest throughput. Every partitioning run
//! asserts **byte-identical assignments** across the three sources, so the
//! throughput numbers can never drift apart from correctness.
//!
//! Results are printed as a table and recorded in `BENCH_throughput.json`
//! (committed — the repo's nodes/sec trajectory). The JSON always includes a
//! `quick_fennel_memory_nodes_per_s` field measured at the `--quick` scale,
//! so CI can compare a quick run against the committed full-scale file with
//! `--check-baseline`:
//!
//! ```text
//! cargo run --release -p oms-bench --bin throughput -- \
//!     [--quick] [--reps R] [--json FILE] [--check-baseline FILE]
//! ```
//!
//! `--check-baseline FILE` exits non-zero when the current same-scale Fennel
//! memory nodes/s falls more than 20% below the value recorded in `FILE`.

use oms_bench::BenchArgs;
use oms_core::{
    Fennel, FlatObjective, Hashing, Ldg, OnePassConfig, Partitioner, ShardedFlat,
    StreamingPartitioner,
};
use oms_graph::io::{write_stream_file_with, DiskStream, StreamFormatVersion, StreamWriteOptions};
use oms_graph::{CsrGraph, EdgeStream, EdgesOf, InMemoryStream};
use oms_obs::Stopwatch;
use std::io::Write;

const K: u32 = 64;
/// Allowed relative drop of nodes/s vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Best-of-`reps` wall time of `f`, which returns the partition assignments
/// for the cross-source byte-equality check.
fn measure<F: FnMut() -> Vec<u32>>(reps: usize, mut f: F) -> (f64, Vec<u32>) {
    let mut best = f64::INFINITY;
    let mut assignments = Vec::new();
    for _ in 0..reps.max(1) {
        let clock = Stopwatch::start();
        assignments = f();
        best = best.min(clock.seconds());
    }
    (best, assignments)
}

/// Tries to flush and drop the page cache; returns whether it worked.
fn drop_page_cache() -> bool {
    let _ = std::process::Command::new("sync").status();
    std::fs::write("/proc/sys/vm/drop_caches", "3").is_ok()
}

fn write_version(graph: &CsrGraph, path: &std::path::Path, version: StreamFormatVersion) {
    let options = StreamWriteOptions {
        version,
        ..StreamWriteOptions::default()
    };
    write_stream_file_with(graph, path, options).expect("can write the stream file");
}

struct Row {
    label: String,
    seconds: f64,
    nodes_per_s: f64,
    edges_per_s: f64,
}

/// Extracts the number following `"key":` from a hand-formatted JSON report.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1).cloned())
}

/// One algorithm over the three sources; returns (rows, edge cut) and
/// asserts byte-identical assignments everywhere.
fn run_algorithm<P: StreamingPartitioner>(
    name: &str,
    algo: &P,
    graph: &CsrGraph,
    reps: usize,
    cold: bool,
    rows: &mut Vec<Row>,
) -> f64 {
    let n = graph.num_nodes() as f64;
    let m = graph.num_edges() as f64;
    let dir = std::env::temp_dir();

    let (mem_s, mem_assign) = measure(reps, || {
        algo.partition_stream(&mut InMemoryStream::new(graph))
            .unwrap()
            .assignments()
            .to_vec()
    });
    rows.push(Row {
        label: format!("{name} / memory"),
        seconds: mem_s,
        nodes_per_s: n / mem_s,
        edges_per_s: m / mem_s,
    });

    for version in [StreamFormatVersion::V2, StreamFormatVersion::V3] {
        let mut best = f64::INFINITY;
        for i in 0..reps.max(1) {
            let path = dir.join(format!("oms-bench-tp-{name}-{}-{i}.oms", version.number()));
            write_version(graph, &path, version);
            if cold {
                drop_page_cache();
            }
            let clock = Stopwatch::start();
            let assign = algo
                .partition_stream(&mut DiskStream::open(&path).unwrap())
                .unwrap()
                .assignments()
                .to_vec();
            best = best.min(clock.seconds());
            std::fs::remove_file(&path).ok();
            assert_eq!(
                assign,
                mem_assign,
                "{name}: v{} disk assignments must be byte-identical to memory",
                version.number()
            );
        }
        rows.push(Row {
            label: format!("{name} / disk v{}", version.number()),
            seconds: best,
            nodes_per_s: n / best,
            edges_per_s: m / best,
        });
    }
    mem_s
}

/// Fennel memory nodes/s at the quick scale (the CI comparison anchor).
/// Always best-of-3 at least: the anchor gates CI with a 20% tolerance, so
/// it must reflect steady throughput, not a lucky single run.
fn quick_fennel_rate(reps: usize) -> f64 {
    let reps = reps.max(3);
    let nodes = 1 << 16;
    let graph = oms_gen::rmat_graph(16, nodes * 8, oms_gen::RmatParams::GRAPH500, 7);
    let fennel = Fennel::new(K, OnePassConfig::default());
    let (s, _) = measure(reps, || {
        fennel
            .partition_stream(&mut InMemoryStream::new(&graph))
            .unwrap()
            .assignments()
            .to_vec()
    });
    graph.num_nodes() as f64 / s
}

fn main() {
    let args = BenchArgs::from_env();
    let quick = args.quick;
    let nodes = if quick { 1 << 16 } else { 1 << 20 };
    let scale = if quick { 16 } else { 20 };
    let reps = args.reps.max(1);

    let clock = Stopwatch::start();
    let graph: CsrGraph = oms_gen::rmat_graph(scale, nodes * 8, oms_gen::RmatParams::GRAPH500, 7);
    let n = graph.num_nodes();
    let m = graph.num_edges();
    println!(
        "rmat scale {scale}: n = {n}, m = {m}, k = {K}, reps = {reps} (generated in {:.1}s)\n",
        clock.seconds()
    );

    let cold = drop_page_cache();
    let mut rows = Vec::new();
    let cfg = OnePassConfig::default();

    let hashing = Hashing::new(K, cfg);
    run_algorithm("hashing", &hashing, &graph, reps, cold, &mut rows);
    let ldg = Ldg::new(K, cfg);
    run_algorithm("ldg", &ldg, &graph, reps, cold, &mut rows);
    let fennel = Fennel::new(K, cfg);
    let fennel_mem_s = run_algorithm("fennel", &fennel, &graph, reps, cold, &mut rows);

    // The deterministic sharded engine at S = 4 over the memory source. Its
    // assignments legitimately differ from the classic engine (round-stale
    // load views), so there is no cross-source byte-equality assert here;
    // the row tracks the buffering + exchange overhead against the
    // `fennel / memory` row above.
    {
        let sharded = ShardedFlat::new(K, cfg, FlatObjective::Fennel, 4);
        let (s, _) = measure(reps, || {
            sharded
                .partition(&mut InMemoryStream::new(&graph))
                .unwrap()
                .assignments()
                .to_vec()
        });
        let messages = sharded
            .last_stats()
            .map(|stats| stats.total_messages())
            .unwrap_or(0);
        rows.push(Row {
            label: "fennel s4 / memory".into(),
            seconds: s,
            nodes_per_s: n as f64 / s,
            edges_per_s: m as f64 / s,
        });
        println!("fennel shards=4 exchanged {messages} messages\n");
    }

    // Raw edge-scan throughput through the EdgesOf adapter (no scoring):
    // memory and sectioned disk.
    let (scan_mem_s, _) = measure(reps, || {
        let mut edges = 0u64;
        EdgesOf(InMemoryStream::new(&graph))
            .for_each_edge(&mut |_| edges += 1)
            .unwrap();
        vec![edges as u32]
    });
    rows.push(Row {
        label: "edge scan / memory".into(),
        seconds: scan_mem_s,
        nodes_per_s: n as f64 / scan_mem_s,
        edges_per_s: m as f64 / scan_mem_s,
    });
    {
        let path = std::env::temp_dir().join("oms-bench-tp-scan.oms");
        write_version(&graph, &path, StreamFormatVersion::V3);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            if cold {
                drop_page_cache();
            }
            let clock = Stopwatch::start();
            let mut edges = 0u64;
            EdgesOf(DiskStream::open(&path).unwrap())
                .for_each_edge(&mut |_| edges += 1)
                .unwrap();
            assert_eq!(edges as usize, m, "edge scan must visit every edge once");
            best = best.min(clock.seconds());
        }
        std::fs::remove_file(&path).ok();
        rows.push(Row {
            label: "edge scan / disk v3".into(),
            seconds: best,
            nodes_per_s: n as f64 / best,
            edges_per_s: m as f64 / best,
        });
    }

    println!(
        "{:<26} {:>9} {:>13} {:>13}",
        "configuration", "seconds", "nodes/s", "edges/s"
    );
    for row in &rows {
        println!(
            "{:<26} {:>9.3} {:>13.0} {:>13.0}",
            row.label, row.seconds, row.nodes_per_s, row.edges_per_s
        );
    }

    // The quick-scale anchor CI compares against (measured in every run so
    // the committed full-scale file also carries it). Quick mode forces
    // reps = 1 for the table, but the anchor is always a dedicated
    // best-of-3 measurement — it gates CI and must not be a single sample.
    let quick_rate = quick_fennel_rate(reps);
    println!("\nquick-scale fennel memory anchor: {quick_rate:.0} nodes/s");

    if let Some(baseline_path) = flag_value(&args.rest, "--check-baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let key = if quick {
            "quick_fennel_memory_nodes_per_s"
        } else {
            "fennel_memory_nodes_per_s"
        };
        let baseline = json_number(&text, key)
            .unwrap_or_else(|| panic!("baseline {baseline_path} has no {key} field"));
        let current = if quick {
            quick_rate
        } else {
            n as f64 / fennel_mem_s
        };
        let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
        println!(
            "baseline check ({key}): current {current:.0} vs committed {baseline:.0} \
             (floor {floor:.0})"
        );
        if current < floor {
            eprintln!(
                "THROUGHPUT REGRESSION: {current:.0} nodes/s is more than \
                 {:.0}% below the committed {baseline:.0}",
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        println!("baseline check passed");
        return; // check mode never rewrites the committed report
    }

    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let out = flag_value(&args.rest, "--json").unwrap_or_else(|| "BENCH_throughput.json".into());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"throughput\",\n");
    json.push_str(&format!("  \"graph\": \"rmat_scale{scale}\",\n"));
    json.push_str(&format!("  \"nodes\": {n},\n  \"edges\": {m},\n"));
    json.push_str(&format!(
        "  \"k\": {K},\n  \"reps\": {reps},\n  \"cpus\": {cpus},\n"
    ));
    json.push_str(&format!(
        "  \"cold_page_cache\": {cold},\n  \"quick\": {quick},\n"
    ));
    for row in &rows {
        let key = row.label.replace(" / ", "_").replace([' ', '-'], "_");
        json.push_str(&format!("  \"{key}_s\": {:.4},\n", row.seconds));
        json.push_str(&format!(
            "  \"{key}_nodes_per_s\": {:.0},\n",
            row.nodes_per_s
        ));
        json.push_str(&format!(
            "  \"{key}_edges_per_s\": {:.0},\n",
            row.edges_per_s
        ));
    }
    json.push_str(&format!(
        "  \"quick_fennel_memory_nodes_per_s\": {quick_rate:.0}\n}}\n"
    ));
    let mut file = std::fs::File::create(&out).expect("can create the JSON report");
    file.write_all(json.as_bytes())
        .expect("can write the JSON report");
    println!("recorded {out}");
}
