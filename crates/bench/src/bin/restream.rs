//! Quality-vs-passes: how much edge-cut does restreaming buy, and when
//! does it stop paying off?
//!
//! For every algorithm that supports multi-pass execution the multi-pass
//! engine is run with a generous pass budget, and the per-pass trajectory
//! (cut after each accepted pass, nodes moved, pass time) is reported
//! together with the total cut reduction and the pass at which the run
//! effectively converged (< 1 % further improvement). This is the table
//! behind the README's restreaming section.
//!
//! ```text
//! cargo run --release -p oms-bench --bin restream -- --scale 0.1 --k 32
//! ```

use oms_bench::{quality_corpus, BenchArgs};
use oms_core::JobSpec;
use oms_graph::InMemoryStream;
use oms_metrics::{cut_reduction_percent, effective_convergence_pass, Table};

fn main() {
    oms_multilevel::register_algorithms();
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let k = args.ks.first().copied().unwrap_or(32);
    let passes = if args.quick { 3 } else { 8 };
    let mut corpus = quality_corpus(args.scale, 42);
    if args.quick {
        corpus.truncate(2);
    }

    let specs: Vec<String> = ["fennel", "ldg", "nh-oms", "buffered"]
        .iter()
        .map(|algo| format!("{algo}:{k}@seed=3,passes={passes}"))
        .collect();

    let mut table = Table::new(
        &format!("Quality vs. restreaming passes, k = {k} (pass budget {passes})"),
        &[
            "graph",
            "algorithm",
            "pass",
            "edge_cut",
            "moved",
            "seconds",
            "cut_red_%",
            "conv_pass",
        ],
    );
    for (name, graph) in &corpus {
        for spec in &specs {
            let job: JobSpec = spec.parse().expect("suite specs parse");
            let partitioner = job.build().expect("suite specs build");
            let (_, trajectory) = partitioner
                .partition_tracked(&mut InMemoryStream::new(graph))
                .unwrap_or_else(|e| panic!("'{spec}' failed on {name}: {e}"));
            let reduction = cut_reduction_percent(&trajectory.stats);
            let conv = effective_convergence_pass(&trajectory.stats, 0.01)
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            for stats in &trajectory.stats {
                table.add_row(vec![
                    name.clone(),
                    partitioner.name(),
                    stats.pass.to_string(),
                    stats.edge_cut.to_string(),
                    stats.moved.to_string(),
                    format!("{:.4}", stats.seconds),
                    format!("{reduction:.2}"),
                    conv.clone(),
                ]);
            }
        }
    }
    println!("{}", table.to_text());
    let csv = out_dir.join("restream_quality.csv");
    table.write_csv(&csv).expect("write CSV");
    println!("CSV written to {}", csv.display());
}
