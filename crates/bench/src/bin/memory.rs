//! Regenerates the §4.1 memory-requirements comparison: the streaming
//! algorithms need `O(n + k)` memory (assignments plus block weights,
//! streaming the graph from disk), whereas the in-memory baselines hold the
//! whole CSR graph.
//!
//! ```text
//! cargo run --release -p oms-bench --bin memory -- --scale 0.2
//! ```

use oms_bench::{scalability_corpus, BenchArgs};
use oms_core::MultisectionTree;
use oms_metrics::memory::current_rss_bytes;
use oms_metrics::{graph_memory_bytes, streaming_memory_bytes, Table};

fn main() {
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let k = args.ks.first().copied().unwrap_or(8192);
    // The paper measures three large graphs; take the three largest corpus
    // instances.
    let mut corpus = scalability_corpus(args.scale, 42);
    corpus.truncate(3);

    let mut table = Table::new(
        &format!("Memory requirements [MiB], k = {k}"),
        &[
            "graph",
            "n",
            "m",
            "hashing (stream)",
            "fennel (stream)",
            "oms / nh-oms (stream)",
            "multilevel (in-memory)",
        ],
    );
    for (name, graph) in &corpus {
        let tree = MultisectionTree::flat(k, 4);
        let hashing = streaming_memory_bytes(graph.num_nodes(), 0);
        let fennel = streaming_memory_bytes(graph.num_nodes(), k as usize);
        let oms = streaming_memory_bytes(graph.num_nodes(), tree.num_nodes());
        let in_memory = graph_memory_bytes(graph, k as usize);
        table.add_row(vec![
            name.clone(),
            graph.num_nodes().to_string(),
            graph.num_edges().to_string(),
            format!("{:.1}", hashing.total_mib()),
            format!("{:.1}", fennel.total_mib()),
            format!("{:.1}", oms.total_mib()),
            format!("{:.1}", in_memory.total_mib()),
        ]);
    }
    print!("{}", table.to_text());
    if let Some(rss) = current_rss_bytes() {
        println!(
            "\nprocess RSS after generating the corpus: {:.1} MiB",
            rss as f64 / (1024.0 * 1024.0)
        );
    }
    table
        .write_csv(&out_dir.join("memory_requirements.csv"))
        .ok();
    println!("wrote CSVs to {}", out_dir.display());
}
