//! Traffic-replay quality gap: does a better streaming partition actually
//! serve simulated users faster?
//!
//! Hashing and multi-pass Fennel partition the same hub-heavy corpora
//! (Barabási–Albert and RMAT), then the `oms-workload` simulator fires the
//! identical Zipf-skewed request stream at both partitions. Reported per
//! graph: edge cut, cross-block hop rate, p50/p99 simulated latency, and
//! the headline *gaps* — how much lower Fennel's hop rate and p99 latency
//! are than hashing's. The replay is integer-tick deterministic, so the
//! gaps are exact, reproducible numbers rather than wall-clock samples.
//! The JSON summary is committed as `BENCH_replay.json`.
//!
//! ```text
//! cargo run --release -p oms-bench --bin replay -- [--quick] [--json FILE]
//!     [--check-baseline FILE]
//! ```
//!
//! `--check-baseline FILE` exits non-zero when the current p99 gap falls
//! more than 20 % below the committed one (the quick-scale anchor field in
//! quick mode); check mode never rewrites the committed report.

use oms_core::JobSpec;
use oms_gen::{barabasi_albert, rmat_graph, RmatParams};
use oms_graph::{CsrGraph, InMemoryStream};
use oms_metrics::replay_gap_percent;
use oms_workload::{replay_graph, ReplayConfig, ReplayReport};
use std::io::Write;

const K: u32 = 32;

/// Allowed relative drop of the p99 gap vs the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Extracts the number following `"key":` from a hand-formatted JSON report.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1).cloned())
}

struct Outcome {
    cut: u64,
    report: ReplayReport,
}

/// Partitions `graph` with `spec` and replays the shared request stream.
fn run_job(graph: &CsrGraph, spec: &str, config: &ReplayConfig) -> Outcome {
    let job: JobSpec = spec.parse().expect("bench spec parses");
    let report = job
        .build()
        .expect("bench job builds")
        .run(&mut InMemoryStream::new(graph))
        .expect("bench job runs");
    let replay = replay_graph(graph, report.partition.assignments(), config);
    Outcome {
        cut: report.edge_cut,
        report: replay,
    }
}

/// Hashing vs multi-pass Fennel on one graph; returns (hop gap %, p99 gap %).
fn compare(name: &str, graph: &CsrGraph, config: &ReplayConfig) -> (f64, f64) {
    let hash = run_job(graph, &format!("hashing:{K}@seed=3"), config);
    let fennel = run_job(graph, &format!("fennel:{K}@seed=3,passes=3"), config);
    let hop_gap = replay_gap_percent(
        hash.report.cross_block_hop_rate(),
        fennel.report.cross_block_hop_rate(),
    );
    let p99_gap = replay_gap_percent(
        hash.report.p99_latency as f64,
        fennel.report.p99_latency as f64,
    );
    println!(
        "{name}: n = {}, m = {}",
        graph.num_nodes(),
        graph.num_edges()
    );
    for (algo, o) in [("hashing", &hash), ("fennel x3", &fennel)] {
        println!(
            "  {:<10} cut {:>8}  hop rate {:.4}  p50 {:>7}  p99 {:>7}  skew {:.3}",
            algo,
            o.cut,
            o.report.cross_block_hop_rate(),
            o.report.p50_latency,
            o.report.p99_latency,
            o.report.load_skew()
        );
    }
    println!("  fennel gap: hop rate {hop_gap:+.1}%, p99 latency {p99_gap:+.1}%");
    (hop_gap, p99_gap)
}

/// The quick-scale anchor measured in every run (quick and full), so the
/// committed full-scale report also carries the number quick-mode CI
/// compares against. Deterministic: same numbers on every host.
fn quick_anchor() -> (f64, f64) {
    let graph = barabasi_albert(5_000, 4, 42);
    let config = ReplayConfig {
        requests: 4_000,
        ..ReplayConfig::default()
    };
    let hash = run_job(&graph, &format!("hashing:{K}@seed=3"), &config);
    let fennel = run_job(&graph, &format!("fennel:{K}@seed=3,passes=3"), &config);
    (
        replay_gap_percent(
            hash.report.cross_block_hop_rate(),
            fennel.report.cross_block_hop_rate(),
        ),
        replay_gap_percent(
            hash.report.p99_latency as f64,
            fennel.report.p99_latency as f64,
        ),
    )
}

fn main() {
    let args = oms_bench::BenchArgs::from_env();
    let quick = args.quick;
    let (ba_n, rmat_scale, requests) = if quick {
        (5_000, 13, 4_000)
    } else {
        (50_000, 17, 20_000)
    };
    let config = ReplayConfig {
        requests,
        ..ReplayConfig::default()
    };
    println!(
        "replay: {} requests x {} hops, zipf {:.2}, penalty {}, k = {K}\n",
        config.requests, config.hops, config.zipf_exponent, config.hop_penalty
    );

    let ba = barabasi_albert(ba_n, 4, 42);
    let (ba_hop_gap, ba_p99_gap) = compare("ba", &ba, &config);
    let rmat = rmat_graph(
        rmat_scale,
        (1usize << rmat_scale) * 8,
        RmatParams::GRAPH500,
        42,
    );
    let (rmat_hop_gap, rmat_p99_gap) = compare("rmat", &rmat, &config);

    let hop_gap = (ba_hop_gap + rmat_hop_gap) / 2.0;
    let p99_gap = (ba_p99_gap + rmat_p99_gap) / 2.0;
    println!("\nmean fennel gap over hashing: hop rate {hop_gap:+.1}%, p99 latency {p99_gap:+.1}%");

    let (quick_hop_gap, quick_p99_gap) = quick_anchor();
    println!("quick-scale ba anchor: hop rate {quick_hop_gap:+.1}%, p99 {quick_p99_gap:+.1}%");

    if let Some(baseline_path) = flag_value(&args.rest, "--check-baseline") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let key = if quick {
            "quick_p99_gap_percent"
        } else {
            "p99_gap_percent"
        };
        let baseline = json_number(&text, key)
            .unwrap_or_else(|| panic!("baseline {baseline_path} has no {key} field"));
        let current = if quick { quick_p99_gap } else { p99_gap };
        let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
        println!(
            "baseline check ({key}): current {current:.1}% vs committed {baseline:.1}% \
             (floor {floor:.1}%)"
        );
        if current < floor {
            eprintln!(
                "REPLAY QUALITY REGRESSION: fennel's p99 advantage {current:.1}% is more \
                 than {:.0}% below the committed {baseline:.1}%",
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        println!("baseline check passed");
        return; // check mode never rewrites the committed report
    }

    let out = flag_value(&args.rest, "--json").unwrap_or_else(|| "BENCH_replay.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"replay\",\n  \"k\": {K},\n  \"requests\": {requests},\n  \"hops\": {hops},\n  \"zipf_exponent\": {zipf:.2},\n  \"hop_penalty\": {penalty},\n  \"ba_nodes\": {ba_n},\n  \"ba_hop_gap_percent\": {ba_hop_gap:.1},\n  \"ba_p99_gap_percent\": {ba_p99_gap:.1},\n  \"rmat_scale\": {rmat_scale},\n  \"rmat_hop_gap_percent\": {rmat_hop_gap:.1},\n  \"rmat_p99_gap_percent\": {rmat_p99_gap:.1},\n  \"hop_gap_percent\": {hop_gap:.1},\n  \"p99_gap_percent\": {p99_gap:.1},\n  \"quick_hop_gap_percent\": {quick_hop_gap:.1},\n  \"quick_p99_gap_percent\": {quick_p99_gap:.1}\n}}\n",
        hops = config.hops,
        zipf = config.zipf_exponent,
        penalty = config.hop_penalty,
    );
    let mut file = std::fs::File::create(&out).expect("can create the JSON report");
    file.write_all(json.as_bytes())
        .expect("can write the JSON report");
    println!("\nrecorded {out}");
}
