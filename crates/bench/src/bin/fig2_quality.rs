//! Regenerates Fig. 2a/2b (solution quality as improvement over Hashing,
//! grouped by k) and Fig. 2d/2e (quality performance profiles).
//!
//! * mapping objective: Hashing, Fennel (identity mapping), OMS and the
//!   offline recursive multi-section (IntMap/KaMinPar stand-in) on the
//!   topology `S = 4:16:r`, `D = 1:10:100`, `k = 64·r`;
//! * edge-cut objective: Hashing, Fennel, nh-OMS and the multilevel
//!   partitioner for the same `k` values.
//!
//! ```text
//! cargo run --release -p oms-bench --bin fig2_quality -- --scale 0.05
//! ```

use oms_bench::runners::paper_topology;
use oms_bench::{mapping_suite, partitioning_suite, quality_corpus, BenchArgs};
use oms_metrics::{geometric_mean, improvement_percent, PerformanceProfile, Table};
use std::collections::BTreeMap;

fn main() {
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let corpus = quality_corpus(args.scale, 42);
    let include_in_memory = !args.rest.iter().any(|a| a == "--no-in-memory");

    // ---------------- Fig. 2a + 2d: process mapping ----------------------
    let mut mapping_by_k: BTreeMap<u32, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
    let mut mapping_profile = PerformanceProfile::new();
    for &k in &args.k_values() {
        let r = (k / 64).max(2);
        let topology = paper_topology(r);
        for (name, graph) in &corpus {
            for result in mapping_suite(name, graph, &topology, args.reps, include_in_memory) {
                mapping_by_k
                    .entry(topology.num_pes())
                    .or_default()
                    .entry(result.algorithm.clone())
                    .or_default()
                    .push(result.mapping_cost as f64);
                mapping_profile.record(
                    &result.algorithm,
                    &format!("{name}-k{}", topology.num_pes()),
                    result.mapping_cost as f64,
                );
            }
        }
    }

    let mut fig2a = Table::new(
        "Fig. 2a — mapping improvement over Hashing [%] (geometric means per k)",
        &["k", "oms", "fennel", "rms (IntMap-like)"],
    );
    for (k, per_algo) in &mapping_by_k {
        let mean = |a: &str| geometric_mean(per_algo.get(a).map(|v| v.as_slice()).unwrap_or(&[]));
        let hashing = mean("hashing");
        let row_value = |a: &str| {
            if per_algo.contains_key(a) {
                format!("{:+.1}", improvement_percent(mean(a), hashing))
            } else {
                "-".to_string()
            }
        };
        fig2a.add_row(vec![
            k.to_string(),
            row_value("oms"),
            row_value("fennel"),
            row_value("rms"),
        ]);
    }
    print!("{}", fig2a.to_text());

    let taus = [
        1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    ];
    let mut fig2d = Table::new(
        "Fig. 2d — mapping performance profile (fraction of instances ≤ τ · best)",
        &["algorithm", "τ=1", "τ=1.5", "τ=2", "τ=4", "τ=16", "τ=128"],
    );
    for (alg, curve) in mapping_profile.curves(&taus) {
        fig2d.add_row(vec![
            alg,
            format!("{:.2}", curve[0]),
            format!("{:.2}", curve[4]),
            format!("{:.2}", curve[5]),
            format!("{:.2}", curve[6]),
            format!("{:.2}", curve[9]),
            format!("{:.2}", curve[11]),
        ]);
    }
    print!("\n{}", fig2d.to_text());

    // ---------------- Fig. 2b + 2e: edge-cut ------------------------------
    let mut cut_by_k: BTreeMap<u32, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
    let mut cut_profile = PerformanceProfile::new();
    for &k in &args.k_values() {
        for (name, graph) in &corpus {
            for result in partitioning_suite(name, graph, k, args.reps, include_in_memory) {
                cut_by_k
                    .entry(k)
                    .or_default()
                    .entry(result.algorithm.clone())
                    .or_default()
                    .push(result.edge_cut.max(1) as f64);
                cut_profile.record(
                    &result.algorithm,
                    &format!("{name}-k{k}"),
                    result.edge_cut.max(1) as f64,
                );
            }
        }
    }

    let mut fig2b = Table::new(
        "Fig. 2b — edge-cut improvement over Hashing [%] (geometric means per k)",
        &["k", "nh-oms", "fennel", "multilevel (KaMinPar-like)"],
    );
    for (k, per_algo) in &cut_by_k {
        let mean = |a: &str| geometric_mean(per_algo.get(a).map(|v| v.as_slice()).unwrap_or(&[]));
        let hashing = mean("hashing");
        let row_value = |a: &str| {
            if per_algo.contains_key(a) {
                format!("{:+.1}", improvement_percent(mean(a), hashing))
            } else {
                "-".to_string()
            }
        };
        fig2b.add_row(vec![
            k.to_string(),
            row_value("nh-oms"),
            row_value("fennel"),
            row_value("multilevel"),
        ]);
    }
    print!("\n{}", fig2b.to_text());

    let mut fig2e = Table::new(
        "Fig. 2e — edge-cut performance profile (fraction of instances ≤ τ · best)",
        &["algorithm", "τ=1", "τ=1.5", "τ=2", "τ=4", "τ=16", "τ=128"],
    );
    for (alg, curve) in cut_profile.curves(&taus) {
        fig2e.add_row(vec![
            alg,
            format!("{:.2}", curve[0]),
            format!("{:.2}", curve[4]),
            format!("{:.2}", curve[5]),
            format!("{:.2}", curve[6]),
            format!("{:.2}", curve[9]),
            format!("{:.2}", curve[11]),
        ]);
    }
    print!("\n{}", fig2e.to_text());

    fig2a
        .write_csv(&out_dir.join("fig2a_mapping_improvement.csv"))
        .ok();
    fig2b
        .write_csv(&out_dir.join("fig2b_cut_improvement.csv"))
        .ok();
    fig2d
        .write_csv(&out_dir.join("fig2d_mapping_profile.csv"))
        .ok();
    fig2e.write_csv(&out_dir.join("fig2e_cut_profile.csv")).ok();
    println!("\nwrote CSVs to {}", out_dir.display());
}
