//! Regenerates Fig. 2c (running-time speedup over Fennel, grouped by k) and
//! Fig. 2f (running-time performance profile).
//!
//! ```text
//! cargo run --release -p oms-bench --bin fig2_runtime -- --scale 0.05
//! ```

use oms_bench::runners::paper_topology;
use oms_bench::{mapping_suite, partitioning_suite, quality_corpus, BenchArgs};
use oms_metrics::{geometric_mean, speedup, PerformanceProfile, Table};
use std::collections::BTreeMap;

fn main() {
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let corpus = quality_corpus(args.scale, 42);
    let include_in_memory = !args.rest.iter().any(|a| a == "--no-in-memory");

    // Collect running times per algorithm per k (partitioning suite gives the
    // flat algorithms + nh-OMS; the mapping suite adds hierarchical OMS).
    let mut time_by_k: BTreeMap<u32, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
    let mut profile = PerformanceProfile::new();

    for &k in &args.k_values() {
        let topology = paper_topology((k / 64).max(2));
        for (name, graph) in &corpus {
            let mut results = partitioning_suite(name, graph, k, args.reps, include_in_memory);
            // Only OMS (hierarchical) from the mapping suite; the others are
            // already covered.
            results.extend(
                mapping_suite(name, graph, &topology, args.reps, false)
                    .into_iter()
                    .filter(|r| r.algorithm == "oms"),
            );
            for result in results {
                time_by_k
                    .entry(k)
                    .or_default()
                    .entry(result.algorithm.clone())
                    .or_default()
                    .push(result.seconds);
                profile.record(
                    &result.algorithm,
                    &format!("{name}-k{k}"),
                    result.seconds.max(1e-9),
                );
            }
        }
    }

    let mut fig2c = Table::new(
        "Fig. 2c — speedup over Fennel (geometric-mean running times per k)",
        &["k", "hashing", "nh-oms", "oms", "multilevel"],
    );
    for (k, per_algo) in &time_by_k {
        let mean = |a: &str| geometric_mean(per_algo.get(a).map(|v| v.as_slice()).unwrap_or(&[]));
        let fennel = mean("fennel");
        let cell = |a: &str| {
            if per_algo.contains_key(a) {
                format!("{:.1}x", speedup(mean(a), fennel))
            } else {
                "-".to_string()
            }
        };
        fig2c.add_row(vec![
            k.to_string(),
            cell("hashing"),
            cell("nh-oms"),
            cell("oms"),
            cell("multilevel"),
        ]);
    }
    print!("{}", fig2c.to_text());

    let taus = [1.0, 2.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0];
    let mut fig2f = Table::new(
        "Fig. 2f — running-time performance profile (fraction of instances ≤ τ · fastest)",
        &[
            "algorithm",
            "τ=1",
            "τ=4",
            "τ=16",
            "τ=64",
            "τ=1024",
            "τ=4096",
        ],
    );
    for (alg, curve) in profile.curves(&taus) {
        fig2f.add_row(vec![
            alg,
            format!("{:.2}", curve[0]),
            format!("{:.2}", curve[2]),
            format!("{:.2}", curve[3]),
            format!("{:.2}", curve[4]),
            format!("{:.2}", curve[6]),
            format!("{:.2}", curve[7]),
        ]);
    }
    print!("\n{}", fig2f.to_text());

    fig2c
        .write_csv(&out_dir.join("fig2c_speedup_over_fennel.csv"))
        .ok();
    fig2f
        .write_csv(&out_dir.join("fig2f_runtime_profile.csv"))
        .ok();
    println!("\nwrote CSVs to {}", out_dir.display());
}
