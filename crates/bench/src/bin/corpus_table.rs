//! Regenerates Table 1: the benchmark corpus with basic properties.
//!
//! ```text
//! cargo run --release -p oms-bench --bin corpus_table -- --scale 0.1
//! cargo run --release -p oms-bench --bin corpus_table -- --weights full
//! ```
//!
//! `--weights nodes|edges|full` prints the weighted corpus instead (the
//! weighted columns `c(V)` and `ω(E)` then diverge from `n` and `m`).

use oms_bench::BenchArgs;
use oms_gen::scaled_corpus_weighted;
use oms_metrics::Table;

fn main() {
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();

    let mut table = Table::new(
        &format!(
            "Table 1 — synthetic corpus (scale {}, weights {})",
            args.scale,
            args.weights.name()
        ),
        &[
            "graph",
            "n",
            "m",
            "c(V)",
            "w(E)",
            "type",
            "max degree",
            "avg degree",
        ],
    );
    for (name, class, graph) in scaled_corpus_weighted(args.scale, 42, args.weights) {
        table.add_row(vec![
            name,
            graph.num_nodes().to_string(),
            graph.num_edges().to_string(),
            graph.total_node_weight().to_string(),
            graph.total_edge_weight().to_string(),
            class.name().to_string(),
            graph.max_degree().to_string(),
            format!("{:.2}", graph.average_degree()),
        ]);
    }
    print!("{}", table.to_text());
    let csv_path = out_dir.join("table1_corpus.csv");
    if table.write_csv(&csv_path).is_ok() {
        println!("\nwrote {}", csv_path.display());
    }
}
