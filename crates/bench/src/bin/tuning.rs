//! Regenerates the parameter-tuning results of §4:
//!
//! 1. Fennel vs LDG as the multi-section scorer (mapping and edge-cut);
//! 2. adapted per-subproblem α vs the global k-way α;
//! 3. base `b = 4` vs `b = 2` for the artificial hierarchy (nh-OMS);
//! 4. hybrid mode: the bottom ~67 % of layers solved with Hashing.
//!
//! ```text
//! cargo run --release -p oms-bench --bin tuning -- --scale 0.05
//! ```

use oms_bench::{quality_corpus, BenchArgs};
use oms_core::{AlphaMode, OmsConfig, OnlineMultiSection, ScorerKind};
use oms_graph::CsrGraph;
use oms_mapping::{mapping_cost, Topology};
use oms_metrics::{edge_cut, geometric_mean, improvement_percent, measure_repeated, Table};

struct Variant {
    name: &'static str,
    config: OmsConfig,
}

fn run_variant(
    graph: &CsrGraph,
    topology: &Topology,
    config: &OmsConfig,
    reps: usize,
) -> (u64, u64, f64) {
    let oms = OnlineMultiSection::with_hierarchy(topology.hierarchy().clone(), *config);
    let (partition, secs) = measure_repeated(reps, || oms.partition_graph(graph).unwrap());
    (
        edge_cut(graph, partition.assignments()),
        mapping_cost(graph, partition.assignments(), topology),
        secs,
    )
}

fn main() {
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let corpus = quality_corpus(args.scale, 42);
    let topology = Topology::paper_default(4); // S = 4:16:4, k = 256
    let levels = topology.hierarchy().num_levels();

    let variants = [
        Variant {
            name: "fennel-adapted (default)",
            config: OmsConfig::default(),
        },
        Variant {
            name: "ldg",
            config: OmsConfig::default().scorer(ScorerKind::Ldg),
        },
        Variant {
            name: "fennel-global-alpha",
            config: OmsConfig::default().alpha_mode(AlphaMode::Global),
        },
        Variant {
            name: "hybrid-67pct-hashing",
            config: OmsConfig::default().hashing_bottom_layers((levels * 2) / 3),
        },
    ];

    // Per-variant geometric means over the corpus.
    let mut cut_means = Vec::new();
    let mut map_means = Vec::new();
    let mut time_means = Vec::new();
    for variant in &variants {
        let mut cuts = Vec::new();
        let mut maps = Vec::new();
        let mut times = Vec::new();
        for (_, graph) in &corpus {
            let (cut, map, secs) = run_variant(graph, &topology, &variant.config, args.reps);
            cuts.push(cut as f64);
            maps.push(map as f64);
            times.push(secs);
        }
        cut_means.push(geometric_mean(&cuts));
        map_means.push(geometric_mean(&maps));
        time_means.push(geometric_mean(&times));
    }

    let mut table = Table::new(
        &format!(
            "Parameter tuning (S = {}, D = 1:10:100, geometric means over {} graphs)",
            topology.hierarchy().to_string_spec(),
            corpus.len()
        ),
        &[
            "variant",
            "edge-cut",
            "mapping J",
            "time [s]",
            "cut vs default [%]",
            "map vs default [%]",
            "speed vs default",
        ],
    );
    for (i, variant) in variants.iter().enumerate() {
        table.add_row(vec![
            variant.name.to_string(),
            format!("{:.0}", cut_means[i]),
            format!("{:.0}", map_means[i]),
            format!("{:.4}", time_means[i]),
            format!("{:+.1}", improvement_percent(cut_means[i], cut_means[0])),
            format!("{:+.1}", improvement_percent(map_means[i], map_means[0])),
            format!("{:.2}x", time_means[0] / time_means[i].max(1e-12)),
        ]);
    }
    print!("{}", table.to_text());

    // Base b ablation for nh-OMS (plain partitioning).
    let k = 256;
    let mut base_table = Table::new(
        &format!("nh-OMS base-b ablation (k = {k}, geometric means)"),
        &["base b", "edge-cut", "time [s]"],
    );
    for base in [2u32, 4, 8] {
        let mut cuts = Vec::new();
        let mut times = Vec::new();
        for (_, graph) in &corpus {
            let oms = OnlineMultiSection::flat(k, OmsConfig::default().base_b(base)).unwrap();
            let (partition, secs) =
                measure_repeated(args.reps, || oms.partition_graph(graph).unwrap());
            cuts.push(edge_cut(graph, partition.assignments()) as f64);
            times.push(secs);
        }
        base_table.add_row(vec![
            base.to_string(),
            format!("{:.0}", geometric_mean(&cuts)),
            format!("{:.4}", geometric_mean(&times)),
        ]);
    }
    print!("\n{}", base_table.to_text());

    table
        .write_csv(&out_dir.join("tuning_scorer_alpha_hybrid.csv"))
        .ok();
    base_table
        .write_csv(&out_dir.join("tuning_base_b.csv"))
        .ok();
    println!("\nwrote CSVs to {}", out_dir.display());
}
