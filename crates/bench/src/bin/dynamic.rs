//! Dynamic-maintenance throughput: how fast does the `oms-dynamic` service
//! ingest deltas, and how much cheaper is local repair than restreaming?
//!
//! One long-lived [`PartitionState`] ingests a seeded uniform churn trace
//! over an Erdős–Rényi graph. After every batch the same graph state is
//! also partitioned from scratch by a cold restream — the quality/cost
//! yardstick. Reported: sustained deltas/second, the repair-vs-restream
//! cost ratio, the worst per-checkpoint cut ratio, and the end-to-end
//! speedup. The JSON summary is committed as `BENCH_dynamic.json` so the
//! performance trajectory of the dynamic layer is tracked in-repo.
//!
//! ```text
//! cargo run --release -p oms-bench --bin dynamic -- [--quick] [--json FILE]
//! ```

use oms_core::JobSpec;
use oms_dynamic::PartitionState;
use oms_gen::{churn_trace, erdos_renyi_gnm, ChurnConfig, ChurnScheme};
use oms_graph::InMemoryStream;
use oms_metrics::{
    checkpoint_table, max_cut_ratio, repair_vs_restream_speedup, CheckpointComparison,
};
use std::io::Write;

const K: u32 = 32;

fn main() {
    let args = oms_bench::BenchArgs::from_env();
    let quick = args.quick;
    let n: usize = if quick { 20_000 } else { 200_000 };
    let (batches, ops) = if quick { (4, 200) } else { (8, 1_000) };

    let graph = erdos_renyi_gnm(n, n * 4, 31);
    let trace = churn_trace(
        &graph,
        &ChurnConfig {
            scheme: ChurnScheme::Uniform,
            batches,
            ops_per_batch: ops,
            seed: 0xFA57,
            ..ChurnConfig::default()
        },
    );
    let total_deltas: usize = trace.iter().map(oms_graph::DeltaBatch::len).sum();

    // A huge drift threshold keeps the run on the repair path, so the
    // timings compare pure delta ingestion against full restreams.
    let job: JobSpec = format!("fennel:{K}@drift=1000000000")
        .parse()
        .expect("bench spec parses");
    let mut state =
        PartitionState::new(&job, &mut InMemoryStream::new(&graph)).expect("initial run");
    println!(
        "graph: er n = {n}, m = {}; trace: {batches} batches x {ops} ops = {total_deltas} deltas",
        graph.num_edges()
    );
    println!(
        "initial: cut {} (imbalance {:.4})",
        state.edge_cut(),
        state.imbalance()
    );

    let mut checkpoints = Vec::with_capacity(trace.len());
    for (i, batch) in trace.iter().enumerate() {
        let stats = state.apply(batch).expect("churn traces are valid");
        let (restream_cut, restream_imbalance, restream_seconds) = state
            .cold_restream_reference()
            .expect("reference restream runs");
        checkpoints.push(CheckpointComparison {
            checkpoint: i,
            deltas: stats.deltas,
            incremental_cut: state.edge_cut(),
            incremental_imbalance: state.imbalance(),
            incremental_seconds: stats.seconds,
            restream_cut,
            restream_imbalance,
            restream_seconds,
        });
    }
    print!(
        "{}",
        checkpoint_table("incremental vs cold restream", &checkpoints).to_text()
    );

    let apply_s: f64 = checkpoints.iter().map(|c| c.incremental_seconds).sum();
    let restream_s: f64 = checkpoints.iter().map(|c| c.restream_seconds).sum();
    let deltas_per_sec = if apply_s > 0.0 {
        total_deltas as f64 / apply_s
    } else {
        f64::INFINITY
    };
    let cost_ratio = if restream_s > 0.0 {
        apply_s / restream_s
    } else {
        0.0
    };
    let speedup = repair_vs_restream_speedup(&checkpoints);
    let worst_ratio = max_cut_ratio(&checkpoints);
    println!("\ndeltas/second      : {deltas_per_sec:.0}");
    println!("repair cost ratio  : {cost_ratio:.4} of restreaming ({speedup:.1}x speedup)");
    println!("max cut ratio      : {worst_ratio:.3}");

    let out = args
        .rest
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_dynamic.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"dynamic\",\n  \"graph\": \"er_n{n}\",\n  \"nodes\": {n},\n  \"edges\": {m},\n  \"k\": {K},\n  \"batches\": {batches},\n  \"ops_per_batch\": {ops},\n  \"deltas\": {total_deltas},\n  \"apply_seconds\": {apply_s:.4},\n  \"deltas_per_sec\": {deltas_per_sec:.0},\n  \"restream_seconds\": {restream_s:.4},\n  \"repair_cost_ratio\": {cost_ratio:.4},\n  \"repair_speedup\": {speedup:.1},\n  \"max_cut_ratio\": {worst_ratio:.3},\n  \"final_cut\": {cut},\n  \"final_restream_cut\": {re_cut},\n  \"restream_fallbacks\": {fallbacks}\n}}\n",
        m = graph.num_edges(),
        cut = state.edge_cut(),
        re_cut = checkpoints.last().map(|c| c.restream_cut).unwrap_or(0),
        fallbacks = state.counters().restreams,
    );
    let mut file = std::fs::File::create(&out).expect("can create the JSON report");
    file.write_all(json.as_bytes())
        .expect("can write the JSON report");
    println!("\nrecorded {out}");
}
