//! Full-scale benchmark of the batched streaming pipeline.
//!
//! Generates a million-node RMAT graph, converts it to the binary
//! vertex-stream format and measures the two headline effects of the batch
//! executor rework:
//!
//! * **batched vs per-node drive loop** on an in-memory stream (executor
//!   overhead), and
//! * **double- vs single-buffered disk ingest** with a cold page cache (the
//!   reader thread decodes batch `B+1` — and the kernel prefetches behind
//!   it — while batch `B` is scored).
//!
//! Disk runs are measured **cold**: every measurement reads a freshly
//! written copy of the stream file after flushing the guest page cache
//! (`/proc/sys/vm/drop_caches`, when writable). A fresh copy per run
//! matters because re-reading the same blocks can be served by a
//! hypervisor-level cache the guest cannot evict — and the streaming regime
//! of interest is a graph that does *not* fit in RAM; a warm cache would
//! measure `memcpy` instead of ingest. Results are printed as a table and
//! recorded in `BENCH_executor.json`, so the performance trajectory of the
//! pipeline is tracked in-repo.
//!
//! ```text
//! cargo run --release -p oms-bench --bin executor -- [--quick] [--reps R] [--json FILE]
//! ```

use oms_bench::BenchArgs;
use oms_core::{Fennel, OnePassConfig, StreamingPartitioner};
use oms_graph::io::{write_stream_file, DiskStream};
use oms_graph::{CsrGraph, InMemoryStream, PerNodeBatches};
use oms_obs::Stopwatch;
use std::io::Write;

const K: u32 = 64;

/// Best-of-`reps` wall time of `f`, which returns the edge-cut for a
/// cross-configuration sanity check.
fn measure<F: FnMut() -> u64>(reps: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cut = 0;
    for _ in 0..reps.max(1) {
        let clock = Stopwatch::start();
        cut = f();
        best = best.min(clock.seconds());
    }
    (best, cut)
}

/// Tries to flush and drop the page cache; returns whether it worked.
fn drop_page_cache() -> bool {
    let _ = std::process::Command::new("sync").status();
    std::fs::write("/proc/sys/vm/drop_caches", "3").is_ok()
}

fn main() {
    let args = BenchArgs::from_env();
    let quick = args.quick;
    let nodes = if quick { 1 << 16 } else { 1 << 20 };
    let scale = if quick { 16 } else { 20 };
    let reps = args.reps.max(1);

    let clock = Stopwatch::start();
    let graph: CsrGraph = oms_gen::rmat_graph(scale, nodes * 8, oms_gen::RmatParams::GRAPH500, 7);
    let n = graph.num_nodes();
    println!(
        "rmat scale {scale}: n = {n}, m = {}, k = {K}, reps = {reps} (generated in {:.1}s)\n",
        graph.num_edges(),
        clock.seconds()
    );
    let fennel = Fennel::new(K, OnePassConfig::default());

    let (per_node_s, cut_a) = measure(reps, || {
        fennel
            .partition_stream(&mut PerNodeBatches(InMemoryStream::new(&graph)))
            .unwrap()
            .edge_cut(&graph)
    });
    let (batched_s, cut_b) = measure(reps, || {
        fennel
            .partition_stream(&mut InMemoryStream::new(&graph))
            .unwrap()
            .edge_cut(&graph)
    });
    assert_eq!(cut_a, cut_b, "batched scoring must not change the result");

    let cold = drop_page_cache();
    // One freshly written file per measurement, written and evicted outside
    // the timed region; the two ingest modes alternate within each rep so
    // both see the same filesystem/cache history (rereading blocks — or
    // freshly reallocated copies of them — can be served by a host-level
    // cache the guest cannot drop, so keeping the access pattern symmetric
    // matters more than any single eviction).
    let dir = std::env::temp_dir();
    let mut file_mib = 0.0;
    let mut disk_single_s = f64::INFINITY;
    let mut disk_double_s = f64::INFINITY;
    let mut disk_cut = 0u64;
    for i in 0..reps {
        for double_buffered in [false, true] {
            let path = dir.join(format!("oms-bench-executor-{i}-{double_buffered}.oms"));
            write_stream_file(&graph, &path).expect("can write the stream file");
            file_mib =
                std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) as f64 / (1 << 20) as f64;
            if cold {
                drop_page_cache();
            }
            let clock = Stopwatch::start();
            let mut stream = DiskStream::open(&path)
                .unwrap()
                .double_buffered(double_buffered);
            let cut = fennel
                .partition_stream(&mut stream)
                .unwrap()
                .edge_cut(&graph);
            let seconds = clock.seconds();
            std::fs::remove_file(&path).ok();
            assert!(
                disk_cut == 0 || disk_cut == cut,
                "ingest mode must not change the result"
            );
            disk_cut = cut;
            if double_buffered {
                disk_double_s = disk_double_s.min(seconds);
            } else {
                disk_single_s = disk_single_s.min(seconds);
            }
        }
    }
    assert_eq!(disk_cut, cut_b, "disk and memory runs must agree");

    let speedup_batch = per_node_s / batched_s;
    let speedup_disk = disk_single_s / disk_double_s;
    let cache = if cold { "cold" } else { "warm" };
    println!("{:<42} {:>10} {:>9}", "configuration", "seconds", "speedup");
    println!(
        "{:<42} {:>10.3} {:>9}",
        "memory / per-node drive loop", per_node_s, "1.00x"
    );
    println!(
        "{:<42} {:>10.3} {:>8.2}x",
        "memory / batched executor", batched_s, speedup_batch
    );
    println!(
        "{:<42} {:>10.3} {:>9}",
        format!("disk {file_mib:.0} MiB ({cache}) / single-buffered"),
        disk_single_s,
        "1.00x"
    );
    println!(
        "{:<42} {:>10.3} {:>8.2}x",
        format!("disk {file_mib:.0} MiB ({cache}) / double-buffered"),
        disk_double_s,
        speedup_disk
    );
    println!("edge-cut (all configurations): {cut_b}");
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let note = if !cold {
        "page cache could not be dropped; disk numbers measure memcpy, not ingest"
    } else if cpus == 1 {
        "single CPU: decode cannot overlap scoring, and virtualised storage may serve reads \
         from a host cache the guest cannot evict — with no I/O latency to hide, the \
         double-buffer reader thread measures as pure overhead; on multicore or real disks \
         the same binary shows the overlap win"
    } else {
        ""
    };
    if !note.is_empty() {
        println!("note: {note}");
    }

    let out = args
        .rest
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_executor.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"executor\",\n  \"graph\": \"rmat_scale{scale}\",\n  \"nodes\": {n},\n  \"edges\": {m},\n  \"k\": {K},\n  \"reps\": {reps},\n  \"cpus\": {cpus},\n  \"cold_page_cache\": {cold},\n  \"stream_file_mib\": {file_mib:.1},\n  \"memory_per_node_s\": {per_node_s:.4},\n  \"memory_batched_s\": {batched_s:.4},\n  \"batched_speedup\": {speedup_batch:.3},\n  \"disk_single_buffered_s\": {disk_single_s:.4},\n  \"disk_double_buffered_s\": {disk_double_s:.4},\n  \"double_buffer_speedup\": {speedup_disk:.3},\n  \"edge_cut\": {cut},\n  \"note\": \"{note}\"\n}}\n",
        m = graph.num_edges(),
        cut = cut_b,
        note = note.replace('\n', " "),
    );
    let mut file = std::fs::File::create(&out).expect("can create the JSON report");
    file.write_all(json.as_bytes())
        .expect("can write the JSON report");
    println!("\nrecorded {out}");
}
