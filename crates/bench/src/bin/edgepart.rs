//! Vertex-cut quality: replication factor of the streaming edge
//! partitioners over the synthetic corpus.
//!
//! For every corpus instance and every registered edge algorithm the
//! replication factor, max replica count, edge-load imbalance and running
//! time are reported; `e-greedy` additionally sweeps the λ balance knob so
//! the RF-vs-λ trade-off (the README table) can be regenerated. Hub-heavy
//! instances (preferential-attachment / skewed-RMAT classes) are marked —
//! they are where vertex-cut beats edge-cut and where `e-greedy`'s margin
//! over `e-hash` is widest.
//!
//! ```text
//! cargo run --release -p oms-bench --bin edgepart -- --scale 0.1 --k 32
//! ```

use oms_bench::BenchArgs;
use oms_core::JobSpec;
use oms_edgepart::build_edge_partitioner;
use oms_gen::scaled_corpus;
use oms_graph::{EdgesOf, InMemoryStream};
use oms_metrics::Table;

fn main() {
    let args = BenchArgs::from_env();
    let out_dir = args.ensure_out_dir();
    let k = args.ks.first().copied().unwrap_or(32);
    let passes = if args.quick { 1 } else { 3 };
    let lambdas: &[f64] = if args.quick { &[1.0] } else { &[0.1, 1.0, 5.0] };

    let mut corpus = scaled_corpus(args.scale, 42);
    if args.quick {
        corpus.truncate(3);
    }

    let mut specs: Vec<String> = vec![
        format!("e-hash:{k}@seed=3"),
        format!("e-dbh:{k}@seed=3"),
        format!("e-dbh:{k}@seed=3,passes={passes}"),
    ];
    for lambda in lambdas {
        specs.push(format!("e-greedy:{k}@seed=3,lambda={lambda}"));
    }
    specs.push(format!("e-greedy:{k}@seed=3,passes={passes}"));

    let mut table = Table::new(
        &format!("Vertex-cut replication factor, k = {k}"),
        &[
            "graph",
            "class",
            "hub_heavy",
            "job",
            "rf",
            "max_replicas",
            "imbalance",
            "seconds",
        ],
    );
    for (name, class, graph) in &corpus {
        for spec in &specs {
            let job: JobSpec = spec.parse().expect("suite specs parse");
            let partitioner = build_edge_partitioner(&job).expect("suite specs build");
            let report = partitioner
                .run(&mut EdgesOf(InMemoryStream::new(graph)))
                .unwrap_or_else(|e| panic!("'{spec}' failed on {name}: {e}"));
            table.add_row(vec![
                name.clone(),
                class.name().to_string(),
                if class.hub_heavy() { "yes" } else { "no" }.to_string(),
                spec.clone(),
                format!("{:.4}", report.replication_factor),
                report.max_replicas.to_string(),
                format!("{:.4}", report.imbalance),
                format!("{:.4}", report.seconds),
            ]);
        }
    }
    println!("{}", table.to_text());
    let csv = out_dir.join("edgepart_quality.csv");
    table.write_csv(&csv).expect("write CSV");
    println!("CSV written to {}", csv.display());
}
