//! Criterion micro-benchmarks of the flat one-pass baselines (Hashing, LDG,
//! Fennel) — the running-time relationships underlying Fig. 2c/2f: Hashing is
//! orders of magnitude faster than Fennel/LDG, whose cost grows with `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oms_core::{Fennel, Hashing, Ldg, OnePassConfig, StreamingPartitioner};
use oms_gen::random_geometric_graph;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let graph = random_geometric_graph(20_000, 7);
    let cfg = OnePassConfig::default();
    let mut group = c.benchmark_group("one_pass_baselines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for k in [64u32, 512] {
        group.bench_with_input(BenchmarkId::new("hashing", k), &k, |b, &k| {
            b.iter(|| Hashing::new(k, cfg).partition_graph(&graph).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ldg", k), &k, |b, &k| {
            b.iter(|| Ldg::new(k, cfg).partition_graph(&graph).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fennel", k), &k, |b, &k| {
            b.iter(|| Fennel::new(k, cfg).partition_graph(&graph).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
