//! Criterion micro-benchmarks of the online multi-section algorithm:
//! nh-OMS vs. the flat Fennel baseline (the complexity separation of
//! Theorem 4 vs. `O(m + nk)`), OMS on the paper's hierarchy, and the hybrid
//! Fennel/Hashing configuration (Theorem 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oms_core::{
    Fennel, HierarchySpec, OmsConfig, OnePassConfig, OnlineMultiSection, StreamingPartitioner,
};
use oms_gen::random_geometric_graph;
use std::time::Duration;

fn bench_oms(c: &mut Criterion) {
    let graph = random_geometric_graph(20_000, 11);
    let mut group = c.benchmark_group("online_multisection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for k in [256u32, 1024] {
        group.bench_with_input(BenchmarkId::new("nh-oms", k), &k, |b, &k| {
            let oms = OnlineMultiSection::flat(k, OmsConfig::default()).unwrap();
            b.iter(|| oms.partition_graph(&graph).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fennel", k), &k, |b, &k| {
            b.iter(|| {
                Fennel::new(k, OnePassConfig::default())
                    .partition_graph(&graph)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("oms-hierarchy", k), &k, |b, &k| {
            let r = (k / 64).max(2);
            let hierarchy = HierarchySpec::new(vec![4, 16, r]).unwrap();
            let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
            b.iter(|| oms.partition_graph(&graph).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("oms-hybrid", k), &k, |b, &k| {
            let r = (k / 64).max(2);
            let hierarchy = HierarchySpec::new(vec![4, 16, r]).unwrap();
            let oms = OnlineMultiSection::with_hierarchy(
                hierarchy,
                OmsConfig::default().hashing_bottom_layers(2),
            );
            b.iter(|| oms.partition_graph(&graph).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oms);
criterion_main!(benches);
