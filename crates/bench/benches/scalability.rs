//! Criterion micro-benchmark of the shared-memory parallelisation (§3.4,
//! Table 2 / Fig. 3): parallel OMS and parallel Fennel at 1, 2 and 4 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oms_core::parallel::onepass_parallel;
use oms_core::FlatObjective;
use oms_core::{HierarchySpec, OmsConfig, OnePassConfig, OnlineMultiSection};
use oms_gen::random_geometric_graph;
use std::time::Duration;

fn bench_scalability(c: &mut Criterion) {
    let graph = random_geometric_graph(30_000, 13);
    let k = 1024u32;
    let hierarchy = HierarchySpec::new(vec![4, 16, 16]).unwrap();
    let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());

    let mut group = c.benchmark_group("parallel_scalability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    for &threads in [1usize, 2, 4].iter().filter(|&&t| t <= max_threads) {
        group.bench_with_input(
            BenchmarkId::new("oms-parallel", threads),
            &threads,
            |b, &t| b.iter(|| oms.partition_graph_parallel(&graph, t).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("fennel-parallel", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    onepass_parallel(
                        &graph,
                        k,
                        FlatObjective::Fennel,
                        OnePassConfig::default(),
                        t,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
