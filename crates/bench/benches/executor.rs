//! Micro-benchmarks of the batch executor hot path: batched vs per-node
//! scoring on an in-memory stream, and single- vs double-buffered disk
//! ingest. The full-scale (million-node) comparison lives in the `executor`
//! bench bin, which also records a `BENCH_executor.json` entry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oms_core::{Fennel, OnePassConfig, StreamingPartitioner};
use oms_gen::random_geometric_graph;
use oms_graph::io::{write_stream_file, DiskStream};
use oms_graph::{InMemoryStream, PerNodeBatches};
use std::time::Duration;

fn bench_executor(c: &mut Criterion) {
    let graph = random_geometric_graph(50_000, 13);
    let k = 64u32;
    let fennel = Fennel::new(k, OnePassConfig::default());

    let mut group = c.benchmark_group("executor");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    group.bench_with_input(BenchmarkId::new("memory", "batched"), &k, |b, _| {
        b.iter(|| {
            fennel
                .partition_stream(&mut InMemoryStream::new(&graph))
                .unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("memory", "per-node"), &k, |b, _| {
        b.iter(|| {
            fennel
                .partition_stream(&mut PerNodeBatches(InMemoryStream::new(&graph)))
                .unwrap()
        })
    });

    let path = std::env::temp_dir().join("oms-bench-executor.oms");
    write_stream_file(&graph, &path).unwrap();
    group.bench_with_input(BenchmarkId::new("disk", "single-buffered"), &k, |b, _| {
        b.iter(|| {
            let mut stream = DiskStream::open(&path).unwrap().double_buffered(false);
            fennel.partition_stream(&mut stream).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("disk", "double-buffered"), &k, |b, _| {
        b.iter(|| {
            let mut stream = DiskStream::open(&path).unwrap();
            fennel.partition_stream(&mut stream).unwrap()
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
