//! Random geometric graphs (the paper's `rggX` family).
//!
//! `n` points are drawn uniformly at random in the unit square and two points
//! are connected if their Euclidean distance is below
//! `0.55 · sqrt(ln n / n)` — the exact radius used in the paper (taken from
//! Holtgrewe, Sanders & Schulz). A uniform grid with cells of side `radius`
//! reduces neighbor search to the 3×3 surrounding cells, giving an
//! `O(n + m)` expected running time.
//!
//! Node ids are assigned in spatially sorted (cell-major) order, so the
//! natural stream order has the same locality a mesh-like graph stored on
//! disk would have.

use oms_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The connection radius used by the paper for `n` nodes.
pub fn rgg_radius(n: usize) -> f64 {
    assert!(n >= 2, "radius undefined for fewer than two nodes");
    0.55 * ((n as f64).ln() / n as f64).sqrt()
}

/// Generates a random geometric graph with `n` nodes in the unit square and
/// the paper's default radius.
pub fn random_geometric_graph(n: usize, seed: u64) -> CsrGraph {
    random_geometric_graph_with_radius(n, rgg_radius(n), seed)
}

/// Generates a random geometric graph with an explicit connection `radius`.
pub fn random_geometric_graph_with_radius(n: usize, radius: f64, seed: u64) -> CsrGraph {
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    // Sort points by their grid cell (row-major) so that node ids are
    // spatially coherent.
    let cells_per_side = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((p.1 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    points.sort_by(|a, b| {
        let ca = cell_of(*a);
        let cb = cell_of(*b);
        (ca.1, ca.0)
            .cmp(&(cb.1, cb.0))
            .then(a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    });

    // Bucket points per cell.
    let mut cell_points: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        cell_points[cy * cells_per_side + cx].push(i as u32);
    }

    let r2 = radius * radius;
    let mut builder = GraphBuilder::new(n);
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                for &j in &cell_points[ny as usize * cells_per_side + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let q = points[j as usize];
                    let d2 = (p.0 - q.0) * (p.0 - q.0) + (p.1 - q.1) * (p.1 - q.1);
                    if d2 <= r2 {
                        builder.add_edge(i as NodeId, j as NodeId).unwrap();
                    }
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_matches_paper_formula() {
        let n = 1 << 15;
        let expected = 0.55 * ((n as f64).ln() / n as f64).sqrt();
        assert!((rgg_radius(n) - expected).abs() < 1e-15);
    }

    #[test]
    fn rgg_is_deterministic_per_seed() {
        assert_eq!(
            random_geometric_graph(500, 3),
            random_geometric_graph(500, 3)
        );
        assert_ne!(
            random_geometric_graph(500, 3),
            random_geometric_graph(500, 4)
        );
    }

    #[test]
    fn rgg_density_is_near_expectation() {
        // Expected degree ≈ n · π r² (ignoring boundary effects, which lower it).
        let n = 4000;
        let g = random_geometric_graph(n, 11);
        let r = rgg_radius(n);
        let expected_degree = n as f64 * std::f64::consts::PI * r * r;
        let avg = g.average_degree();
        assert!(
            avg > 0.5 * expected_degree && avg < 1.2 * expected_degree,
            "avg degree {avg}, expected ≈ {expected_degree}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn all_edges_respect_radius_with_explicit_radius() {
        // With a big radius on few nodes the grid has a single cell, so the
        // brute-force check is exact.
        let n = 60;
        let radius = 0.3;
        let g = random_geometric_graph_with_radius(n, radius, 5);
        // Regenerate the same points to verify distances.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let cells_per_side = (1.0 / radius).floor().max(1.0) as usize;
        let cell_of = |p: (f64, f64)| -> (usize, usize) {
            let cx = ((p.0 * cells_per_side as f64) as usize).min(cells_per_side - 1);
            let cy = ((p.1 * cells_per_side as f64) as usize).min(cells_per_side - 1);
            (cx, cy)
        };
        points.sort_by(|a, b| {
            let ca = cell_of(*a);
            let cb = cell_of(*b);
            (ca.1, ca.0)
                .cmp(&(cb.1, cb.0))
                .then(a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        });
        for (u, v, _) in g.edges() {
            let p = points[u as usize];
            let q = points[v as usize];
            let d2 = (p.0 - q.0) * (p.0 - q.0) + (p.1 - q.1) * (p.1 - q.1);
            assert!(d2 <= radius * radius + 1e-12);
        }
    }

    #[test]
    fn spatial_ordering_gives_stream_locality() {
        // Neighboring ids should frequently be close in space, which shows up
        // as a small average id distance along edges compared to random ids.
        let n = 3000;
        let g = random_geometric_graph(n, 21);
        let avg_gap: f64 = g
            .edges()
            .map(|(u, v, _)| (v as f64 - u as f64).abs())
            .sum::<f64>()
            / g.num_edges() as f64;
        assert!(
            avg_gap < n as f64 / 8.0,
            "average id gap {avg_gap} suggests no locality"
        );
    }

    #[test]
    #[should_panic]
    fn zero_radius_panics() {
        random_geometric_graph_with_radius(10, 0.0, 1);
    }
}
