//! Weighted variants of the synthetic graphs.
//!
//! The paper's framework partitions node- and edge-weighted METIS inputs,
//! but every generator in this crate produces unit weights. This module
//! turns any generated graph into a weighted one with two deterministic
//! schemes that mirror how real weighted corpora look:
//!
//! * **power-law node weights** — node weights follow a bounded Pareto
//!   distribution (most nodes light, a heavy tail), the shape of
//!   vertex-weighted circuit and hypergraph-derived instances;
//! * **degree-proportional edge weights** — the weight of `{u, v}` grows
//!   with `deg(u) + deg(v)`, mimicking similarity/co-occurrence graphs
//!   where hub–hub edges carry the most mass.
//!
//! Both schemes reuse the unweighted graph's topology unchanged, so a
//! weighted instance is streamed in exactly the same node order as its
//! unweighted twin — which is what makes weighted-vs-unweighted quality
//! comparisons meaningful. [`WeightScheme`] packages the schemes behind the
//! `weights=` corpus knob used by the CLI and the golden quality suite.

use oms_graph::{CsrGraph, NodeWeight};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Upper bound applied to generated node weights so that a single node can
/// never exceed a block capacity at the corpus' default ε and k.
pub const DEFAULT_MAX_NODE_WEIGHT: NodeWeight = 64;

/// Pareto shape parameter of the power-law node weights (smaller = heavier
/// tail); 1.5 gives a pronounced but not degenerate skew.
const PARETO_SHAPE: f64 = 1.5;

/// Replaces every node weight with a bounded power-law sample in
/// `1..=max_weight` (deterministic in `seed`); the adjacency structure and
/// edge weights are untouched.
///
/// # Panics
///
/// Panics if `max_weight` is zero.
pub fn power_law_node_weights(graph: &CsrGraph, max_weight: NodeWeight, seed: u64) -> CsrGraph {
    assert!(max_weight >= 1, "max_weight must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights: Vec<NodeWeight> = (0..graph.num_nodes())
        .map(|_| {
            // Bounded Pareto via inversion: w = 1 / u^(1/shape), clamped.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let w = u.powf(-1.0 / PARETO_SHAPE);
            (w.floor() as NodeWeight).clamp(1, max_weight)
        })
        .collect();
    graph
        .with_node_weights(weights)
        .expect("generated weights are positive and of the right length")
}

/// Replaces every edge weight `{u, v}` with
/// `1 + (deg(u) + deg(v)) / 2` (deterministic, symmetric); node weights are
/// untouched.
pub fn degree_proportional_edge_weights(graph: &CsrGraph) -> CsrGraph {
    graph
        .map_edge_weights(|u, v, _| 1 + (graph.degree(u) + graph.degree(v)) as u64 / 2)
        .expect("degree-derived weights are positive")
}

/// The `weights=` knob: how a corpus instance is reweighted after
/// generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WeightScheme {
    /// Keep unit weights (the unweighted baseline).
    #[default]
    Unit,
    /// Power-law node weights, unit edge weights.
    Nodes,
    /// Degree-proportional edge weights, unit node weights.
    Edges,
    /// Both node and edge weights.
    Full,
}

impl WeightScheme {
    /// Parses the knob value: `unit`/`none`, `nodes`, `edges` or `full`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "unit" | "none" => Some(WeightScheme::Unit),
            "nodes" => Some(WeightScheme::Nodes),
            "edges" => Some(WeightScheme::Edges),
            "full" => Some(WeightScheme::Full),
            _ => None,
        }
    }

    /// Canonical knob value.
    pub fn name(&self) -> &'static str {
        match self {
            WeightScheme::Unit => "unit",
            WeightScheme::Nodes => "nodes",
            WeightScheme::Edges => "edges",
            WeightScheme::Full => "full",
        }
    }

    /// Applies the scheme to `graph` (node weights drawn with `seed`).
    pub fn apply(&self, graph: &CsrGraph, seed: u64) -> CsrGraph {
        match self {
            WeightScheme::Unit => graph.clone(),
            WeightScheme::Nodes => power_law_node_weights(graph, DEFAULT_MAX_NODE_WEIGHT, seed),
            WeightScheme::Edges => degree_proportional_edge_weights(graph),
            WeightScheme::Full => {
                let nodes = power_law_node_weights(graph, DEFAULT_MAX_NODE_WEIGHT, seed);
                degree_proportional_edge_weights(&nodes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos_renyi_gnm;

    #[test]
    fn power_law_weights_are_bounded_deterministic_and_skewed() {
        let g = erdos_renyi_gnm(2000, 6000, 7);
        let a = power_law_node_weights(&g, 64, 9);
        let b = power_law_node_weights(&g, 64, 9);
        assert_eq!(a, b, "same seed, same weights");
        assert_ne!(
            a.node_weights(),
            power_law_node_weights(&g, 64, 10).node_weights(),
            "different seed, different weights"
        );
        assert!(a.node_weights().iter().all(|&w| (1..=64).contains(&w)));
        // Skew: at least half the nodes stay at weight 1 under shape 1.5
        // (P(w = 1) = 1 - 2^{-1.5} ≈ 0.65), and a tail above 8 exists.
        let ones = a.node_weights().iter().filter(|&&w| w == 1).count();
        assert!(ones * 2 > a.num_nodes(), "expected ≥50% weight-1 nodes");
        assert!(a.node_weights().iter().any(|&w| w > 8), "expected a tail");
        a.validate().unwrap();
        // Topology untouched.
        assert_eq!(a.xadj(), g.xadj());
        assert_eq!(a.adjncy(), g.adjncy());
        assert_eq!(a.edge_weights(), g.edge_weights());
    }

    #[test]
    fn degree_edge_weights_are_symmetric_and_positive() {
        let g = crate::barabasi_albert(500, 3, 11);
        let w = degree_proportional_edge_weights(&g);
        w.validate().unwrap();
        assert_eq!(w.node_weights(), g.node_weights());
        for (u, v, ew) in w.edges() {
            assert_eq!(ew, 1 + (g.degree(u) + g.degree(v)) as u64 / 2);
            assert_eq!(w.edge_weight(v, u), Some(ew), "symmetry");
        }
        // A hub graph has genuinely heterogeneous edge weights.
        let distinct: std::collections::HashSet<u64> = w.edges().map(|(_, _, ew)| ew).collect();
        assert!(distinct.len() > 4, "expected varied weights: {distinct:?}");
    }

    #[test]
    fn scheme_parse_round_trips() {
        for scheme in [
            WeightScheme::Unit,
            WeightScheme::Nodes,
            WeightScheme::Edges,
            WeightScheme::Full,
        ] {
            assert_eq!(WeightScheme::parse(scheme.name()), Some(scheme));
        }
        assert_eq!(WeightScheme::parse("none"), Some(WeightScheme::Unit));
        assert_eq!(WeightScheme::parse("bogus"), None);
    }

    #[test]
    fn unit_scheme_is_identity_and_full_weights_both_sides() {
        let g = erdos_renyi_gnm(300, 900, 3);
        assert_eq!(WeightScheme::Unit.apply(&g, 5), g);
        let full = WeightScheme::Full.apply(&g, 5);
        assert!(!full.is_unweighted());
        assert!(full.node_weights().iter().any(|&w| w > 1));
        assert!(full.edge_weights().iter().any(|&w| w > 1));
        full.validate().unwrap();
        // The node weights of `full` match the `nodes` scheme at the same
        // seed — the schemes compose deterministically.
        assert_eq!(
            full.node_weights(),
            WeightScheme::Nodes.apply(&g, 5).node_weights()
        );
    }
}
