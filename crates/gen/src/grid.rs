//! Regular grid and torus meshes.
//!
//! Structured meshes stand in for the finite-element matrices of the paper's
//! corpus (`Dubcova1`, `ML_Laplace`, `Flan_1565`, `HV15R`, `Bump_2911`): low,
//! nearly constant degree and strong locality in the natural node order —
//! the regime in which streaming partitioners produce their best cuts.

use oms_graph::{CsrGraph, GraphBuilder, NodeId};

/// Generates a `width × height` 4-connected grid graph.
///
/// Node `(x, y)` has id `y * width + x`, so the natural stream order is
/// row-major, giving the same strong stream locality a mesh stored in
/// lexicographic order has.
pub fn grid_2d(width: usize, height: usize) -> CsrGraph {
    let n = width * height;
    let mut builder = GraphBuilder::with_capacity(n, 2 * n);
    let id = |x: usize, y: usize| (y * width + x) as NodeId;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                builder.add_edge(id(x, y), id(x + 1, y)).unwrap();
            }
            if y + 1 < height {
                builder.add_edge(id(x, y), id(x, y + 1)).unwrap();
            }
        }
    }
    builder.build()
}

/// Generates a `width × height` torus (grid with wrap-around edges).
pub fn torus_2d(width: usize, height: usize) -> CsrGraph {
    assert!(width >= 3 && height >= 3, "torus needs both dimensions ≥ 3");
    let n = width * height;
    let mut builder = GraphBuilder::with_capacity(n, 2 * n);
    let id = |x: usize, y: usize| (y * width + x) as NodeId;
    for y in 0..height {
        for x in 0..width {
            builder.add_edge(id(x, y), id((x + 1) % width, y)).unwrap();
            builder.add_edge(id(x, y), id(x, (y + 1) % height)).unwrap();
        }
    }
    builder.build()
}

/// Generates an `nx × ny × nz` 6-connected 3D grid graph.
///
/// Node `(x, y, z)` has id `z * nx * ny + y * nx + x`.
pub fn grid_3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    let n = nx * ny * nz;
    let mut builder = GraphBuilder::with_capacity(n, 3 * n);
    let id = |x: usize, y: usize, z: usize| (z * nx * ny + y * nx + x) as NodeId;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    builder.add_edge(id(x, y, z), id(x + 1, y, z)).unwrap();
                }
                if y + 1 < ny {
                    builder.add_edge(id(x, y, z), id(x, y + 1, z)).unwrap();
                }
                if z + 1 < nz {
                    builder.add_edge(id(x, y, z), id(x, y, z + 1)).unwrap();
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::traversal::is_connected;

    #[test]
    fn grid_2d_counts() {
        let g = grid_2d(10, 7);
        assert_eq!(g.num_nodes(), 70);
        // horizontal: 9*7, vertical: 10*6
        assert_eq!(g.num_edges(), 9 * 7 + 10 * 6);
        g.validate().unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_2d_corner_and_interior_degrees() {
        let g = grid_2d(5, 5);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(12), 4); // center (2,2)
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus_2d(6, 5);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_edges(), 2 * 30);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_3d_counts() {
        let g = grid_3d(4, 3, 2);
        assert_eq!(g.num_nodes(), 24);
        let expected = 3 * 3 * 2 + 4 * 2 * 2 + 4 * 3;
        assert_eq!(g.num_edges(), expected);
        assert_eq!(g.max_degree(), 6.min(g.max_degree()));
        assert!(is_connected(&g));
    }

    #[test]
    fn degenerate_grids() {
        let line = grid_2d(10, 1);
        assert_eq!(line.num_edges(), 9);
        let single = grid_2d(1, 1);
        assert_eq!(single.num_nodes(), 1);
        assert_eq!(single.num_edges(), 0);
    }

    #[test]
    #[should_panic]
    fn tiny_torus_panics() {
        torus_2d(2, 5);
    }
}
