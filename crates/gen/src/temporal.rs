//! Timestamped temporal edge streams, emitted as delta traces.
//!
//! Where [`crate::churn`] models *maintenance noise* (random edits around a
//! standing graph), this module models *graphs that grow through time*:
//! each [`DeltaBatch`] is one timestamp window of an evolving network, so a
//! trace replayed checkpoint by checkpoint traces the network's history.
//! Three temporal shapes cover the usual dynamics of the temporal-graph
//! literature:
//!
//! * [`TemporalScheme::PreferentialAttachment`] — new nodes arrive over
//!   time and wire degree-proportionally into the existing graph (rich get
//!   richer): hubs intensify as the trace advances.
//! * [`TemporalScheme::CommunityDrift`] — the active community pair
//!   rotates per window while the community left behind ages out its
//!   internal edges: the community structure *migrates*, forcing a
//!   partition to follow.
//! * [`TemporalScheme::BurstArrivals`] — quiet windows carrying a trickle
//!   of background edges are punctuated every `period`-th window by a
//!   burst concentrated in a sliding id hotspot.
//!
//! All schemes additionally *age* the graph: a `delete_fraction` of each
//! window's operations remove the globally oldest live edges (a FIFO over
//! insertion time), so long traces do not grow without bound.
//!
//! Traces are valid by construction against the start graph (same
//! guarantee as [`crate::churn`]) and fully determined by
//! `(graph, config)` — one `ChaCha8` stream per trace.

use crate::churn::Mirror;
use oms_graph::{CsrGraph, DeltaBatch, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How a temporal window's edges are produced (see the
/// [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TemporalScheme {
    /// New nodes arrive and attach degree-proportionally.
    PreferentialAttachment {
        /// Edges each arriving node wires into the existing graph.
        edges_per_node: usize,
    },
    /// The active community pair rotates per window; the community left
    /// behind ages out its internal edges.
    CommunityDrift {
        /// Number of id-modulo communities (≥ 2).
        communities: u32,
    },
    /// Quiet windows punctuated by hotspot bursts.
    BurstArrivals {
        /// A burst fires every `period`-th window (≥ 1).
        period: usize,
    },
}

/// Parameters of a temporal trace.
#[derive(Clone, Copy, Debug)]
pub struct TemporalConfig {
    /// Temporal shape.
    pub scheme: TemporalScheme,
    /// Number of timestamp windows (= delta batches).
    pub batches: usize,
    /// Operations attempted per window (bursty schemes modulate this per
    /// window; an attempt is skipped when no valid operation exists).
    pub ops_per_batch: usize,
    /// Fraction of each window's operations that age out the oldest live
    /// edges instead of inserting.
    pub delete_fraction: f64,
    /// RNG seed; together with the start graph it fully determines the
    /// trace.
    pub seed: u64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        TemporalConfig {
            scheme: TemporalScheme::PreferentialAttachment { edges_per_node: 3 },
            batches: 8,
            ops_per_batch: 64,
            delete_fraction: 0.25,
            seed: 0,
        }
    }
}

/// Retries when rejection-sampling a constrained endpoint.
const RETRIES: usize = 64;

/// Oldest-first queue of live edges: insertion order is age, deletions are
/// lazily skipped on pop.
struct EdgeAge {
    fifo: std::collections::VecDeque<(NodeId, NodeId)>,
}

impl EdgeAge {
    fn new(graph: &CsrGraph) -> Self {
        EdgeAge {
            fifo: graph.edges().map(|(u, v, _)| (u, v)).collect(),
        }
    }

    fn push(&mut self, u: NodeId, v: NodeId) {
        self.fifo.push_back((u, v));
    }

    /// Pops the oldest edge still present in `mirror` (skipping entries
    /// deleted through other paths, e.g. node removal).
    fn pop_oldest(&mut self, mirror: &Mirror) -> Option<(NodeId, NodeId)> {
        while let Some((u, v)) = self.fifo.pop_front() {
            if mirror.alive[u as usize] && mirror.alive[v as usize] && mirror.has_edge(u, v) {
                return Some((u, v));
            }
        }
        None
    }
}

/// Degree-proportional endpoint draw via the endpoint list trick: every
/// insertion pushes both endpoints, so a uniform draw over the list is a
/// degree-weighted draw over nodes. Dead entries are rejected.
struct EndpointList {
    ends: Vec<NodeId>,
}

impl EndpointList {
    fn new(graph: &CsrGraph) -> Self {
        let mut ends = Vec::with_capacity(graph.num_edges() * 2);
        for (u, v, _) in graph.edges() {
            ends.push(u);
            ends.push(v);
        }
        EndpointList { ends }
    }

    fn push(&mut self, u: NodeId, v: NodeId) {
        self.ends.push(u);
        self.ends.push(v);
    }

    fn sample(&self, mirror: &Mirror, rng: &mut ChaCha8Rng) -> Option<NodeId> {
        if self.ends.is_empty() {
            return mirror.sample_live(rng);
        }
        for _ in 0..RETRIES {
            let v = self.ends[rng.gen_range(0..self.ends.len())];
            if mirror.alive[v as usize] {
                return Some(v);
            }
        }
        mirror.sample_live(rng)
    }
}

/// Ops budget of window `batch_no` under the scheme: bursty schemes run
/// quiet windows at a quarter budget and burst windows at full budget.
fn window_budget(scheme: TemporalScheme, batch_no: usize, ops: usize) -> usize {
    match scheme {
        TemporalScheme::BurstArrivals { period } => {
            let period = period.max(1);
            if (batch_no + 1).is_multiple_of(period) {
                ops
            } else {
                (ops / 4).max(1)
            }
        }
        _ => ops,
    }
}

/// Generates a temporal trace over `graph`: `config.batches` timestamp
/// windows, each a [`DeltaBatch`] valid against the graph state left by
/// its predecessors. See the [module docs](self) for the shapes.
pub fn temporal_trace(graph: &CsrGraph, config: &TemporalConfig) -> Vec<DeltaBatch> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut mirror = Mirror::new(graph);
    let mut ages = EdgeAge::new(graph);
    let mut endpoints = EndpointList::new(graph);
    let mut trace = Vec::with_capacity(config.batches);
    let delete_fraction = config.delete_fraction.clamp(0.0, 1.0);

    for batch_no in 0..config.batches {
        let budget = window_budget(config.scheme, batch_no, config.ops_per_batch);
        let mut batch = DeltaBatch::with_capacity(budget);
        let mut pending_attach = 0usize; // PA: edges still owed by the newest node
        let mut newest: NodeId = 0;

        for _ in 0..budget {
            // Aging first: it is scheme-independent.
            if rng.gen_bool(delete_fraction) {
                let victim = match config.scheme {
                    // Drift ages the community left behind when possible.
                    TemporalScheme::CommunityDrift { communities } => {
                        age_in_community(&mut ages, &mirror, communities, batch_no)
                    }
                    _ => ages.pop_oldest(&mirror),
                };
                if let Some((u, v)) = victim {
                    mirror.delete_edge(u, v);
                    batch.delete_edge(u, v);
                }
                continue;
            }

            match config.scheme {
                TemporalScheme::PreferentialAttachment { edges_per_node } => {
                    if pending_attach == 0 {
                        // A new node arrives at this timestamp.
                        newest = mirror.insert_node();
                        batch.insert_node(newest, 1);
                        pending_attach = edges_per_node.max(1);
                    } else if let Some((u, v)) = attach_edge(&mirror, &endpoints, newest, &mut rng)
                    {
                        mirror.insert_edge(u, v);
                        endpoints.push(u, v);
                        ages.push(u, v);
                        batch.insert_edge(u, v, 1);
                        pending_attach -= 1;
                    } else {
                        pending_attach = 0;
                    }
                }
                TemporalScheme::CommunityDrift { communities } => {
                    if let Some((u, v)) = drift_edge(&mirror, communities, batch_no, &mut rng) {
                        mirror.insert_edge(u, v);
                        endpoints.push(u, v);
                        ages.push(u, v);
                        batch.insert_edge(u, v, 1);
                    }
                }
                TemporalScheme::BurstArrivals { period } => {
                    let bursting = (batch_no + 1) % period.max(1) == 0;
                    if let Some((u, v)) = burst_edge(&mirror, bursting, batch_no, &mut rng) {
                        mirror.insert_edge(u, v);
                        endpoints.push(u, v);
                        ages.push(u, v);
                        batch.insert_edge(u, v, 1);
                    }
                }
            }
        }
        trace.push(batch);
    }
    trace
}

/// PA attachment: wire `newest` to a degree-proportional partner that is
/// not itself and not already adjacent.
fn attach_edge(
    mirror: &Mirror,
    endpoints: &EndpointList,
    newest: NodeId,
    rng: &mut ChaCha8Rng,
) -> Option<(NodeId, NodeId)> {
    for _ in 0..RETRIES {
        let partner = endpoints.sample(mirror, rng)?;
        if partner != newest && !mirror.has_edge(newest, partner) {
            return Some((newest, partner));
        }
    }
    None
}

/// Drift insertion: an absent edge between the window's active community
/// pair (`batch_no % c`, `batch_no + 1 % c`).
fn drift_edge(
    mirror: &Mirror,
    communities: u32,
    batch_no: usize,
    rng: &mut ChaCha8Rng,
) -> Option<(NodeId, NodeId)> {
    let c = communities.max(2);
    let (a, b) = ((batch_no as u32) % c, (batch_no as u32 + 1) % c);
    let pick = |want: u32, mirror: &Mirror, rng: &mut ChaCha8Rng| -> Option<NodeId> {
        for _ in 0..RETRIES {
            let v = mirror.sample_live(rng)?;
            if v % c == want {
                return Some(v);
            }
        }
        mirror.sample_live(rng)
    };
    for _ in 0..RETRIES {
        let (u, v) = (pick(a, mirror, rng)?, pick(b, mirror, rng)?);
        if u != v && !mirror.has_edge(u, v) {
            return Some((u, v));
        }
    }
    None
}

/// Drift aging: pop the oldest edge with an endpoint in the community the
/// drift leaves behind; falls back to the globally oldest edge.
fn age_in_community(
    ages: &mut EdgeAge,
    mirror: &Mirror,
    communities: u32,
    batch_no: usize,
) -> Option<(NodeId, NodeId)> {
    let c = communities.max(2);
    let left_behind = (batch_no as u32) % c;
    // Scan a bounded prefix of the age queue for a community match so the
    // bias cannot degenerate into an O(m) search per delete.
    for _ in 0..RETRIES {
        let (u, v) = ages.pop_oldest(mirror)?;
        if u % c == left_behind || v % c == left_behind {
            return Some((u, v));
        }
        ages.push(u, v); // recycle: no longer oldest, but still live
    }
    ages.pop_oldest(mirror)
}

/// Burst insertion: endpoints inside a sliding tenth-of-the-id-space
/// hotspot during bursts, uniform background otherwise.
fn burst_edge(
    mirror: &Mirror,
    bursting: bool,
    batch_no: usize,
    rng: &mut ChaCha8Rng,
) -> Option<(NodeId, NodeId)> {
    let n = mirror.id_space();
    let w = (n / 10).max(2).min(n);
    let start = (batch_no * w) % n;
    let inside = |v: NodeId| {
        let v = v as usize;
        let end = start + w;
        if end <= n {
            v >= start && v < end
        } else {
            v >= start || v < end - n
        }
    };
    let pick = |mirror: &Mirror, rng: &mut ChaCha8Rng| -> Option<NodeId> {
        if !bursting {
            return mirror.sample_live(rng);
        }
        for _ in 0..RETRIES {
            let v = mirror.sample_live(rng)?;
            if inside(v) {
                return Some(v);
            }
        }
        mirror.sample_live(rng)
    };
    for _ in 0..RETRIES {
        let (u, v) = (pick(mirror, rng)?, pick(mirror, rng)?);
        if u != v && !mirror.has_edge(u, v) {
            return Some((u, v));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos_renyi_gnm;
    use oms_graph::Delta;

    fn base() -> CsrGraph {
        erdos_renyi_gnm(120, 480, 5)
    }

    fn schemes() -> [TemporalScheme; 3] {
        [
            TemporalScheme::PreferentialAttachment { edges_per_node: 3 },
            TemporalScheme::CommunityDrift { communities: 5 },
            TemporalScheme::BurstArrivals { period: 3 },
        ]
    }

    #[test]
    fn traces_are_reproducible_at_fixed_seeds() {
        for scheme in schemes() {
            let g = base();
            let config = TemporalConfig {
                scheme,
                ..TemporalConfig::default()
            };
            let (a, b) = (temporal_trace(&g, &config), temporal_trace(&g, &config));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.len(), y.len());
                for i in 0..x.len() {
                    assert_eq!(x.get(i), y.get(i));
                }
            }
        }
    }

    #[test]
    fn traces_are_valid_against_an_independent_mirror() {
        for scheme in schemes() {
            let g = base();
            let trace = temporal_trace(
                &g,
                &TemporalConfig {
                    scheme,
                    batches: 10,
                    ops_per_batch: 90,
                    ..TemporalConfig::default()
                },
            );
            assert_eq!(trace.len(), 10);
            let mut mirror = Mirror::new(&g);
            for batch in &trace {
                for delta in batch.iter() {
                    match delta {
                        Delta::EdgeInsert { u, v, .. } => {
                            assert!(u != v && mirror.alive[u as usize] && mirror.alive[v as usize]);
                            assert!(!mirror.has_edge(u, v), "duplicate insert {u}-{v}");
                            mirror.insert_edge(u, v);
                        }
                        Delta::EdgeDelete { u, v } => {
                            assert!(mirror.has_edge(u, v), "deleting absent edge {u}-{v}");
                            mirror.delete_edge(u, v);
                        }
                        Delta::NodeInsert { node, .. } => {
                            assert_eq!(node as usize, mirror.id_space(), "non-fresh id");
                            mirror.insert_node();
                        }
                        Delta::NodeDelete { node } => {
                            mirror.delete_node(node);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn preferential_attachment_grows_the_id_space() {
        let g = base();
        let trace = temporal_trace(
            &g,
            &TemporalConfig {
                scheme: TemporalScheme::PreferentialAttachment { edges_per_node: 3 },
                batches: 6,
                ops_per_batch: 80,
                delete_fraction: 0.1,
                seed: 2,
            },
        );
        let arrivals: usize = trace
            .iter()
            .map(|b| {
                (0..b.len())
                    .filter(|&i| matches!(b.get(i), Delta::NodeInsert { .. }))
                    .count()
            })
            .sum();
        assert!(
            arrivals >= 6,
            "PA must grow the node set: {arrivals} arrivals"
        );
    }

    #[test]
    fn aging_deletes_oldest_edges_first() {
        let g = base();
        let first_edge = g.edges().next().map(|(u, v, _)| (u, v)).unwrap();
        let trace = temporal_trace(
            &g,
            &TemporalConfig {
                scheme: TemporalScheme::BurstArrivals { period: 2 },
                batches: 4,
                ops_per_batch: 100,
                delete_fraction: 0.5,
                seed: 7,
            },
        );
        // The very first delete the trace performs must be the graph's
        // oldest edge (stream order = age for the seed graph).
        let first_delete = trace.iter().flat_map(|b| b.iter()).find_map(|d| match d {
            Delta::EdgeDelete { u, v } => Some((u, v)),
            _ => None,
        });
        assert_eq!(first_delete, Some(first_edge));
    }

    #[test]
    fn bursts_modulate_window_size() {
        let g = base();
        let trace = temporal_trace(
            &g,
            &TemporalConfig {
                scheme: TemporalScheme::BurstArrivals { period: 4 },
                batches: 8,
                ops_per_batch: 80,
                delete_fraction: 0.0,
                seed: 3,
            },
        );
        // Windows 3 and 7 (1-based 4 and 8) burst; the rest idle at a
        // quarter budget. Compare realized batch sizes.
        let sizes: Vec<usize> = trace.iter().map(DeltaBatch::len).collect();
        assert!(
            sizes[3] > sizes[2] * 2,
            "burst window not larger: {sizes:?}"
        );
        assert!(
            sizes[7] > sizes[6] * 2,
            "burst window not larger: {sizes:?}"
        );
    }
}
