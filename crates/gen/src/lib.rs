//! # oms-gen
//!
//! Synthetic graph generators used to reproduce the evaluation of the OMS
//! paper on commodity hardware.
//!
//! The paper benchmarks on 26 real-world graphs (SNAP, DIMACS, SuiteSparse)
//! spanning six structural classes — meshes, circuits, citations, web, social
//! and road networks — plus two artificial families (`rggX`, `delX`). The
//! real datasets are not redistributable here, so this crate provides
//! generators whose outputs match the structural properties that matter for
//! one-pass streaming partitioners (degree distribution, locality of the
//! natural stream order, density):
//!
//! * [`rgg::random_geometric_graph`] — the paper's `rggX` family.
//! * [`delaunay::delaunay_graph`] — the paper's `delX` family (Bowyer–Watson).
//! * [`grid`] — 2D/3D meshes (stand-in for the FE meshes such as `HV15R`).
//! * [`ba::barabasi_albert`] and [`rmat::rmat_graph`] — heavy-tailed social /
//!   web / citation-like graphs.
//! * [`er::erdos_renyi_gnm`] — sparse quasi-regular graphs (circuit-like).
//! * [`sbm::planted_partition`] — community-structured graphs with a known
//!   ground truth, useful for sanity-checking partition quality.
//! * [`corpus`] — a named benchmark corpus mirroring Table 1 of the paper,
//!   scaled by a user-chosen factor.
//! * [`weights`] — deterministic reweighting schemes (power-law node
//!   weights, degree-proportional edge weights) behind the `weights=` corpus
//!   knob, opening the weighted workload axis on any generated graph.
//! * [`churn`] — seeded, valid-by-construction delta traces (uniform,
//!   community-drift, burst) feeding the `oms-dynamic` maintenance layer.
//! * [`temporal`] — timestamped temporal edge streams (preferential
//!   attachment over time, migrating communities, burst arrivals) emitted
//!   as delta traces, one batch per timestamp window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod churn;
pub mod corpus;
pub mod delaunay;
pub mod er;
pub mod grid;
pub mod rgg;
pub mod rmat;
pub mod sbm;
pub mod temporal;
pub mod weights;

pub use ba::barabasi_albert;
pub use churn::{churn_trace, ChurnConfig, ChurnScheme};
pub use corpus::{
    corpus_graph, corpus_graph_weighted, scaled_corpus, scaled_corpus_weighted, CorpusClass,
    CorpusEntry,
};
pub use delaunay::delaunay_graph;
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use grid::{grid_2d, grid_3d, torus_2d};
pub use rgg::random_geometric_graph;
pub use rmat::{rmat_graph, RmatParams};
pub use sbm::planted_partition;
pub use temporal::{temporal_trace, TemporalConfig, TemporalScheme};
pub use weights::{degree_proportional_edge_weights, power_law_node_weights, WeightScheme};
