//! R-MAT (recursive matrix) graphs.
//!
//! R-MAT produces graphs with skewed degree distributions and community-like
//! structure; with the classic `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`
//! parameters it is a standard model for web crawls and social networks
//! (`eu-2005`, `web-Google`, `soc-orkut-dir` in the paper's corpus).

use oms_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Quadrant probabilities of the R-MAT recursion.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl RmatParams {
    /// The classic Graph500-style parameters producing a heavy-tailed,
    /// community-structured graph.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Uniform parameters, equivalent to an Erdős–Rényi graph.
    pub const UNIFORM: RmatParams = RmatParams {
        a: 0.25,
        b: 0.25,
        c: 0.25,
        d: 0.25,
    };

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT probabilities must sum to 1 (got {sum})"
        );
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0);
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams::GRAPH500
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and (up to) `num_edges`
/// undirected edges.
///
/// Self loops and duplicates produced by the recursion are dropped, so the
/// final edge count can be slightly below `num_edges` — the same behaviour as
/// the reference generator.
pub fn rmat_graph(scale: u32, num_edges: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    assert!(scale < 31, "scale must keep node ids within u32");
    let n = 1usize << scale;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, num_edges);
    for _ in 0..num_edges {
        let (u, v) = sample_edge(scale, &params, &mut rng);
        builder.add_edge(u, v).unwrap();
    }
    builder.build()
}

fn sample_edge(scale: u32, p: &RmatParams, rng: &mut ChaCha8Rng) -> (NodeId, NodeId) {
    let mut u: u32 = 0;
    let mut v: u32 = 0;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: no bits set
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat_graph(10, 4000, RmatParams::default(), 3);
        assert_eq!(g.num_nodes(), 1024);
        g.validate().unwrap();
    }

    #[test]
    fn edge_count_is_close_to_requested() {
        let g = rmat_graph(12, 20_000, RmatParams::default(), 17);
        assert!(g.num_edges() <= 20_000);
        // Duplicate collisions remove some edges but the bulk must survive.
        assert!(g.num_edges() > 15_000, "only {} edges", g.num_edges());
    }

    #[test]
    fn graph500_parameters_give_skewed_degrees() {
        let g = rmat_graph(12, 30_000, RmatParams::GRAPH500, 23);
        let avg = g.average_degree();
        assert!(g.max_degree() as f64 > 8.0 * avg);
    }

    #[test]
    fn uniform_parameters_give_flat_degrees() {
        let skewed = rmat_graph(12, 30_000, RmatParams::GRAPH500, 23);
        let uniform = rmat_graph(12, 30_000, RmatParams::UNIFORM, 23);
        assert!(uniform.max_degree() < skewed.max_degree());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat_graph(8, 1000, RmatParams::default(), 5);
        let b = rmat_graph(8, 1000, RmatParams::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_panic() {
        let params = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
        };
        rmat_graph(4, 10, params, 1);
    }
}
