//! A named synthetic corpus mirroring Table 1 of the paper.
//!
//! The paper evaluates on 26 real-world and 2 artificial graph families.
//! Redistribution of the real datasets is not possible here, so each instance
//! is replaced by a synthetic graph of the same *structural class* (meshes,
//! circuits, citations, web, social, roads, similarity, artificial) and of a
//! configurable size. The default sizes are chosen so that the full
//! evaluation pipeline runs on a laptop in minutes; the `scale` parameter
//! grows every instance proportionally for larger experiments.

use crate::{
    ba::barabasi_albert,
    delaunay::delaunay_graph,
    er::erdos_renyi_gnm,
    grid::{grid_2d, grid_3d},
    rgg::random_geometric_graph,
    rmat::{rmat_graph, RmatParams},
    sbm::planted_partition,
};
use oms_graph::CsrGraph;

/// Structural class of a corpus instance, following Table 1's "Type" column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CorpusClass {
    /// Finite-element meshes (`Dubcova1`, `ML_Laplace`, `HV15R`, …).
    Meshes,
    /// Circuit netlists (`hcircuit`, `FullChip`, `circuit5M`).
    Circuit,
    /// Citation / co-authorship networks (`coAuthorsDBLP`, `cit-Patents`, …).
    Citations,
    /// Web crawls (`Web-NotreDame`, `eu-2005`, `web-Google`).
    Web,
    /// Social networks (`soc-orkut-dir`, `soc-LiveJournal1`, `Ljournal-2008`).
    Social,
    /// Road networks (`italy-osm`, `great-britain-osm`, `ca-hollywood-2009`¹).
    ///
    /// ¹ the paper lists `ca-hollywood-2009` under "Roads"; we follow the
    /// table verbatim.
    Roads,
    /// Similarity graphs (`Amazon-2008`).
    Similarity,
    /// Artificial families (`del21`, `rgg21`).
    Artificial,
}

impl CorpusClass {
    /// Whether instances of this class have heavy-tailed (hub-dominated)
    /// degree distributions — preferential attachment and skewed-RMAT
    /// families. These are the graphs on which balanced edge-cut
    /// partitioning turns pathological and vertex-cut (edge) partitioning
    /// is the right model; the `edgepart` bench uses this to annotate its
    /// tables.
    pub fn hub_heavy(&self) -> bool {
        matches!(
            self,
            CorpusClass::Citations | CorpusClass::Web | CorpusClass::Social
        )
    }

    /// Short lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CorpusClass::Meshes => "meshes",
            CorpusClass::Circuit => "circuit",
            CorpusClass::Citations => "citations",
            CorpusClass::Web => "web",
            CorpusClass::Social => "social",
            CorpusClass::Roads => "roads",
            CorpusClass::Similarity => "similarity",
            CorpusClass::Artificial => "artificial",
        }
    }
}

/// Recipe used to synthesise one corpus instance.
#[derive(Clone, Copy, Debug)]
enum GenSpec {
    Grid2D {
        width: usize,
        height: usize,
    },
    Grid3D {
        nx: usize,
        ny: usize,
        nz: usize,
    },
    Rgg {
        n: usize,
    },
    Delaunay {
        n: usize,
    },
    BarabasiAlbert {
        n: usize,
        attach: usize,
    },
    Rmat {
        scale_exp: u32,
        edge_factor: usize,
        skewed: bool,
    },
    ErGnm {
        n: usize,
        m: usize,
    },
    Planted {
        n: usize,
        blocks: usize,
    },
}

/// One named instance of the synthetic corpus.
#[derive(Clone, Copy, Debug)]
pub struct CorpusEntry {
    /// Instance name; matches the corresponding Table 1 name with a `syn-`
    /// prefix to make the substitution explicit.
    pub name: &'static str,
    /// Structural class.
    pub class: CorpusClass,
    spec: GenSpec,
}

impl CorpusEntry {
    /// Approximate number of nodes of the instance at scale 1.0.
    pub fn base_nodes(&self) -> usize {
        match self.spec {
            GenSpec::Grid2D { width, height } => width * height,
            GenSpec::Grid3D { nx, ny, nz } => nx * ny * nz,
            GenSpec::Rgg { n }
            | GenSpec::Delaunay { n }
            | GenSpec::BarabasiAlbert { n, .. }
            | GenSpec::ErGnm { n, .. }
            | GenSpec::Planted { n, .. } => n,
            GenSpec::Rmat { scale_exp, .. } => 1usize << scale_exp,
        }
    }
}

/// The full corpus specification (14 instances covering every class of
/// Table 1 plus the two artificial families).
pub const CORPUS: &[CorpusEntry] = &[
    CorpusEntry {
        name: "syn-Dubcova1",
        class: CorpusClass::Meshes,
        spec: GenSpec::Grid2D {
            width: 128,
            height: 126,
        },
    },
    CorpusEntry {
        name: "syn-ML_Laplace",
        class: CorpusClass::Meshes,
        spec: GenSpec::Grid3D {
            nx: 32,
            ny: 32,
            nz: 30,
        },
    },
    CorpusEntry {
        name: "syn-HV15R",
        class: CorpusClass::Meshes,
        spec: GenSpec::Grid3D {
            nx: 40,
            ny: 36,
            nz: 32,
        },
    },
    CorpusEntry {
        name: "syn-hcircuit",
        class: CorpusClass::Circuit,
        spec: GenSpec::ErGnm {
            n: 26_000,
            m: 52_000,
        },
    },
    CorpusEntry {
        name: "syn-FullChip",
        class: CorpusClass::Circuit,
        spec: GenSpec::ErGnm {
            n: 48_000,
            m: 190_000,
        },
    },
    CorpusEntry {
        name: "syn-coAuthorsDBLP",
        class: CorpusClass::Citations,
        spec: GenSpec::BarabasiAlbert {
            n: 30_000,
            attach: 3,
        },
    },
    CorpusEntry {
        name: "syn-cit-Patents",
        class: CorpusClass::Citations,
        spec: GenSpec::BarabasiAlbert {
            n: 60_000,
            attach: 4,
        },
    },
    CorpusEntry {
        name: "syn-web-Google",
        class: CorpusClass::Web,
        spec: GenSpec::Rmat {
            scale_exp: 15,
            edge_factor: 5,
            skewed: true,
        },
    },
    CorpusEntry {
        name: "syn-eu-2005",
        class: CorpusClass::Web,
        spec: GenSpec::Rmat {
            scale_exp: 14,
            edge_factor: 18,
            skewed: true,
        },
    },
    CorpusEntry {
        name: "syn-soc-LiveJournal1",
        class: CorpusClass::Social,
        spec: GenSpec::Rmat {
            scale_exp: 16,
            edge_factor: 9,
            skewed: true,
        },
    },
    CorpusEntry {
        name: "syn-soc-orkut-dir",
        class: CorpusClass::Social,
        spec: GenSpec::Rmat {
            scale_exp: 15,
            edge_factor: 38,
            skewed: true,
        },
    },
    CorpusEntry {
        name: "syn-italy-osm",
        class: CorpusClass::Roads,
        spec: GenSpec::Rgg { n: 65_000 },
    },
    CorpusEntry {
        name: "syn-Amazon-2008",
        class: CorpusClass::Similarity,
        spec: GenSpec::Planted {
            n: 40_000,
            blocks: 64,
        },
    },
    CorpusEntry {
        name: "syn-del18",
        class: CorpusClass::Artificial,
        spec: GenSpec::Delaunay { n: 50_000 },
    },
    CorpusEntry {
        name: "syn-rgg18",
        class: CorpusClass::Artificial,
        spec: GenSpec::Rgg { n: 60_000 },
    },
];

/// Builds a single corpus instance at the given `scale`.
///
/// `scale` multiplies the number of nodes (and edges where applicable);
/// `seed` makes the instance reproducible.
pub fn corpus_graph(entry: &CorpusEntry, scale: f64, seed: u64) -> CsrGraph {
    assert!(scale > 0.0, "scale must be positive");
    let s = |x: usize| ((x as f64 * scale).round() as usize).max(4);
    let sdim = |x: usize| ((x as f64 * scale.cbrt()).round() as usize).max(2);
    let sdim2 = |x: usize| ((x as f64 * scale.sqrt()).round() as usize).max(2);
    match entry.spec {
        GenSpec::Grid2D { width, height } => grid_2d(sdim2(width), sdim2(height)),
        GenSpec::Grid3D { nx, ny, nz } => grid_3d(sdim(nx), sdim(ny), sdim(nz)),
        GenSpec::Rgg { n } => random_geometric_graph(s(n), seed),
        GenSpec::Delaunay { n } => delaunay_graph(s(n), seed),
        GenSpec::BarabasiAlbert { n, attach } => barabasi_albert(s(n), attach, seed),
        GenSpec::Rmat {
            scale_exp,
            edge_factor,
            skewed,
        } => {
            // Scale the implicit node count 2^scale_exp by adjusting the
            // exponent with log2(scale); edges follow the edge factor.
            let extra = scale.log2().round() as i32;
            let exp = (scale_exp as i32 + extra).clamp(8, 26) as u32;
            let n = 1usize << exp;
            let params = if skewed {
                RmatParams::GRAPH500
            } else {
                RmatParams::UNIFORM
            };
            rmat_graph(exp, n * edge_factor, params, seed)
        }
        GenSpec::ErGnm { n, m } => erdos_renyi_gnm(s(n), s(m), seed),
        GenSpec::Planted { n, blocks } => planted_partition(s(n), blocks, 0.004, 0.00002, seed)
            .max_by_edges(erdos_renyi_gnm(s(n), 2 * s(n), seed.wrapping_add(1))),
    }
}

/// Builds a single corpus instance at the given `scale` and reweights it
/// with `scheme` (the `weights=` corpus knob).
///
/// The topology is byte-identical to [`corpus_graph`] at the same
/// `(scale, seed)` — only the weights change — so weighted and unweighted
/// runs of the same instance see the same stream order.
pub fn corpus_graph_weighted(
    entry: &CorpusEntry,
    scale: f64,
    seed: u64,
    scheme: crate::weights::WeightScheme,
) -> CsrGraph {
    let graph = corpus_graph(entry, scale, seed);
    // Unit is the identity; skip WeightScheme::apply's clone so unweighted
    // corpus builds (every pre-existing caller) stay copy-free.
    match scheme {
        crate::weights::WeightScheme::Unit => graph,
        scheme => scheme.apply(&graph, seed),
    }
}

/// Helper trait used by [`corpus_graph`] to pick the denser of two candidate
/// graphs (the planted-partition generator can come out too sparse at very
/// small scales).
trait MaxByEdges {
    fn max_by_edges(self, other: CsrGraph) -> CsrGraph;
}

impl MaxByEdges for CsrGraph {
    fn max_by_edges(self, other: CsrGraph) -> CsrGraph {
        if self.num_edges() >= other.num_edges() {
            self
        } else {
            other
        }
    }
}

/// Builds the whole corpus at the given scale. Returns `(name, class, graph)`
/// triples in Table 1 order.
pub fn scaled_corpus(scale: f64, seed: u64) -> Vec<(String, CorpusClass, CsrGraph)> {
    scaled_corpus_weighted(scale, seed, crate::weights::WeightScheme::Unit)
}

/// [`scaled_corpus`] with the `weights=` knob applied to every instance.
pub fn scaled_corpus_weighted(
    scale: f64,
    seed: u64,
    scheme: crate::weights::WeightScheme,
) -> Vec<(String, CorpusClass, CsrGraph)> {
    CORPUS
        .iter()
        .map(|entry| {
            (
                entry.name.to_string(),
                entry.class,
                corpus_graph_weighted(entry, scale, seed, scheme),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_class() {
        use std::collections::HashSet;
        let classes: HashSet<_> = CORPUS.iter().map(|e| e.class).collect();
        assert_eq!(classes.len(), 8);
    }

    #[test]
    fn tiny_scale_corpus_builds_and_validates() {
        for entry in CORPUS {
            let g = corpus_graph(entry, 0.02, 7);
            assert!(g.num_nodes() >= 4, "{} too small", entry.name);
            g.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        }
    }

    #[test]
    fn scale_grows_instances() {
        let entry = &CORPUS[0];
        let small = corpus_graph(entry, 0.05, 1);
        let large = corpus_graph(entry, 0.2, 1);
        assert!(large.num_nodes() > small.num_nodes());
    }

    #[test]
    fn corpus_is_deterministic() {
        let entry = CORPUS
            .iter()
            .find(|e| e.class == CorpusClass::Citations)
            .unwrap();
        assert_eq!(corpus_graph(entry, 0.05, 3), corpus_graph(entry, 0.05, 3));
    }

    #[test]
    fn base_nodes_reported() {
        for entry in CORPUS {
            assert!(entry.base_nodes() >= 1000, "{}", entry.name);
        }
    }

    #[test]
    fn scaled_corpus_returns_all_entries() {
        let corpus = scaled_corpus(0.02, 5);
        assert_eq!(corpus.len(), CORPUS.len());
        assert!(corpus.iter().all(|(_, _, g)| g.num_nodes() > 0));
    }
}
