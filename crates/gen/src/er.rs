//! Erdős–Rényi random graphs.
//!
//! `G(n, m)` graphs are used as a stand-in for circuit-like instances: sparse,
//! close-to-regular degree distribution and no locality in the natural node
//! order.

use oms_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Generates a `G(n, m)` graph: `m` distinct undirected edges chosen
/// uniformly at random among all node pairs.
///
/// `m` is clamped to the maximum possible number of edges `n·(n−1)/2`.
///
/// # Panics
///
/// Panics if `n == 0` and `m > 0`.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n > 0 || m == 0, "cannot place edges in an empty graph");
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut chosen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder
                .add_edge(key.0, key.1)
                .expect("generated edge within range");
        }
    }
    builder.build()
}

/// Generates a `G(n, p)` graph: every pair of nodes is connected
/// independently with probability `p`.
///
/// Uses the standard geometric skipping technique, so the running time is
/// `O(n + m)` rather than `O(n²)`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut builder = GraphBuilder::new(n);
    if n == 0 || p == 0.0 {
        return builder.build();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                builder.add_edge(u, v).unwrap();
            }
        }
        return builder.build();
    }
    // Batagelj–Brandes geometric skipping over the implicit enumeration of
    // pairs (v, w) with w < v.
    let log1p = (1.0 - p).ln();
    let n = n as i64;
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = ((1.0 - r).ln() / log1p).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            builder.add_edge(v as NodeId, w as NodeId).unwrap();
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = erdos_renyi_gnm(100, 300, 7);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 300);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = erdos_renyi_gnm(50, 100, 3);
        let b = erdos_renyi_gnm(50, 100, 3);
        let c = erdos_renyi_gnm(50, 100, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_clamps_to_complete_graph() {
        let g = erdos_renyi_gnm(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnm_empty() {
        let g = erdos_renyi_gnm(10, 0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnp_zero_probability_has_no_edges() {
        let g = erdos_renyi_gnp(100, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnp_full_probability_is_complete() {
        let g = erdos_renyi_gnp(10, 1.0, 1);
        assert_eq!(g.num_edges(), 45);
    }

    #[test]
    fn gnp_edge_count_is_close_to_expectation() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, 11);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let actual = g.num_edges() as f64;
        // 4 standard deviations of slack.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (actual - expected).abs() < 4.0 * sd + 1.0,
            "expected ~{expected}, got {actual}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        assert_eq!(erdos_renyi_gnp(80, 0.1, 5), erdos_renyi_gnp(80, 0.1, 5));
    }
}
