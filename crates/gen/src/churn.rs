//! Seeded churn-trace generation for the dynamic-maintenance workloads.
//!
//! A churn trace is a sequence of [`DeltaBatch`]es — edge/node inserts and
//! deletes with a checkpoint after every batch — that is *valid by
//! construction* against a given start graph: no duplicate edge inserts, no
//! deletes of absent edges, no references to dead nodes. The generator
//! mirrors the evolving graph internally, so traces can be written to disk
//! ([`oms_graph::write_delta_trace`]) and replayed later without any
//! validity re-checking.
//!
//! Three churn shapes cover the dynamic-graph literature's usual suspects:
//!
//! * [`ChurnScheme::Uniform`] — endpoints chosen uniformly among live
//!   nodes; the "background noise" workload.
//! * [`ChurnScheme::CommunityDrift`] — nodes belong to `communities` (by id
//!   modulo), and each batch concentrates inserts on a rotating pair of
//!   communities while deleting inside the pair's first member: community
//!   structure migrates over time, the hardest case for a partition that
//!   wants to stay put.
//! * [`ChurnScheme::Burst`] — each batch hammers a sliding window of the id
//!   space (a hotspot), modeling localized update storms.
//!
//! Everything is driven by one `ChaCha8` stream per trace, so a fixed
//! `(graph, config)` pair reproduces the identical trace on every platform.

use oms_graph::{CsrGraph, DeltaBatch, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How churn endpoints are chosen (see the [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnScheme {
    /// Uniformly random live endpoints.
    Uniform,
    /// Inserts between a rotating pair of id-modulo communities, deletes
    /// inside the pair's first member.
    CommunityDrift {
        /// Number of communities (≥ 2).
        communities: u32,
    },
    /// All operations inside a sliding id window.
    Burst {
        /// Window size as a fraction of the id space (clamped to ≥ 2
        /// nodes).
        window: f64,
    },
}

/// Parameters of a churn trace.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Endpoint-selection scheme.
    pub scheme: ChurnScheme,
    /// Number of batches (one checkpoint after each).
    pub batches: usize,
    /// Operations attempted per batch (an attempt is skipped when no valid
    /// operation of the drawn kind exists, so batches can come up slightly
    /// short).
    pub ops_per_batch: usize,
    /// Fraction of *edge* operations that are inserts (the rest delete).
    pub insert_fraction: f64,
    /// Fraction of operations that are *node* inserts/deletes instead of
    /// edge operations.
    pub node_churn_fraction: f64,
    /// RNG seed; together with the start graph it fully determines the
    /// trace.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            scheme: ChurnScheme::Uniform,
            batches: 8,
            ops_per_batch: 64,
            insert_fraction: 0.6,
            node_churn_fraction: 0.1,
            seed: 0,
        }
    }
}

/// Never delete nodes below this live count — a churned-to-nothing graph
/// makes no workload.
const MIN_LIVE_NODES: usize = 8;
/// Retries when rejection-sampling an endpoint with a constraint.
const RETRIES: usize = 64;

/// The generator's mirror of the evolving graph: adjacency, liveness and an
/// O(1)-sample list of live ids. Shared with the temporal generators in
/// [`crate::temporal`].
pub(crate) struct Mirror {
    pub(crate) nbrs: Vec<Vec<NodeId>>,
    pub(crate) alive: Vec<bool>,
    /// Live ids, unordered; `pos[v]` is v's index in it (usize::MAX when
    /// dead).
    pub(crate) live_ids: Vec<NodeId>,
    pos: Vec<usize>,
}

impl Mirror {
    pub(crate) fn new(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        Mirror {
            nbrs: (0..n)
                .map(|v| graph.neighbors(v as NodeId).to_vec())
                .collect(),
            alive: vec![true; n],
            live_ids: (0..n as NodeId).collect(),
            pos: (0..n).collect(),
        }
    }

    pub(crate) fn id_space(&self) -> usize {
        self.nbrs.len()
    }

    pub(crate) fn sample_live(&self, rng: &mut ChaCha8Rng) -> Option<NodeId> {
        if self.live_ids.is_empty() {
            return None;
        }
        Some(self.live_ids[rng.gen_range(0..self.live_ids.len())])
    }

    pub(crate) fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.nbrs[u as usize].contains(&v)
    }

    pub(crate) fn insert_edge(&mut self, u: NodeId, v: NodeId) {
        self.nbrs[u as usize].push(v);
        self.nbrs[v as usize].push(u);
    }

    pub(crate) fn delete_edge(&mut self, u: NodeId, v: NodeId) {
        for (a, b) in [(u, v), (v, u)] {
            let list = &mut self.nbrs[a as usize];
            let i = list.iter().position(|&x| x == b).expect("mirror edge");
            list.swap_remove(i);
        }
    }

    pub(crate) fn insert_node(&mut self) -> NodeId {
        let id = self.nbrs.len() as NodeId;
        self.nbrs.push(Vec::new());
        self.alive.push(true);
        self.pos.push(self.live_ids.len());
        self.live_ids.push(id);
        id
    }

    pub(crate) fn delete_node(&mut self, v: NodeId) -> Vec<NodeId> {
        let removed = std::mem::take(&mut self.nbrs[v as usize]);
        for &nbr in &removed {
            let list = &mut self.nbrs[nbr as usize];
            let i = list.iter().position(|&x| x == v).expect("mirror edge");
            list.swap_remove(i);
        }
        self.alive[v as usize] = false;
        let slot = self.pos[v as usize];
        self.live_ids.swap_remove(slot);
        if let Some(&moved) = self.live_ids.get(slot) {
            self.pos[moved as usize] = slot;
        }
        self.pos[v as usize] = usize::MAX;
        removed
    }
}

/// Samples an insert endpoint pair per the scheme; `None` when rejection
/// sampling found no absent, non-loop pair.
fn sample_insert(
    mirror: &Mirror,
    scheme: ChurnScheme,
    batch_no: usize,
    rng: &mut ChaCha8Rng,
) -> Option<(NodeId, NodeId)> {
    let constrained = |mirror: &Mirror, rng: &mut ChaCha8Rng, want: &dyn Fn(NodeId) -> bool| {
        for _ in 0..RETRIES {
            let v = mirror.sample_live(rng)?;
            if want(v) {
                return Some(v);
            }
        }
        mirror.sample_live(rng)
    };
    for _ in 0..RETRIES {
        let (u, v) = match scheme {
            ChurnScheme::Uniform => (mirror.sample_live(rng)?, mirror.sample_live(rng)?),
            ChurnScheme::CommunityDrift { communities } => {
                let c = communities.max(2);
                let a = (batch_no as u32) % c;
                let b = (batch_no as u32 + 1) % c;
                (
                    constrained(mirror, rng, &|v| v % c == a)?,
                    constrained(mirror, rng, &|v| v % c == b)?,
                )
            }
            ChurnScheme::Burst { window } => {
                let n = mirror.id_space();
                let w = ((window.clamp(0.0, 1.0) * n as f64) as usize).max(2).min(n);
                let start = (batch_no * w) % n;
                let inside = |v: NodeId| {
                    let v = v as usize;
                    let end = start + w;
                    if end <= n {
                        v >= start && v < end
                    } else {
                        v >= start || v < end - n
                    }
                };
                (
                    constrained(mirror, rng, &inside)?,
                    constrained(mirror, rng, &inside)?,
                )
            }
        };
        if u != v && !mirror.has_edge(u, v) {
            return Some((u, v));
        }
    }
    None
}

/// Samples an existing edge to delete; under [`ChurnScheme::CommunityDrift`]
/// the edge is biased to lie inside the batch's first active community.
fn sample_delete(
    mirror: &Mirror,
    scheme: ChurnScheme,
    batch_no: usize,
    rng: &mut ChaCha8Rng,
) -> Option<(NodeId, NodeId)> {
    for attempt in 0..RETRIES {
        let u = mirror.sample_live(rng)?;
        if let ChurnScheme::CommunityDrift { communities } = scheme {
            let c = communities.max(2);
            // Prefer shedding edges of the community the drift leaves
            // behind; give up on the bias after half the retries.
            if attempt < RETRIES / 2 && u % c != (batch_no as u32) % c {
                continue;
            }
        }
        let nbrs = &mirror.nbrs[u as usize];
        if nbrs.is_empty() {
            continue;
        }
        let v = nbrs[rng.gen_range(0..nbrs.len())];
        return Some((u, v));
    }
    None
}

/// Generates a churn trace over `graph`: `config.batches` delta batches,
/// each valid against the graph state left by its predecessors. See the
/// [module docs](self) for the guarantees.
pub fn churn_trace(graph: &CsrGraph, config: &ChurnConfig) -> Vec<DeltaBatch> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut mirror = Mirror::new(graph);
    let mut trace = Vec::with_capacity(config.batches);
    for batch_no in 0..config.batches {
        let mut batch = DeltaBatch::with_capacity(config.ops_per_batch);
        for _ in 0..config.ops_per_batch {
            let node_op = rng.gen_bool(config.node_churn_fraction);
            let insert = rng.gen_bool(config.insert_fraction);
            if node_op {
                if insert || mirror.live_ids.len() <= MIN_LIVE_NODES {
                    let id = mirror.insert_node();
                    let weight = 1 + rng.gen_range(0..2u64);
                    batch.insert_node(id, weight);
                } else if let Some(v) = mirror.sample_live(&mut rng) {
                    mirror.delete_node(v);
                    batch.delete_node(v);
                }
            } else if insert {
                if let Some((u, v)) = sample_insert(&mirror, config.scheme, batch_no, &mut rng) {
                    mirror.insert_edge(u, v);
                    batch.insert_edge(u, v, 1);
                }
            } else if let Some((u, v)) = sample_delete(&mirror, config.scheme, batch_no, &mut rng) {
                mirror.delete_edge(u, v);
                batch.delete_edge(u, v);
            }
        }
        trace.push(batch);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos_renyi_gnm;
    use oms_graph::Delta;

    fn base() -> CsrGraph {
        erdos_renyi_gnm(100, 400, 3)
    }

    fn ops(trace: &[DeltaBatch]) -> usize {
        trace.iter().map(DeltaBatch::len).sum()
    }

    #[test]
    fn traces_are_reproducible_at_fixed_seeds() {
        let g = base();
        let config = ChurnConfig::default();
        let a = churn_trace(&g, &config);
        let b = churn_trace(&g, &config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            for i in 0..x.len() {
                assert_eq!(x.get(i), y.get(i));
            }
        }
        let other = churn_trace(&g, &ChurnConfig { seed: 1, ..config });
        assert!(
            ops(&a) != ops(&other)
                || (0..a[0].len().min(other[0].len())).any(|i| a[0].get(i) != other[0].get(i)),
            "different seeds produced the identical trace"
        );
    }

    #[test]
    fn traces_are_valid_against_an_independent_mirror() {
        // Replay through a second, independent bookkeeping of the graph:
        // every op must be applicable at its position.
        for scheme in [
            ChurnScheme::Uniform,
            ChurnScheme::CommunityDrift { communities: 4 },
            ChurnScheme::Burst { window: 0.1 },
        ] {
            let g = base();
            let trace = churn_trace(
                &g,
                &ChurnConfig {
                    scheme,
                    batches: 6,
                    ops_per_batch: 80,
                    node_churn_fraction: 0.2,
                    ..ChurnConfig::default()
                },
            );
            assert_eq!(trace.len(), 6);
            assert!(ops(&trace) > 0);
            let mut mirror = Mirror::new(&g);
            for batch in &trace {
                for delta in batch.iter() {
                    match delta {
                        Delta::EdgeInsert { u, v, .. } => {
                            assert!(u != v && mirror.alive[u as usize] && mirror.alive[v as usize]);
                            assert!(!mirror.has_edge(u, v), "duplicate insert {u}-{v}");
                            mirror.insert_edge(u, v);
                        }
                        Delta::EdgeDelete { u, v } => {
                            assert!(mirror.has_edge(u, v), "deleting absent edge {u}-{v}");
                            mirror.delete_edge(u, v);
                        }
                        Delta::NodeInsert { node, weight } => {
                            assert_eq!(node as usize, mirror.id_space(), "non-fresh id");
                            assert!(weight >= 1);
                            mirror.insert_node();
                        }
                        Delta::NodeDelete { node } => {
                            assert!(mirror.alive[node as usize], "deleting dead node {node}");
                            mirror.delete_node(node);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn burst_concentrates_edge_ops_in_the_window() {
        let g = base();
        let trace = churn_trace(
            &g,
            &ChurnConfig {
                scheme: ChurnScheme::Burst { window: 0.1 },
                batches: 1,
                ops_per_batch: 60,
                node_churn_fraction: 0.0,
                insert_fraction: 1.0,
                ..ChurnConfig::default()
            },
        );
        // Window of batch 0 is ids [0, 10): every insert endpoint pair
        // should fall inside unless rejection sampling had to bail.
        let mut inside = 0;
        let mut total = 0;
        for i in 0..trace[0].len() {
            if let Delta::EdgeInsert { u, v, .. } = trace[0].get(i) {
                total += 1;
                if u < 10 && v < 10 {
                    inside += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            inside * 2 >= total,
            "burst window ignored: {inside}/{total} inside"
        );
    }

    #[test]
    fn node_churn_fraction_zero_keeps_the_node_set() {
        let g = base();
        let trace = churn_trace(
            &g,
            &ChurnConfig {
                node_churn_fraction: 0.0,
                ..ChurnConfig::default()
            },
        );
        for batch in &trace {
            for delta in batch.iter() {
                assert!(matches!(
                    delta,
                    Delta::EdgeInsert { .. } | Delta::EdgeDelete { .. }
                ));
            }
        }
    }
}
