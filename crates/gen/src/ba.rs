//! Barabási–Albert preferential attachment graphs.
//!
//! Produces the heavy-tailed degree distributions typical of the citation and
//! social networks in the paper's corpus (`coAuthorsDBLP`, `cit-Patents`,
//! `soc-LiveJournal1`, …). New nodes attach to existing nodes with
//! probability proportional to their degree, which we realise with the usual
//! "repeated-endpoints" trick: sampling a uniform position in the running
//! edge-endpoint list is equivalent to degree-proportional sampling.

use oms_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a Barabási–Albert graph with `n` nodes where every new node
/// attaches to `m_attach` distinct existing nodes.
///
/// The first `m_attach + 1` nodes form a clique seed so that every node has a
/// well-defined attachment pool. The natural node order corresponds to
/// insertion time, mimicking the temporal order in which citation/social
/// graphs are usually crawled — exactly the stream order the paper uses.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n < m_attach + 1`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach > 0, "attachment count must be positive");
    assert!(
        n > m_attach,
        "need at least m_attach + 1 nodes (got n={n}, m_attach={m_attach})"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * m_attach);

    // Flat list of edge endpoints; sampling a uniform element is
    // degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);

    // Clique seed on the first m_attach + 1 nodes.
    let seed_nodes = m_attach + 1;
    for u in 0..seed_nodes as NodeId {
        for v in (u + 1)..seed_nodes as NodeId {
            builder.add_edge(u, v).unwrap();
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(m_attach);
    for new in seed_nodes..n {
        targets.clear();
        // Rejection-sample until m_attach distinct targets are found. The
        // candidate pool grows with the graph, so rejections are rare.
        while targets.len() < m_attach {
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &t in &targets {
            builder.add_edge(new as NodeId, t).unwrap();
            endpoints.push(new as NodeId);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_expected_edge_count() {
        let n = 500;
        let m_attach = 4;
        let g = barabasi_albert(n, m_attach, 13);
        let seed_edges = (m_attach + 1) * m_attach / 2;
        let expected = seed_edges + (n - m_attach - 1) * m_attach;
        assert_eq!(g.num_nodes(), n);
        assert_eq!(g.num_edges(), expected);
        g.validate().unwrap();
    }

    #[test]
    fn minimum_degree_is_attachment_count() {
        let g = barabasi_albert(300, 3, 5);
        let min_deg = g.nodes().map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 3);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 2, 21);
        let max_deg = g.max_degree();
        let avg = g.average_degree();
        // A heavy tail: the hub degree should far exceed the average.
        assert!(
            (max_deg as f64) > 5.0 * avg,
            "max degree {max_deg} vs average {avg}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert(100, 3, 9), barabasi_albert(100, 3, 9));
        assert_ne!(barabasi_albert(100, 3, 9), barabasi_albert(100, 3, 10));
    }

    #[test]
    fn smallest_valid_instance_is_a_clique() {
        let g = barabasi_albert(4, 3, 1);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    #[should_panic]
    fn zero_attachment_panics() {
        barabasi_albert(10, 0, 1);
    }

    #[test]
    #[should_panic]
    fn too_few_nodes_panics() {
        barabasi_albert(3, 3, 1);
    }
}
