//! Delaunay triangulation graphs (the paper's `delX` family).
//!
//! `n` points are drawn uniformly at random in the unit square and the graph
//! is the edge set of their Delaunay triangulation. The triangulation is
//! computed with the incremental Bowyer–Watson algorithm:
//!
//! 1. points are inserted in spatially sorted order (cell-major), so the
//!    containing triangle of the next point is almost always near the last
//!    insertion and can be found by *walking*;
//! 2. the cavity of triangles whose circumcircle contains the new point is
//!    grown by a breadth-first search over triangle adjacencies (maintained
//!    in an edge → triangles map);
//! 3. the cavity is re-triangulated by connecting its boundary edges to the
//!    new point.
//!
//! The expected running time with this insertion order is `O(n log n)`.
//! Predicates use plain `f64` arithmetic, which is robust enough for random
//! point sets (the generator's only use here).

use oms_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Generates the Delaunay graph of `n` random points in the unit square.
pub fn delaunay_graph(n: usize, seed: u64) -> CsrGraph {
    assert!(n >= 3, "a Delaunay triangulation needs at least 3 points");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    // Sort points spatially (cell-major) so ids have stream locality and the
    // walking point location stays short.
    let cells = (n as f64).sqrt().ceil().max(1.0) as usize;
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    points.sort_by(|a, b| {
        let ca = cell_of(*a);
        let cb = cell_of(*b);
        (ca.1, ca.0)
            .cmp(&(cb.1, cb.0))
            .then(a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    });

    let triangulation = bowyer_watson(&points);
    let mut builder = GraphBuilder::new(n);
    for &(u, v) in &triangulation {
        builder.add_edge(u as NodeId, v as NodeId).unwrap();
    }
    builder.build()
}

/// Computes the Delaunay edges of `points` (indices into the slice).
fn bowyer_watson(points: &[(f64, f64)]) -> Vec<(usize, usize)> {
    let n = points.len();
    // Super-triangle far outside the unit square.
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    pts.push((-10.0, -10.0));
    pts.push((11.0, -10.0));
    pts.push((0.5, 11.0));
    let sup = [n, n + 1, n + 2];

    let mut tri = Triangulation::new(pts);
    tri.add_triangle([sup[0], sup[1], sup[2]]);

    for p in 0..n {
        tri.insert(p);
    }

    // Collect edges not incident to the super-triangle vertices. An edge can
    // be seen from one or two triangles (and in either orientation when its
    // second triangle involves a super vertex), so normalise and deduplicate.
    let mut edges = Vec::new();
    for t in &tri.triangles {
        if !t.alive {
            continue;
        }
        for e in 0..3 {
            let a = t.v[e];
            let b = t.v[(e + 1) % 3];
            if a >= n || b >= n {
                continue;
            }
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

struct Triangle {
    v: [usize; 3],
    alive: bool,
}

struct Triangulation {
    points: Vec<(f64, f64)>,
    triangles: Vec<Triangle>,
    /// Sorted edge → alive triangles sharing it (at most two).
    edge_map: HashMap<(usize, usize), Vec<usize>>,
    last_created: usize,
}

impl Triangulation {
    fn new(points: Vec<(f64, f64)>) -> Self {
        Triangulation {
            points,
            triangles: Vec::new(),
            edge_map: HashMap::new(),
            last_created: 0,
        }
    }

    fn edge_key(a: usize, b: usize) -> (usize, usize) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn add_triangle(&mut self, v: [usize; 3]) -> usize {
        let id = self.triangles.len();
        self.triangles.push(Triangle { v, alive: true });
        for e in 0..3 {
            let key = Self::edge_key(v[e], v[(e + 1) % 3]);
            self.edge_map.entry(key).or_default().push(id);
        }
        self.last_created = id;
        id
    }

    fn remove_triangle(&mut self, id: usize) {
        let v = self.triangles[id].v;
        self.triangles[id].alive = false;
        for e in 0..3 {
            let key = Self::edge_key(v[e], v[(e + 1) % 3]);
            if let Some(list) = self.edge_map.get_mut(&key) {
                list.retain(|&t| t != id);
                if list.is_empty() {
                    self.edge_map.remove(&key);
                }
            }
        }
    }

    fn neighbor_across(&self, tri_id: usize, a: usize, b: usize) -> Option<usize> {
        let key = Self::edge_key(a, b);
        self.edge_map
            .get(&key)?
            .iter()
            .copied()
            .find(|&t| t != tri_id && self.triangles[t].alive)
    }

    /// Walks from the most recently created triangle towards the triangle
    /// containing `p`. Falls back to a linear scan if the walk cycles (which
    /// can only happen through floating-point degeneracies).
    fn locate(&self, p: (f64, f64)) -> usize {
        let mut current = self.last_created;
        if !self.triangles[current].alive {
            current = self
                .triangles
                .iter()
                .rposition(|t| t.alive)
                .expect("triangulation cannot be empty");
        }
        let max_steps = 4 * self.triangles.len() + 16;
        let mut steps = 0;
        'walk: loop {
            steps += 1;
            if steps > max_steps {
                break;
            }
            let t = &self.triangles[current];
            for e in 0..3 {
                let a = t.v[e];
                let b = t.v[(e + 1) % 3];
                let c = t.v[(e + 2) % 3];
                // If p is on the opposite side of edge (a, b) from c, exit
                // through that edge.
                let side_p = orient2d(self.points[a], self.points[b], p);
                let side_c = orient2d(self.points[a], self.points[b], self.points[c]);
                if side_p * side_c < 0.0 {
                    if let Some(next) = self.neighbor_across(current, a, b) {
                        current = next;
                        continue 'walk;
                    }
                }
            }
            return current;
        }
        // Fallback: linear scan for a triangle whose circumcircle contains p.
        self.triangles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.alive)
            .find(|(_, t)| {
                in_circumcircle(
                    self.points[t.v[0]],
                    self.points[t.v[1]],
                    self.points[t.v[2]],
                    p,
                )
            })
            .map(|(i, _)| i)
            .unwrap_or(current)
    }

    fn insert(&mut self, p_idx: usize) {
        let p = self.points[p_idx];
        let start = self.locate(p);

        // Grow the cavity: all alive triangles whose circumcircle contains p,
        // connected to `start`.
        let mut cavity = Vec::new();
        let mut stack = vec![start];
        let mut in_cavity = HashMap::new();
        while let Some(t_id) = stack.pop() {
            if in_cavity.contains_key(&t_id) || !self.triangles[t_id].alive {
                continue;
            }
            let t = &self.triangles[t_id];
            let contains = in_circumcircle(
                self.points[t.v[0]],
                self.points[t.v[1]],
                self.points[t.v[2]],
                p,
            );
            if !contains && t_id != start {
                continue;
            }
            in_cavity.insert(t_id, true);
            cavity.push(t_id);
            let v = t.v;
            for e in 0..3 {
                if let Some(nb) = self.neighbor_across(t_id, v[e], v[(e + 1) % 3]) {
                    stack.push(nb);
                }
            }
        }

        // Boundary edges: edges of cavity triangles shared with at most one
        // cavity triangle.
        let mut edge_count: HashMap<(usize, usize), usize> = HashMap::new();
        for &t_id in &cavity {
            let v = self.triangles[t_id].v;
            for e in 0..3 {
                *edge_count
                    .entry(Self::edge_key(v[e], v[(e + 1) % 3]))
                    .or_insert(0) += 1;
            }
        }
        let boundary: Vec<(usize, usize)> = edge_count
            .iter()
            .filter(|&(_, &c)| c == 1)
            .map(|(&e, _)| e)
            .collect();

        for &t_id in &cavity {
            self.remove_triangle(t_id);
        }
        for (a, b) in boundary {
            self.add_triangle([a, b, p_idx]);
        }
    }
}

/// Twice the signed area of triangle `abc`. Positive if counter-clockwise.
fn orient2d(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

/// `true` if `p` lies strictly inside the circumcircle of triangle `abc`.
fn in_circumcircle(a: (f64, f64), b: (f64, f64), c: (f64, f64), p: (f64, f64)) -> bool {
    // Normalise orientation so the determinant sign is meaningful.
    let (a, b, c) = if orient2d(a, b, c) > 0.0 {
        (a, b, c)
    } else {
        (a, c, b)
    };
    let ax = a.0 - p.0;
    let ay = a.1 - p.1;
    let bx = b.0 - p.0;
    let by = b.1 - p.1;
    let cx = c.0 - p.0;
    let cy = c.1 - p.1;
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by) - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::traversal::is_connected;

    #[test]
    fn small_triangulation_is_planar_and_connected() {
        let g = delaunay_graph(50, 3);
        assert_eq!(g.num_nodes(), 50);
        // Euler bound for planar graphs: m ≤ 3n − 6.
        assert!(g.num_edges() <= 3 * 50 - 6);
        assert!(
            g.num_edges() >= 50 - 1,
            "triangulation must be connected-ish"
        );
        assert!(is_connected(&g));
        g.validate().unwrap();
    }

    #[test]
    fn medium_triangulation_has_expected_density() {
        // A Delaunay triangulation of random points has ~3n edges minus the
        // convex hull contribution, so the average degree approaches 6.
        let g = delaunay_graph(2000, 7);
        let avg = g.average_degree();
        assert!(avg > 5.0 && avg < 6.1, "average degree {avg}");
        assert!(is_connected(&g));
    }

    #[test]
    fn triangulation_is_deterministic_per_seed() {
        assert_eq!(delaunay_graph(200, 5), delaunay_graph(200, 5));
    }

    #[test]
    fn orientation_predicate() {
        assert!(orient2d((0.0, 0.0), (1.0, 0.0), (0.0, 1.0)) > 0.0);
        assert!(orient2d((0.0, 0.0), (0.0, 1.0), (1.0, 0.0)) < 0.0);
        assert_eq!(orient2d((0.0, 0.0), (1.0, 1.0), (2.0, 2.0)), 0.0);
    }

    #[test]
    fn circumcircle_predicate() {
        let a = (0.0, 0.0);
        let b = (1.0, 0.0);
        let c = (0.0, 1.0);
        assert!(in_circumcircle(a, b, c, (0.4, 0.4)));
        assert!(!in_circumcircle(a, b, c, (2.0, 2.0)));
        // Order of the triangle must not matter.
        assert!(in_circumcircle(a, c, b, (0.4, 0.4)));
    }

    #[test]
    fn four_points_in_square_give_quad_with_diagonal() {
        // The Delaunay triangulation of four points in convex position (not
        // cocircular, to avoid the degenerate tie) has 5 edges: the 4 sides
        // of the quadrilateral plus one diagonal.
        let pts = vec![(0.1, 0.1), (0.9, 0.15), (0.85, 0.9), (0.1, 0.8)];
        let edges = bowyer_watson(&pts);
        assert_eq!(edges.len(), 5);
    }

    #[test]
    #[should_panic]
    fn too_few_points_panic() {
        delaunay_graph(2, 1);
    }

    #[test]
    fn collinear_heavy_input_still_produces_connected_graph() {
        // Many points on a coarse implicit grid stress the predicates with
        // near-degenerate configurations.
        let g = delaunay_graph(400, 123);
        assert!(is_connected(&g));
        assert!(g.num_edges() <= 3 * 400 - 6);
        g.validate().unwrap();
    }
}
