//! # oms-workload
//!
//! A seeded traffic-replay simulator: does a better partition actually
//! *serve users* faster?
//!
//! Edge-cut, imbalance and the mapping cost `J` are proxies. This crate
//! closes the loop by firing a reproducible stream of simulated user
//! requests at a finished partition and measuring what users would see:
//!
//! * requests start at hub vertices — starts are drawn Zipf-skewed over the
//!   degree ranking ([`ZipfSampler`]), the classic web/social access
//!   pattern;
//! * each request performs a multi-hop random walk (its length drawn
//!   uniformly in `1..=hops`, uniform steps over the adjacency), modelling
//!   traversal sessions of varying depth — the long sessions are the
//!   latency tail;
//! * every touched vertex costs one service tick on its block's FIFO queue;
//!   when consecutive touches land on *different* blocks the request pays a
//!   cross-block `hop_penalty` in transit — the network round trip a cut
//!   edge buys, delaying the request without occupying any server;
//! * per-block queues serialize service, so load skew turns directly into
//!   queueing delay, and a request whose entry block is backlogged past
//!   `max_backlog` is rejected up front (load shedding).
//!
//! The outcome is a [`ReplayReport`] — cross-block hop rate, per-block
//! queue loads, p50/p99 simulated latency and an FNV-1a request-log hash —
//! designed to ride beside `oms-core`'s `PartitionReport`. Everything is
//! integer-tick arithmetic driven by one `ChaCha8` stream, so a fixed
//! `(graph, assignment, config)` triple reproduces the identical report on
//! every platform and from every stream source.
//!
//! Node partitions replay through [`replay_stream`] / [`replay_graph`];
//! vertex-cut **edge** partitions replay through [`replay_edge_partition`],
//! where a hop is served by the block owning the traversed edge (a block
//! both endpoints hold a replica in, by definition of the vertex-cut) and
//! [`replica_sets`] exposes the per-vertex replica structure.
//!
//! ```
//! use oms_graph::CsrGraph;
//! use oms_workload::{replay_graph, ReplayConfig};
//!
//! let graph = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
//! let assignments = vec![0, 0, 0, 1, 1, 1];
//! let report = replay_graph(&graph, &assignments, &ReplayConfig::default());
//! assert_eq!(report.requests, report.served + report.rejected);
//! assert!(report.p50_latency <= report.p99_latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod zipf;

pub use replay::{
    replay_edge_partition, replay_graph, replay_stream, replica_sets, ReplayConfig, ReplayReport,
};
pub use zipf::ZipfSampler;
