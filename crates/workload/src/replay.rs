//! The traffic-replay simulator (see the [crate docs](crate) for the
//! request model).
//!
//! The simulator is a pure function of `(adjacency, assignment, config)`:
//! all timing is integer ticks, all randomness comes from one `ChaCha8`
//! stream, and the adjacency is materialised from whatever
//! [`NodeStream`] source the caller holds — since every source of the same
//! graph delivers identical content in identical order, replays are
//! byte-identical across in-memory, chunked and on-disk streams.

use crate::zipf::ZipfSampler;
use oms_graph::{CsrGraph, NodeId, NodeStream, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Block ids use the same representation as `oms-core`'s partitions.
type BlockId = u32;

/// Parameters of one replay run.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Number of simulated user requests.
    pub requests: usize,
    /// Maximum random-walk steps per request: each request draws its own
    /// length uniformly in `1..=hops` (simulated session lengths vary, and
    /// the long sessions dominate the latency tail). A request touches
    /// `length + 1` vertices; walks stop early at a dead end.
    pub hops: usize,
    /// Zipf exponent of the start-vertex draw over the degree ranking
    /// (rank 0 = highest degree). `0` = uniform, larger = hub-heavier.
    pub zipf_exponent: f64,
    /// Extra latency ticks a hop pays in transit when it crosses a block
    /// boundary — the simulated network round trip of a cut edge. Travel
    /// delays the request but occupies no server.
    pub hop_penalty: u64,
    /// Ticks between consecutive request arrivals (`0` = all requests
    /// arrive at tick 0, a pure stress burst). The default keeps the
    /// system below saturation so latency reflects path quality rather
    /// than pure overload.
    pub arrival_every: u64,
    /// Load shedding: a request is rejected up front when its entry
    /// block's backlog (queue ticks already ahead of it) exceeds this.
    /// `0` disables rejection.
    pub max_backlog: u64,
    /// RNG seed of the request stream.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            requests: 2000,
            hops: 16,
            zipf_exponent: 1.1,
            hop_penalty: 8,
            arrival_every: 8,
            max_backlog: 0,
            seed: 0,
        }
    }
}

/// The measured outcome of one replay run — the partition's quality as
/// users would see it. Rides beside `oms-core`'s `PartitionReport`.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayReport {
    /// Number of blocks of the replayed partition.
    pub num_blocks: u32,
    /// Requests issued (always `served + rejected`).
    pub requests: usize,
    /// Requests that completed their walk.
    pub served: usize,
    /// Requests shed at admission because their entry block was backlogged
    /// past [`ReplayConfig::max_backlog`].
    pub rejected: usize,
    /// Vertex touches executed by served requests (the per-block
    /// [`ReplayReport::block_load`] entries sum to exactly this).
    pub total_hops: u64,
    /// Touches whose serving block differed from the previous touch —
    /// each one paid the cross-block travel penalty.
    pub cross_block_hops: u64,
    /// Per-block queue load: service ticks each block performed (one per
    /// hop it served).
    pub block_load: Vec<u64>,
    /// Median simulated request latency, in ticks.
    pub p50_latency: u64,
    /// 99th-percentile simulated request latency, in ticks.
    pub p99_latency: u64,
    /// Arithmetic mean latency of served requests, in ticks.
    pub mean_latency: f64,
    /// Tick at which the last request completed.
    pub makespan: u64,
    /// FNV-1a hash over the full request log (starts, walks, admissions,
    /// latencies) — one number that pins the entire run for determinism
    /// checks.
    pub request_log_hash: u64,
}

impl ReplayReport {
    /// Fraction of served hops that crossed a block boundary — the
    /// headline "does a lower cut serve better?" number. `0.0` when no
    /// hop was served.
    pub fn cross_block_hop_rate(&self) -> f64 {
        if self.total_hops == 0 {
            0.0
        } else {
            self.cross_block_hops as f64 / self.total_hops as f64
        }
    }

    /// Queue-load skew: the heaviest block's load over the mean block
    /// load (`1.0` = perfectly even, like `message_skew` in
    /// `oms-metrics`).
    pub fn load_skew(&self) -> f64 {
        let total: u64 = self.block_load.iter().sum();
        if total == 0 || self.block_load.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.block_load.len() as f64;
        let max = *self.block_load.iter().max().expect("non-empty") as f64;
        max / mean
    }

    /// Fraction of issued requests that were rejected.
    pub fn rejection_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.rejected as f64 / self.requests as f64
        }
    }
}

/// The materialised view the simulator walks: per-vertex adjacency in
/// stream-delivery order, plus the ids that actually exist (live), so
/// dynamic graphs with dead ids replay cleanly.
struct ReplayGraph {
    nbrs: Vec<Vec<NodeId>>,
    live: Vec<NodeId>,
}

impl ReplayGraph {
    fn from_stream(stream: &mut dyn NodeStream) -> Result<Self> {
        let mut nbrs: Vec<Vec<NodeId>> = Vec::new();
        let mut live: Vec<NodeId> = Vec::new();
        stream.reset()?;
        stream.for_each_node(&mut |node| {
            let v = node.node as usize;
            if nbrs.len() <= v {
                nbrs.resize_with(v + 1, Vec::new);
            }
            nbrs[v] = node.neighbors.to_vec();
            live.push(node.node);
        })?;
        Ok(ReplayGraph { nbrs, live })
    }

    /// Live ids ranked by degree descending (ties by id ascending) — the
    /// hub ranking the Zipf draw runs over.
    fn degree_ranking(&self) -> Vec<NodeId> {
        let mut ranking = self.live.clone();
        ranking.sort_by(|&a, &b| {
            self.nbrs[b as usize]
                .len()
                .cmp(&self.nbrs[a as usize].len())
                .then(a.cmp(&b))
        });
        ranking
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// How a touch's serving block is chosen — the one seam between node- and
/// edge-partition replay.
enum Serving<'a> {
    /// Node partitions: a touch of `v` is served by `assignment[v]`.
    Node(&'a [BlockId]),
    /// Edge partitions: the walk step `u → v` is served by the block
    /// owning that edge (both endpoints hold a replica there); the start
    /// touch is served by the vertex's primary replica.
    Edge {
        /// `edge_block[v]` holds `(neighbor, block)` pairs in incidence
        /// order.
        incident: &'a [Vec<(NodeId, BlockId)>],
        /// Primary replica per vertex (most incident edges, lowest block
        /// id on ties).
        primary: &'a [BlockId],
    },
}

impl Serving<'_> {
    fn start_block(&self, v: NodeId) -> BlockId {
        match self {
            Serving::Node(assignments) => assignments[v as usize],
            Serving::Edge { primary, .. } => primary[v as usize],
        }
    }

    fn hop_block(&self, from: NodeId, nbr_index: usize, to: NodeId) -> BlockId {
        match self {
            Serving::Node(assignments) => assignments[to as usize],
            Serving::Edge { incident, .. } => {
                let (nbr, block) = incident[from as usize][nbr_index];
                debug_assert_eq!(nbr, to);
                block
            }
        }
    }
}

/// The simulator core shared by node- and edge-partition replay.
fn simulate(
    graph: &ReplayGraph,
    serving: &Serving<'_>,
    num_blocks: u32,
    config: &ReplayConfig,
) -> ReplayReport {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let ranking = graph.degree_ranking();
    let zipf = ZipfSampler::new(ranking.len().max(1), config.zipf_exponent);

    let mut block_free = vec![0u64; num_blocks as usize];
    let mut block_load = vec![0u64; num_blocks as usize];
    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    let mut hash = FNV_OFFSET;
    let (mut served, mut rejected) = (0usize, 0usize);
    let (mut total_hops, mut cross_block_hops) = (0u64, 0u64);
    let mut makespan = 0u64;

    for request in 0..config.requests {
        let arrival = request as u64 * config.arrival_every;
        if ranking.is_empty() {
            break;
        }
        let start = ranking[zipf.sample(&mut rng)];
        fnv1a(&mut hash, start as u64);
        let entry = serving.start_block(start);
        let backlog = block_free[entry as usize].saturating_sub(arrival);
        oms_obs::hist_record(oms_obs::HistId::ReplayQueueDepth, backlog);
        if config.max_backlog > 0 && backlog > config.max_backlog {
            rejected += 1;
            fnv1a(&mut hash, u64::MAX); // admission refused
            continue;
        }

        // This request's session length: long walks are the latency tail.
        let length = if config.hops == 0 {
            0
        } else {
            rng.gen_range(1..=config.hops)
        };
        fnv1a(&mut hash, length as u64);

        // Serve the start vertex, then up to `length` walk steps.
        let mut t = arrival;
        let mut current = start;
        let mut prev_block: Option<BlockId> = None;
        let mut block = entry;
        let mut step = 0usize;
        loop {
            // A cross-block hop is travel: the request pays the penalty in
            // transit, but no server is occupied by it.
            if let Some(prev) = prev_block {
                if prev != block {
                    cross_block_hops += 1;
                    t += config.hop_penalty;
                }
            }
            // One tick of real work on the block's queue. The queue's
            // clock advances from the request's *arrival* (work
            // conservation): a request delayed in transit does not
            // reserve the server while it travels.
            let slot = block_free[block as usize].max(arrival);
            block_free[block as usize] = slot + 1;
            t = t.max(slot) + 1;
            block_load[block as usize] += 1;
            total_hops += 1;
            prev_block = Some(block);
            fnv1a(&mut hash, current as u64);

            if step >= length {
                break;
            }
            let nbrs = &graph.nbrs[current as usize];
            if nbrs.is_empty() {
                break; // dead end: the walk stops early
            }
            let nbr_index = rng.gen_range(0..nbrs.len());
            let next = nbrs[nbr_index];
            block = serving.hop_block(current, nbr_index, next);
            current = next;
            step += 1;
        }

        let latency = t - arrival;
        latencies.push(latency);
        fnv1a(&mut hash, latency);
        oms_obs::hist_record(oms_obs::HistId::ReplayLatencyTicks, latency);
        makespan = makespan.max(t);
        served += 1;
    }

    oms_obs::observe(oms_obs::Event::ReplaySummary {
        requests: config.requests as u64,
        served: served as u64,
        rejected: rejected as u64,
        total_hops,
        cross_block_hops,
        log_hash: hash,
    });
    oms_obs::counter_add(oms_obs::CounterId::ReplayRequests, config.requests as u64);
    oms_obs::counter_add(oms_obs::CounterId::ReplayServed, served as u64);
    oms_obs::counter_add(oms_obs::CounterId::ReplayRejected, rejected as u64);
    oms_obs::counter_add(oms_obs::CounterId::ReplayHops, total_hops);
    oms_obs::counter_add(oms_obs::CounterId::ReplayCrossBlockHops, cross_block_hops);

    latencies.sort_unstable();
    let percentile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64 * q).ceil() as usize).max(1) - 1;
        latencies[rank.min(latencies.len() - 1)]
    };
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };

    ReplayReport {
        num_blocks,
        requests: config.requests,
        served,
        rejected,
        total_hops,
        cross_block_hops,
        block_load,
        p50_latency: percentile(0.50),
        p99_latency: percentile(0.99),
        mean_latency: mean,
        makespan,
        request_log_hash: hash,
    }
}

/// Replays the request stream against a node partition delivered by any
/// [`NodeStream`] source. `assignments[v]` is the block of node `v` and
/// must cover every id the stream delivers; `num_blocks` is taken as
/// `max(assignment) + 1` over the live nodes.
pub fn replay_stream(
    stream: &mut dyn NodeStream,
    assignments: &[BlockId],
    config: &ReplayConfig,
) -> Result<ReplayReport> {
    let graph = ReplayGraph::from_stream(stream)?;
    let num_blocks = graph
        .live
        .iter()
        .map(|&v| assignments[v as usize] + 1)
        .max()
        .unwrap_or(1);
    Ok(simulate(
        &graph,
        &Serving::Node(assignments),
        num_blocks,
        config,
    ))
}

/// [`replay_stream`] over an in-memory graph.
pub fn replay_graph(
    graph: &CsrGraph,
    assignments: &[BlockId],
    config: &ReplayConfig,
) -> ReplayReport {
    replay_stream(
        &mut oms_graph::InMemoryStream::new(graph),
        assignments,
        config,
    )
    .expect("in-memory streams cannot fail")
}

/// The replica set of every vertex under an edge partition: the sorted,
/// deduplicated blocks of its incident edges (`edge_assignments` is in
/// [`CsrGraph::edges`] stream order, as produced by `oms-edgepart`).
/// Vertices with no incident edge have an empty replica set.
pub fn replica_sets(graph: &CsrGraph, edge_assignments: &[BlockId]) -> Vec<Vec<BlockId>> {
    let mut sets: Vec<Vec<BlockId>> = vec![Vec::new(); graph.num_nodes()];
    for (i, (u, v, _)) in graph.edges().enumerate() {
        let block = edge_assignments[i];
        for w in [u, v] {
            let set = &mut sets[w as usize];
            if !set.contains(&block) {
                set.push(block);
            }
        }
    }
    for set in &mut sets {
        set.sort_unstable();
    }
    sets
}

/// Replays the request stream against a vertex-cut **edge** partition:
/// each walk step `u → v` is served by the block owning the traversed
/// edge (a block both endpoints hold a replica in), and the start touch is
/// served by the vertex's primary replica — the block holding most of its
/// incident edges (lowest block id on ties), or block 0 for isolated
/// vertices.
pub fn replay_edge_partition(
    graph: &CsrGraph,
    edge_assignments: &[BlockId],
    num_blocks: u32,
    config: &ReplayConfig,
) -> ReplayReport {
    let n = graph.num_nodes();
    // Incident (neighbor, owning block) lists, mirroring the adjacency the
    // replay graph materialises from the stream.
    let mut incident: Vec<Vec<(NodeId, BlockId)>> = vec![Vec::new(); n];
    for (i, (u, v, _)) in graph.edges().enumerate() {
        let block = edge_assignments[i];
        incident[u as usize].push((v, block));
        incident[v as usize].push((u, block));
    }
    let mut primary = vec![0 as BlockId; n];
    let mut counts = vec![0u64; num_blocks as usize];
    for (v, edges) in incident.iter().enumerate() {
        for &(_, block) in edges {
            counts[block as usize] += 1;
        }
        let mut best = 0 as BlockId;
        let mut best_count = 0u64;
        for &(_, block) in edges {
            let c = counts[block as usize];
            if c > best_count || (c == best_count && block < best && best_count > 0) {
                best = block;
                best_count = c;
            }
        }
        primary[v] = best;
        for &(_, block) in edges {
            counts[block as usize] = 0;
        }
    }

    // The walk itself follows the same adjacency a node replay would see.
    let nbrs: Vec<Vec<NodeId>> = incident
        .iter()
        .map(|edges| edges.iter().map(|&(w, _)| w).collect())
        .collect();
    let live: Vec<NodeId> = (0..n as NodeId).collect();
    let replay = ReplayGraph { nbrs, live };
    simulate(
        &replay,
        &Serving::Edge {
            incident: &incident,
            primary: &primary,
        },
        num_blocks,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_gen::{barabasi_albert, erdos_renyi_gnm};
    use oms_graph::InMemoryStream;

    fn hash_assignment(n: usize, k: u32) -> Vec<BlockId> {
        (0..n as u32).map(|v| v % k).collect()
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let graph = barabasi_albert(300, 4, 7);
        let assignments = hash_assignment(graph.num_nodes(), 8);
        let config = ReplayConfig {
            requests: 500,
            seed: 11,
            ..ReplayConfig::default()
        };
        let a = replay_graph(&graph, &assignments, &config);
        let b = replay_graph(&graph, &assignments, &config);
        assert_eq!(a, b, "same seed must reproduce the full report");
        let other = replay_graph(&graph, &assignments, &ReplayConfig { seed: 12, ..config });
        assert_ne!(
            a.request_log_hash, other.request_log_hash,
            "different seeds must produce different request logs"
        );
    }

    #[test]
    fn conservation_holds() {
        let graph = erdos_renyi_gnm(200, 800, 3);
        let assignments = hash_assignment(graph.num_nodes(), 5);
        let config = ReplayConfig {
            requests: 400,
            hops: 3,
            arrival_every: 0,
            max_backlog: 40,
            ..ReplayConfig::default()
        };
        let report = replay_graph(&graph, &assignments, &config);
        assert_eq!(report.requests, report.served + report.rejected);
        assert!(report.rejected > 0, "a tight backlog must shed load");
        assert_eq!(report.block_load.iter().sum::<u64>(), report.total_hops);
        assert!(report.p50_latency <= report.p99_latency);
        assert!(report.p99_latency <= report.makespan);
    }

    #[test]
    fn single_block_has_no_cross_hops() {
        let graph = erdos_renyi_gnm(150, 600, 5);
        let assignments = vec![0; graph.num_nodes()];
        let report = replay_graph(&graph, &assignments, &ReplayConfig::default());
        assert_eq!(report.cross_block_hops, 0);
        assert_eq!(report.cross_block_hop_rate(), 0.0);
        assert_eq!(report.num_blocks, 1);
        assert_eq!(report.load_skew(), 1.0);
    }

    #[test]
    fn stream_and_graph_replays_agree() {
        let graph = barabasi_albert(250, 4, 9);
        let assignments = hash_assignment(graph.num_nodes(), 6);
        let config = ReplayConfig::default();
        let direct = replay_graph(&graph, &assignments, &config);
        let streamed =
            replay_stream(&mut InMemoryStream::new(&graph), &assignments, &config).unwrap();
        assert_eq!(direct, streamed);
    }

    #[test]
    fn replica_sets_cover_every_edge_endpoint() {
        let graph = erdos_renyi_gnm(120, 480, 1);
        let m = graph.num_edges();
        let edge_assignments: Vec<BlockId> = (0..m as u32).map(|e| e % 4).collect();
        let sets = replica_sets(&graph, &edge_assignments);
        for (i, (u, v, _)) in graph.edges().enumerate() {
            let block = edge_assignments[i];
            assert!(sets[u as usize].contains(&block));
            assert!(sets[v as usize].contains(&block));
        }
        let report = replay_edge_partition(&graph, &edge_assignments, 4, &ReplayConfig::default());
        assert_eq!(report.requests, report.served + report.rejected);
        assert_eq!(report.block_load.iter().sum::<u64>(), report.total_hops);
    }

    #[test]
    fn worse_cut_means_more_cross_hops() {
        // Two cliques joined by one bridge: the aligned 2-way split has a
        // near-zero hop rate, the interleaved split pays on almost every
        // hop — the simulator must see the difference.
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                edges.push((a, b));
                edges.push((a + 10, b + 10));
            }
        }
        edges.push((0, 10));
        let graph = CsrGraph::from_edges(20, &edges).unwrap();
        let aligned: Vec<BlockId> = (0..20).map(|v| if v < 10 { 0 } else { 1 }).collect();
        let interleaved: Vec<BlockId> = (0..20u32).map(|v| v % 2).collect();
        let config = ReplayConfig {
            requests: 800,
            ..ReplayConfig::default()
        };
        let good = replay_graph(&graph, &aligned, &config);
        let bad = replay_graph(&graph, &interleaved, &config);
        assert!(good.cross_block_hop_rate() < bad.cross_block_hop_rate());
        assert!(good.p99_latency < bad.p99_latency);
    }
}
