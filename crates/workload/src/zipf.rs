//! A seeded Zipf sampler over ranks `0..n`.
//!
//! The build environment has no crates.io access, so the `rand` shim has no
//! distribution module; this is a small CDF-inversion sampler: weight
//! `1/(rank+1)^s`, cumulative table built once, each draw is one uniform
//! `f64` plus a binary search. Fixed summation order keeps the table — and
//! therefore every sample stream — bit-reproducible across platforms.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Zipf-distributed rank sampler: rank `r` is drawn with probability
/// proportional to `1/(r+1)^s`. `s = 0` degenerates to uniform; larger
/// exponents concentrate mass on the first ranks (the hubs).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative (unnormalised) weights; `cdf[r]` = total weight of ranks
    /// `0..=r`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `exponent` (clamped
    /// to be non-negative and finite).
    ///
    /// # Panics
    /// Panics when `n == 0`: there is no rank to sample.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let s = if exponent.is_finite() {
            exponent.max(0.0)
        } else {
            0.0
        };
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += ((rank + 1) as f64).powf(-s);
            cdf.push(total);
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero ranks (never true — `new` rejects
    /// `n == 0` — but the conventional pair to [`ZipfSampler::len`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let total = *self.cdf.last().expect("non-empty CDF");
        let u: f64 = rng.gen::<f64>() * total;
        // Rank r covers the half-open weight interval (cdf[r-1], cdf[r]].
        match self
            .cdf
            .binary_search_by(|w| w.partial_cmp(&u).expect("finite weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(n: usize, s: f64, draws: usize, seed: u64) -> Vec<usize> {
        let sampler = ZipfSampler::new(n, s);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range_and_reproduce() {
        let a = histogram(37, 1.1, 5000, 9);
        let b = histogram(37, 1.1, 5000, 9);
        assert_eq!(a, b, "same seed must reproduce the sample stream");
        assert_eq!(a.iter().sum::<usize>(), 5000);
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let counts = histogram(50, 1.2, 20_000, 3);
        assert!(counts[0] > counts[49], "rank 0 must dominate the tail");
        // With s = 1.2 over 50 ranks, rank 0 holds > 20 % of the mass.
        assert!(counts[0] > 4000, "rank 0 too light: {}", counts[0]);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let counts = histogram(10, 0.0, 50_000, 7);
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (3500..=6500).contains(&c),
                "rank {rank} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let counts = histogram(1, 2.0, 100, 1);
        assert_eq!(counts[0], 100);
    }
}
