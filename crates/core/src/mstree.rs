//! The multi-section tree.
//!
//! Online recursive multi-section keeps the *whole hierarchy* of blocks and
//! sub-blocks in memory (Lemma 1 of the paper shows this is only `O(k)`
//! weights). The tree comes in two flavours:
//!
//! * built from a communication hierarchy `S = a1:…:aℓ` — every internal
//!   node at depth `d` has `a_{ℓ−d}` children and all leaves sit at depth
//!   `ℓ`; the leaf order matches the PE numbering of
//!   [`crate::HierarchySpec`], so a leaf assignment *is* a process mapping;
//! * built by recursive `b`-section for an arbitrary number of blocks `k`
//!   (Algorithm 2, `BuildHierarchy`) — used by nh-OMS when no hierarchy is
//!   given. When `k` is not a power of `b` the tree is irregular and blocks
//!   cover different numbers of original blocks `t`, which is reflected in
//!   their capacities (`t·L_max`) and their adapted Fennel `α`.

use crate::hierarchy::HierarchySpec;
use crate::scorer::fennel_alpha;
use crate::{AlphaMode, BlockId};
use oms_graph::NodeWeight;

const NO_PARENT: u32 = u32::MAX;

/// A static tree of partitioning subproblems.
#[derive(Clone, Debug)]
pub struct MultisectionTree {
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    child_index: Vec<u32>,
    depth: Vec<u32>,
    covered: Vec<u32>,
    leaf_block: Vec<Option<BlockId>>,
    /// For every original block id: the tree nodes on the path from depth 1
    /// down to its leaf (the root is implicit).
    block_paths: Vec<Vec<u32>>,
    root: u32,
    k: u32,
    max_depth: usize,
}

impl MultisectionTree {
    /// Builds the tree mirroring a communication hierarchy `S = a1:…:aℓ`.
    ///
    /// The root's children correspond to the *top* hierarchy level `aℓ`
    /// (assigned first by Algorithm 1), leaves to single PEs.
    pub fn from_hierarchy(hierarchy: &HierarchySpec) -> Self {
        let k = hierarchy.total_blocks();
        let factors = hierarchy.factors();
        let levels = factors.len();
        let mut tree = MultisectionTree::empty(k);
        let root = tree.add_node(NO_PARENT, 0, k);
        tree.root = root;
        // Recursive splitting over contiguous block-id ranges. At depth `d`
        // the children count is `a_{ℓ-d}` (factors are stored lowest level
        // first).
        let mut stack: Vec<(u32, u32, u32)> = vec![(root, 0, k)];
        while let Some((node, lo, hi)) = stack.pop() {
            let d = tree.depth[node as usize] as usize;
            if hi - lo == 1 {
                tree.leaf_block[node as usize] = Some(lo);
                continue;
            }
            let fan_out = factors[levels - 1 - d];
            let step = (hi - lo) / fan_out;
            for i in 0..fan_out {
                let c_lo = lo + i * step;
                let c_hi = c_lo + step;
                let child = tree.add_node(node, (d + 1) as u32, c_hi - c_lo);
                stack.push((child, c_lo, c_hi));
            }
        }
        tree.finalise();
        tree
    }

    /// Builds an artificial recursive `b`-section tree over `k` blocks
    /// (Algorithm 2 generalised from bisection to `b`-section).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `base_b < 2`.
    pub fn flat(k: u32, base_b: u32) -> Self {
        assert!(k > 0, "cannot build a tree over zero blocks");
        assert!(base_b >= 2, "the multi-section base must be at least 2");
        let mut tree = MultisectionTree::empty(k);
        let root = tree.add_node(NO_PARENT, 0, k);
        tree.root = root;
        let mut stack: Vec<(u32, u32, u32)> = vec![(root, 0, k)];
        while let Some((node, lo, hi)) = stack.pop() {
            let size = hi - lo;
            if size == 1 {
                tree.leaf_block[node as usize] = Some(lo);
                continue;
            }
            let d = tree.depth[node as usize];
            let fan_out = base_b.min(size);
            // Split the covered range into `fan_out` parts whose sizes differ
            // by at most one (BuildHierarchy's ⌊(kL+kR)/2⌋ split generalised).
            let base = size / fan_out;
            let remainder = size % fan_out;
            let mut c_lo = lo;
            for i in 0..fan_out {
                let extent = base + if i < remainder { 1 } else { 0 };
                let child = tree.add_node(node, d + 1, extent);
                stack.push((child, c_lo, c_lo + extent));
                c_lo += extent;
            }
            debug_assert_eq!(c_lo, hi);
        }
        tree.finalise();
        tree
    }

    fn empty(k: u32) -> Self {
        MultisectionTree {
            parent: Vec::new(),
            children: Vec::new(),
            child_index: Vec::new(),
            depth: Vec::new(),
            covered: Vec::new(),
            leaf_block: Vec::new(),
            block_paths: vec![Vec::new(); k as usize],
            root: 0,
            k,
            max_depth: 0,
        }
    }

    fn add_node(&mut self, parent: u32, depth: u32, covered: u32) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(parent);
        self.children.push(Vec::new());
        self.depth.push(depth);
        self.covered.push(covered);
        self.leaf_block.push(None);
        if parent == NO_PARENT {
            self.child_index.push(0);
        } else {
            let idx = self.children[parent as usize].len() as u32;
            self.children[parent as usize].push(id);
            self.child_index.push(idx);
        }
        self.max_depth = self.max_depth.max(depth as usize);
        id
    }

    fn finalise(&mut self) {
        // Children were pushed via a stack, so their order within a parent
        // may be reversed relative to the covered block ranges; restore the
        // creation order, which is ascending node id (ranges were created in
        // ascending order for `from_hierarchy` and `flat` alike).
        for kids in &mut self.children {
            kids.sort_unstable();
        }
        for (parent, kids) in self.children.iter().enumerate() {
            for (idx, &child) in kids.iter().enumerate() {
                let _ = parent;
                self.child_index[child as usize] = idx as u32;
            }
        }
        // Record the root-to-leaf path of every block.
        for node in 0..self.parent.len() as u32 {
            if let Some(block) = self.leaf_block[node as usize] {
                let mut path = Vec::with_capacity(self.depth[node as usize] as usize);
                let mut cur = node;
                while cur != self.root {
                    path.push(cur);
                    cur = self.parent[cur as usize];
                }
                path.reverse();
                self.block_paths[block as usize] = path;
            }
        }
    }

    /// Total number of tree nodes (internal + leaves).
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// The root node id.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Number of original blocks `k` covered by the whole tree.
    pub fn num_blocks(&self) -> u32 {
        self.k
    }

    /// Maximum leaf depth (the number of assignment layers `ℓ`).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Children of a node (empty for leaves).
    pub fn children(&self, node: u32) -> &[u32] {
        &self.children[node as usize]
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, node: u32) -> Option<u32> {
        let p = self.parent[node as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, node: u32) -> u32 {
        self.depth[node as usize]
    }

    /// Number of original blocks covered by a node (`t` in §3.3).
    pub fn covered(&self, node: u32) -> u32 {
        self.covered[node as usize]
    }

    /// Index of a node within its parent's child list.
    pub fn child_index(&self, node: u32) -> u32 {
        self.child_index[node as usize]
    }

    /// The original block id of a leaf node, `None` for internal nodes.
    pub fn leaf_block(&self, node: u32) -> Option<BlockId> {
        self.leaf_block[node as usize]
    }

    /// The tree nodes on the path from depth 1 to the leaf of `block`.
    pub fn path_of_block(&self, block: BlockId) -> &[u32] {
        &self.block_paths[block as usize]
    }

    /// The leaf node of `block`. For the degenerate single-block tree the
    /// root itself is the leaf.
    pub fn leaf_of_block(&self, block: BlockId) -> u32 {
        self.block_paths[block as usize]
            .last()
            .copied()
            .unwrap_or(self.root)
    }

    /// Capacity of every tree node: `t · L_max` where `L_max` is the balance
    /// constraint of the original `k`-way problem (§3.2/§3.3).
    pub fn capacities(&self, total_weight: NodeWeight, epsilon: f64) -> Vec<NodeWeight> {
        let lmax = crate::Partition::capacity(total_weight, self.k, epsilon);
        self.covered
            .iter()
            .map(|&t| t as NodeWeight * lmax)
            .collect()
    }

    /// Fennel `α` of every tree node seen as a *candidate block* of its
    /// parent's subproblem.
    ///
    /// With [`AlphaMode::Adapted`] the value is `√(k/t)·m/n^{3/2}`, which
    /// specialises to the paper's `αᵢ = α/√(Π_{r<i} a_r)` for homogeneous
    /// hierarchies and to the `√t`-scaled correction of §3.3 for
    /// heterogeneous subproblems. With [`AlphaMode::Global`] every node gets
    /// the original `k`-way `α`.
    pub fn alphas(&self, m: usize, n: usize, mode: AlphaMode) -> Vec<f64> {
        let global = fennel_alpha(self.k, m, n);
        match mode {
            AlphaMode::Global => vec![global; self.num_nodes()],
            AlphaMode::Adapted => self
                .covered
                .iter()
                .map(|&t| global / (t as f64).sqrt())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_tree_shape() {
        let h = HierarchySpec::parse("2:3").unwrap(); // k = 6, top level 3
        let tree = MultisectionTree::from_hierarchy(&h);
        assert_eq!(tree.num_blocks(), 6);
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.children(tree.root()).len(), 3);
        for &child in tree.children(tree.root()) {
            assert_eq!(tree.children(child).len(), 2);
            assert_eq!(tree.covered(child), 2);
        }
        // 1 root + 3 internals + 6 leaves
        assert_eq!(tree.num_nodes(), 10);
    }

    #[test]
    fn hierarchy_leaf_numbering_matches_pe_ids() {
        // S = 2:2: PE id = x1 + 2*x2. The root's first child covers PEs {0,1}
        // (x2 = 0), its second child PEs {2,3}.
        let h = HierarchySpec::parse("2:2").unwrap();
        let tree = MultisectionTree::from_hierarchy(&h);
        let top = tree.children(tree.root());
        let blocks_under = |node: u32| -> Vec<BlockId> {
            let mut blocks: Vec<BlockId> = (0..tree.num_blocks())
                .filter(|&b| tree.path_of_block(b).contains(&node))
                .collect();
            blocks.sort_unstable();
            blocks
        };
        assert_eq!(blocks_under(top[0]), vec![0, 1]);
        assert_eq!(blocks_under(top[1]), vec![2, 3]);
    }

    #[test]
    fn block_paths_have_hierarchy_depth() {
        let h = HierarchySpec::parse("4:16:8").unwrap();
        let tree = MultisectionTree::from_hierarchy(&h);
        assert_eq!(tree.num_blocks(), 512);
        for b in 0..512 {
            let path = tree.path_of_block(b);
            assert_eq!(path.len(), 3);
            assert_eq!(tree.leaf_block(*path.last().unwrap()), Some(b));
            // The path must be a parent chain starting below the root.
            assert_eq!(tree.parent(path[0]), Some(tree.root()));
            for w in path.windows(2) {
                assert_eq!(tree.parent(w[1]), Some(w[0]));
            }
        }
    }

    #[test]
    fn storage_is_linear_in_k() {
        // Lemma 1: the whole tree stores at most 2k block weights.
        for spec in ["2:2:2:2:2", "4:4:4", "2:3:5"] {
            let h = HierarchySpec::parse(spec).unwrap();
            let tree = MultisectionTree::from_hierarchy(&h);
            assert!(tree.num_nodes() <= 2 * tree.num_blocks() as usize + 1);
        }
    }

    #[test]
    fn flat_tree_power_of_base_is_uniform() {
        let tree = MultisectionTree::flat(16, 4);
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.children(tree.root()).len(), 4);
        for &c in tree.children(tree.root()) {
            assert_eq!(tree.children(c).len(), 4);
            assert_eq!(tree.covered(c), 4);
        }
    }

    #[test]
    fn flat_tree_heterogeneous_coverage() {
        // k = 5 with bisection: root children cover 3 and 2 blocks.
        let tree = MultisectionTree::flat(5, 2);
        let top = tree.children(tree.root());
        assert_eq!(top.len(), 2);
        let mut coverage: Vec<u32> = top.iter().map(|&c| tree.covered(c)).collect();
        coverage.sort_unstable();
        assert_eq!(coverage, vec![2, 3]);
        // Every block has a distinct leaf.
        let mut leaves: Vec<u32> = (0..5).map(|b| tree.leaf_of_block(b)).collect();
        leaves.sort_unstable();
        leaves.dedup();
        assert_eq!(leaves.len(), 5);
    }

    #[test]
    fn flat_tree_single_block() {
        let tree = MultisectionTree::flat(1, 4);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.max_depth(), 0);
        assert_eq!(tree.leaf_block(tree.root()), Some(0));
        assert_eq!(tree.path_of_block(0).len(), 0);
    }

    #[test]
    fn capacities_scale_with_coverage() {
        let tree = MultisectionTree::flat(5, 2);
        // total weight 100, eps 0 → Lmax = 20; root capacity 100.
        let caps = tree.capacities(100, 0.0);
        assert_eq!(caps[tree.root() as usize], 100);
        let top = tree.children(tree.root());
        let mut top_caps: Vec<_> = top.iter().map(|&c| caps[c as usize]).collect();
        top_caps.sort_unstable();
        assert_eq!(top_caps, vec![40, 60]);
    }

    #[test]
    fn adapted_alpha_matches_paper_formula_for_uniform_hierarchy() {
        // S = 4:4, k = 16. A child of the root covers t = 4 blocks, so its α
        // must be α_global / 2 = α / sqrt(Π_{r<ℓ} a_r).
        let h = HierarchySpec::parse("4:4").unwrap();
        let tree = MultisectionTree::from_hierarchy(&h);
        let m = 10_000;
        let n = 1_000;
        let alphas = tree.alphas(m, n, AlphaMode::Adapted);
        let global = fennel_alpha(16, m, n);
        let top_child = tree.children(tree.root())[0];
        assert!((alphas[top_child as usize] - global / 2.0).abs() < 1e-12);
        let leaf = tree.leaf_of_block(0);
        assert!((alphas[leaf as usize] - global).abs() < 1e-12);
    }

    #[test]
    fn global_alpha_is_constant() {
        let tree = MultisectionTree::flat(7, 2);
        let alphas = tree.alphas(100, 50, AlphaMode::Global);
        let first = alphas[0];
        assert!(alphas.iter().all(|&a| (a - first).abs() < 1e-15));
    }

    #[test]
    fn child_indices_are_consistent() {
        let tree = MultisectionTree::flat(13, 4);
        for node in 0..tree.num_nodes() as u32 {
            for (i, &child) in tree.children(node).iter().enumerate() {
                assert_eq!(tree.child_index(child) as usize, i);
                assert_eq!(tree.parent(child), Some(node));
                assert_eq!(tree.depth(child), tree.depth(node) + 1);
            }
        }
    }

    #[test]
    fn covered_counts_sum_to_parent() {
        let tree = MultisectionTree::flat(37, 3);
        for node in 0..tree.num_nodes() as u32 {
            let kids = tree.children(node);
            if !kids.is_empty() {
                let sum: u32 = kids.iter().map(|&c| tree.covered(c)).sum();
                assert_eq!(sum, tree.covered(node));
            }
        }
    }

    #[test]
    #[should_panic]
    fn flat_tree_with_base_one_panics() {
        MultisectionTree::flat(8, 1);
    }
}
