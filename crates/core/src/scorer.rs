//! Scoring primitives shared by the flat baselines and the multi-section
//! subproblems.
//!
//! A *candidate block* is described by its current weight, its capacity and
//! the (edge-weighted) number of the streamed node's neighbors it already
//! holds. Every scorer picks the candidate maximising its objective among the
//! candidates that can still take the node; if no candidate can, the least
//! loaded one (relative to its capacity) is used as a fallback so that the
//! stream always makes progress.

use oms_graph::{EdgeWeight, NodeId, NodeWeight};

/// A candidate block as seen by a scorer.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// Current weight of the block.
    pub weight: NodeWeight,
    /// Capacity (`L_max` or the subproblem's `Lᵢ`) of the block.
    pub capacity: NodeWeight,
    /// Total weight of edges from the streamed node to nodes already in this
    /// block (`ω(N(v) ∩ Vᵢ)`).
    pub connectivity: EdgeWeight,
    /// Fennel's `α` for this block (ignored by LDG / Hashing).
    pub alpha: f64,
}

/// Fennel's additive objective for one candidate:
/// `ω(N(v) ∩ Vᵢ) − α·γ·c(Vᵢ)^{γ−1}`.
#[inline]
pub fn fennel_score(c: &Candidate, gamma: f64) -> f64 {
    c.connectivity as f64 - c.alpha * gamma * (c.weight as f64).powf(gamma - 1.0)
}

/// LDG's multiplicative objective for one candidate:
/// `ω(N(v) ∩ Vᵢ) · (1 − c(Vᵢ)/Lᵢ)`.
#[inline]
pub fn ldg_score(c: &Candidate) -> f64 {
    let remaining = 1.0 - c.weight as f64 / c.capacity.max(1) as f64;
    c.connectivity as f64 * remaining
}

/// Deterministic node hash used by the Hashing scorer. Splitmix64 over the
/// node id and the seed: cheap, uniform, reproducible.
#[inline]
pub fn hash_node(node: NodeId, seed: u64) -> u64 {
    let mut x = (node as u64)
        .wrapping_add(seed)
        .wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Picks the best candidate under Fennel's objective.
///
/// Only candidates that can still fit `node_weight` are considered; if none
/// can, the candidate with the lowest relative load is returned. Ties are
/// broken towards the lighter block, then towards the smaller index, which
/// makes the result deterministic.
pub fn select_fennel(candidates: &[Candidate], node_weight: NodeWeight, gamma: f64) -> usize {
    select_by(candidates, node_weight, |c| fennel_score(c, gamma))
}

/// Picks the best candidate under LDG's objective (same fallback and
/// tie-breaking rules as [`select_fennel`]).
pub fn select_ldg(candidates: &[Candidate], node_weight: NodeWeight) -> usize {
    select_by(candidates, node_weight, ldg_score)
}

/// Picks a candidate uniformly by hashing the node id.
pub fn select_hashing(num_candidates: usize, node: NodeId, seed: u64) -> usize {
    debug_assert!(num_candidates > 0);
    (hash_node(node, seed) % num_candidates as u64) as usize
}

fn select_by<F>(candidates: &[Candidate], node_weight: NodeWeight, score: F) -> usize
where
    F: Fn(&Candidate) -> f64,
{
    debug_assert!(!candidates.is_empty());
    let mut best: Option<(usize, f64, NodeWeight)> = None;
    for (i, c) in candidates.iter().enumerate() {
        if c.weight + node_weight > c.capacity {
            continue;
        }
        let s = score(c);
        match best {
            None => best = Some((i, s, c.weight)),
            Some((_, bs, bw)) => {
                if s > bs || (s == bs && c.weight < bw) {
                    best = Some((i, s, c.weight));
                }
            }
        }
    }
    if let Some((i, _, _)) = best {
        return i;
    }
    // Fallback: every block is full; pick the one with the lowest relative
    // load so the overload is spread as evenly as possible.
    candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let la = a.weight as f64 / a.capacity.max(1) as f64;
            let lb = b.weight as f64 / b.capacity.max(1) as f64;
            la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// The global Fennel parameter `α = √k · m / n^{3/2}` of a `k`-way
/// partitioning problem on a graph with `n` nodes and `m` edges.
pub fn fennel_alpha(k: u32, m: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (k as f64).sqrt() * m as f64 / (n as f64).powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(weight: NodeWeight, capacity: NodeWeight, connectivity: EdgeWeight) -> Candidate {
        Candidate {
            weight,
            capacity,
            connectivity,
            alpha: 1.0,
        }
    }

    #[test]
    fn fennel_prefers_connectivity() {
        let candidates = [cand(10, 100, 0), cand(10, 100, 5)];
        assert_eq!(select_fennel(&candidates, 1, 1.5), 1);
    }

    #[test]
    fn fennel_penalises_heavy_blocks() {
        // Equal connectivity: the lighter block wins through the additive
        // penalty.
        let candidates = [cand(90, 100, 3), cand(10, 100, 3)];
        assert_eq!(select_fennel(&candidates, 1, 1.5), 1);
    }

    #[test]
    fn fennel_respects_capacity() {
        // Block 1 has more neighbors but is full.
        let candidates = [cand(10, 100, 0), cand(100, 100, 9)];
        assert_eq!(select_fennel(&candidates, 1, 1.5), 0);
    }

    #[test]
    fn fallback_picks_least_loaded_when_everything_is_full() {
        let candidates = [cand(100, 100, 0), cand(99, 100, 0), cand(100, 100, 5)];
        assert_eq!(select_fennel(&candidates, 5, 1.5), 1);
        assert_eq!(select_ldg(&candidates, 5), 1);
    }

    #[test]
    fn ldg_prefers_connectivity_scaled_by_remaining_capacity() {
        // Block 0: 4 neighbors but nearly full; block 1: 3 neighbors, empty.
        let candidates = [cand(90, 100, 4), cand(0, 100, 3)];
        assert_eq!(select_ldg(&candidates, 1), 1);
    }

    #[test]
    fn ldg_ties_broken_towards_lighter_block() {
        // No neighbors anywhere: all scores are 0, lighter block wins.
        let candidates = [cand(5, 100, 0), cand(2, 100, 0), cand(9, 100, 0)];
        assert_eq!(select_ldg(&candidates, 1), 1);
    }

    #[test]
    fn hashing_is_deterministic_and_in_range() {
        for node in 0..1000u32 {
            let a = select_hashing(7, node, 42);
            let b = select_hashing(7, node, 42);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hashing_spreads_nodes_roughly_uniformly() {
        let k = 8;
        let mut counts = vec![0usize; k];
        for node in 0..8000u32 {
            counts[select_hashing(k, node, 1)] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn alpha_formula() {
        // α = sqrt(k) * m / n^1.5
        let alpha = fennel_alpha(4, 1000, 100);
        assert!((alpha - 2.0 * 1000.0 / 1000.0).abs() < 1e-12);
        assert_eq!(fennel_alpha(4, 10, 0), 0.0);
    }

    #[test]
    fn fennel_score_formula() {
        let c = Candidate {
            weight: 4,
            capacity: 100,
            connectivity: 7,
            alpha: 0.5,
        };
        let expected = 7.0 - 0.5 * 1.5 * 4.0f64.powf(0.5);
        assert!((fennel_score(&c, 1.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn ldg_score_formula() {
        let c = Candidate {
            weight: 25,
            capacity: 100,
            connectivity: 4,
            alpha: 0.0,
        };
        assert!((ldg_score(&c) - 4.0 * 0.75).abs() < 1e-12);
    }
}
