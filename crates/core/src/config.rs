//! Configuration of the streaming partitioners.

/// The one-pass scoring function used to solve a partitioning (sub)problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScorerKind {
    /// Fennel's additive-penalty objective (Tsourakakis et al.), the paper's
    /// default scorer.
    Fennel,
    /// Linear deterministic greedy (Stanton & Kliot) with its multiplicative
    /// penalty.
    Ldg,
    /// Random hash assignment — fastest, worst quality.
    Hashing,
}

/// How Fennel's `α` parameter is chosen for the multi-section subproblems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlphaMode {
    /// Recompute `α` per subproblem from its own `(kᵢ, mᵢ, nᵢ)`
    /// (§3.2 "Fennel Mapping"), the paper's tuned default: `αᵢ = α / √(Π_{r<i} a_r)`.
    Adapted,
    /// Use the global `α = √k · m / n^{3/2}` of the original `k`-way problem
    /// for every subproblem (the ablation baseline).
    Global,
}

/// Configuration shared by the OMS / nh-OMS partitioners.
#[derive(Clone, Copy, Debug)]
pub struct OmsConfig {
    /// Allowed imbalance ε of the balance constraint
    /// `L_max = ⌈(1+ε)·c(V)/k⌉`. The paper uses 3 % everywhere.
    pub epsilon: f64,
    /// Scoring function for the non-hybrid layers.
    pub scorer: ScorerKind,
    /// `α` strategy for Fennel subproblems.
    pub alpha_mode: AlphaMode,
    /// Number of *bottom* tree layers solved with Hashing instead of the
    /// configured scorer (the hybrid mapping of §3.2). `0` disables
    /// hybridisation.
    pub hashing_bottom_layers: usize,
    /// Base `b` of the artificial multi-section tree built when no hierarchy
    /// is given (nh-OMS). The paper's tuning selects `b = 4`.
    pub base_b: u32,
    /// Fennel's exponent γ; the paper (following Tsourakakis et al.) uses 1.5.
    pub gamma: f64,
    /// Seed for the Hashing scorer and any tie-breaking randomisation.
    pub seed: u64,
}

impl Default for OmsConfig {
    fn default() -> Self {
        OmsConfig {
            epsilon: 0.03,
            scorer: ScorerKind::Fennel,
            alpha_mode: AlphaMode::Adapted,
            hashing_bottom_layers: 0,
            base_b: 4,
            gamma: 1.5,
            seed: 0,
        }
    }
}

impl OmsConfig {
    /// Creates the default configuration (Fennel scorer, adapted α, ε = 3 %,
    /// base 4).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the allowed imbalance ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the scoring function.
    pub fn scorer(mut self, scorer: ScorerKind) -> Self {
        self.scorer = scorer;
        self
    }

    /// Sets the α mode.
    pub fn alpha_mode(mut self, mode: AlphaMode) -> Self {
        self.alpha_mode = mode;
        self
    }

    /// Solves the given number of bottom layers with Hashing (hybrid mode).
    pub fn hashing_bottom_layers(mut self, layers: usize) -> Self {
        self.hashing_bottom_layers = layers;
        self
    }

    /// Sets the base of the artificial hierarchy used by nh-OMS.
    pub fn base_b(mut self, b: u32) -> Self {
        self.base_b = b;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets Fennel's γ exponent.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }
}

/// Configuration of the flat one-pass baselines (Fennel, LDG, Hashing).
#[derive(Clone, Copy, Debug)]
pub struct OnePassConfig {
    /// Allowed imbalance ε.
    pub epsilon: f64,
    /// Fennel's γ exponent.
    pub gamma: f64,
    /// Seed for Hashing / tie breaking.
    pub seed: u64,
}

impl Default for OnePassConfig {
    fn default() -> Self {
        OnePassConfig {
            epsilon: 0.03,
            gamma: 1.5,
            seed: 0,
        }
    }
}

impl OnePassConfig {
    /// Creates the default configuration (ε = 3 %, γ = 1.5).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the allowed imbalance ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets Fennel's γ exponent.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_tuning() {
        let cfg = OmsConfig::default();
        assert_eq!(cfg.epsilon, 0.03);
        assert_eq!(cfg.scorer, ScorerKind::Fennel);
        assert_eq!(cfg.alpha_mode, AlphaMode::Adapted);
        assert_eq!(cfg.base_b, 4);
        assert_eq!(cfg.hashing_bottom_layers, 0);
        assert_eq!(cfg.gamma, 1.5);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = OmsConfig::new()
            .epsilon(0.1)
            .scorer(ScorerKind::Ldg)
            .alpha_mode(AlphaMode::Global)
            .hashing_bottom_layers(2)
            .base_b(2)
            .seed(99)
            .gamma(2.0);
        assert_eq!(cfg.epsilon, 0.1);
        assert_eq!(cfg.scorer, ScorerKind::Ldg);
        assert_eq!(cfg.alpha_mode, AlphaMode::Global);
        assert_eq!(cfg.hashing_bottom_layers, 2);
        assert_eq!(cfg.base_b, 2);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.gamma, 2.0);
    }

    #[test]
    fn one_pass_defaults() {
        let cfg = OnePassConfig::default();
        assert_eq!(cfg.epsilon, 0.03);
        assert_eq!(cfg.gamma, 1.5);
        let cfg = OnePassConfig::new().epsilon(0.05).seed(7).gamma(1.25);
        assert_eq!(cfg.epsilon, 0.05);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.gamma, 1.25);
    }
}
