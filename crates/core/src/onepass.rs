//! Flat one-pass partitioning baselines: Hashing, LDG and Fennel.
//!
//! These are the non-buffered streaming state of the art the paper compares
//! against (§2.2). All three follow the same skeleton — load a node, score
//! all `k` blocks, assign permanently — and differ only in the scoring rule:
//!
//! * **Hashing** assigns `hash(v) mod k`; `O(n)` time, poor quality.
//! * **LDG** maximises `ω(N(v) ∩ Vᵢ)·(1 − c(Vᵢ)/L_max)`; `O(m + nk)` time.
//! * **Fennel** maximises `ω(N(v) ∩ Vᵢ) − α·γ·c(Vᵢ)^{γ−1}`; `O(m + nk)` time.

use crate::config::OnePassConfig;
use crate::executor::{BatchExecutor, NodeSink, PassTrajectory};
use crate::partition::{Partition, UNASSIGNED};
use crate::scorer::{fennel_alpha, hash_node};
use crate::{BlockId, PartitionError, Result};
use oms_graph::{CsrGraph, InMemoryStream, NodeStream, NodeWeight};

/// Common interface of all sequential streaming partitioners, flat or
/// hierarchical.
pub trait StreamingPartitioner {
    /// Partitions the nodes delivered by `stream` in a single pass (or a
    /// fixed number of passes for restreaming algorithms).
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition>;

    /// Like [`StreamingPartitioner::partition_stream`], but additionally
    /// returns the per-pass quality trajectory recorded by the multi-pass
    /// engine. Single-pass algorithms return an empty trajectory by
    /// default; restreaming algorithms override this.
    fn partition_stream_tracked<S: NodeStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Partition, PassTrajectory)> {
        Ok((self.partition_stream(stream)?, PassTrajectory::default()))
    }

    /// Number of blocks this partitioner produces.
    fn num_blocks(&self) -> u32;

    /// Short algorithm name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Convenience wrapper streaming an in-memory graph in natural order.
    fn partition_graph(&self, graph: &CsrGraph) -> Result<Partition> {
        self.partition_stream(&mut InMemoryStream::new(graph))
    }
}

fn check_k(k: u32) -> Result<()> {
    if k == 0 {
        Err(PartitionError::InvalidConfig(
            "the number of blocks k must be positive".into(),
        ))
    } else {
        Ok(())
    }
}

/// The Hashing baseline: `block(v) = hash(v) mod k`.
#[derive(Clone, Copy, Debug)]
pub struct Hashing {
    k: u32,
    config: OnePassConfig,
}

impl Hashing {
    /// Creates a Hashing partitioner for `k` blocks.
    pub fn new(k: u32, config: OnePassConfig) -> Self {
        Hashing { k, config }
    }
}

impl StreamingPartitioner for Hashing {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_k(self.k)?;
        let n = stream.num_nodes();
        let mut sink = HashingSink {
            assignments: vec![UNASSIGNED; n],
            node_weights: vec![0; n],
            k: self.k as u64,
            seed: self.config.seed,
        };
        BatchExecutor::default().run(stream, &mut sink)?;
        Ok(Partition::from_assignments(
            self.k,
            sink.assignments,
            &sink.node_weights,
        ))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "hashing"
    }
}

/// The linear deterministic greedy (LDG) baseline.
#[derive(Clone, Copy, Debug)]
pub struct Ldg {
    k: u32,
    config: OnePassConfig,
}

impl Ldg {
    /// Creates an LDG partitioner for `k` blocks.
    pub fn new(k: u32, config: OnePassConfig) -> Self {
        Ldg { k, config }
    }
}

impl StreamingPartitioner for Ldg {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_k(self.k)?;
        let mut sink = FlatSink::new(FlatState::new(self.k, stream, self.config), ldg_objective);
        BatchExecutor::default().run(stream, &mut sink)?;
        Ok(sink.into_partition(self.k))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "ldg"
    }
}

/// The Fennel baseline (Tsourakakis et al.) with
/// `α = √k·m/n^{3/2}`, `γ = 1.5`.
#[derive(Clone, Copy, Debug)]
pub struct Fennel {
    k: u32,
    config: OnePassConfig,
}

impl Fennel {
    /// Creates a Fennel partitioner for `k` blocks.
    pub fn new(k: u32, config: OnePassConfig) -> Self {
        Fennel { k, config }
    }
}

impl StreamingPartitioner for Fennel {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_k(self.k)?;
        let mut sink = FlatSink::new(
            FlatState::new(self.k, stream, self.config),
            fennel_objective,
        );
        BatchExecutor::default().run(stream, &mut sink)?;
        Ok(sink.into_partition(self.k))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "fennel"
    }
}

/// Fennel's additive objective as a flat scoring function:
/// `conn − α·γ·c(Vᵢ)^{γ−1}`.
pub(crate) fn fennel_objective(
    conn: u64,
    weight: NodeWeight,
    _capacity: NodeWeight,
    alpha: f64,
    gamma: f64,
) -> f64 {
    conn as f64 - alpha * gamma * (weight as f64).powf(gamma - 1.0)
}

/// LDG's multiplicative objective as a flat scoring function:
/// `conn · (1 − c(Vᵢ)/L_max)`.
pub(crate) fn ldg_objective(
    conn: u64,
    weight: NodeWeight,
    capacity: NodeWeight,
    _alpha: f64,
    _gamma: f64,
) -> f64 {
    conn as f64 * (1.0 - weight as f64 / capacity.max(1) as f64)
}

/// The Hashing algorithm as a [`NodeSink`]: stateless per node, no scoring.
pub(crate) struct HashingSink {
    pub(crate) assignments: Vec<BlockId>,
    pub(crate) node_weights: Vec<NodeWeight>,
    pub(crate) k: u64,
    pub(crate) seed: u64,
}

impl NodeSink for HashingSink {
    fn process(&mut self, node: oms_graph::StreamedNode<'_>) {
        self.assignments[node.node as usize] =
            (hash_node(node.node, self.seed) % self.k) as BlockId;
        self.node_weights[node.node as usize] = node.weight;
    }

    fn assignments(&self) -> Option<&[BlockId]> {
        Some(&self.assignments)
    }

    fn num_blocks(&self) -> u32 {
        self.k as u32
    }

    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        self.assignments.copy_from_slice(assignments);
        true
    }
}

/// A flat one-pass algorithm as a [`NodeSink`]: [`FlatState`] plus its
/// scoring objective. From the second pass on (restreaming), each node is
/// unassigned before being re-scored; a *seeded* sink (refinement of an
/// existing partition) restreams from the very first pass.
pub(crate) struct FlatSink<F> {
    state: FlatState,
    objective: F,
    restreaming: bool,
    seeded: bool,
}

impl<F> FlatSink<F>
where
    F: Fn(u64, NodeWeight, NodeWeight, f64, f64) -> f64,
{
    pub(crate) fn new(state: FlatState, objective: F) -> Self {
        FlatSink {
            state,
            objective,
            restreaming: false,
            seeded: false,
        }
    }

    /// A sink whose state was seeded from an existing partition: every pass
    /// (including the first) unassigns each node before re-scoring it.
    pub(crate) fn seeded(state: FlatState, objective: F) -> Self {
        FlatSink {
            state,
            objective,
            restreaming: true,
            seeded: true,
        }
    }

    pub(crate) fn into_partition(self, k: u32) -> Partition {
        self.state.into_partition(k)
    }
}

impl<F> NodeSink for FlatSink<F>
where
    F: Fn(u64, NodeWeight, NodeWeight, f64, f64) -> f64,
{
    fn begin_pass(&mut self, pass: usize) {
        self.restreaming = self.seeded || pass > 0;
    }

    fn process(&mut self, node: oms_graph::StreamedNode<'_>) {
        if self.restreaming {
            self.state.unassign(node.node, node.weight);
        }
        self.state.assign(node, &self.objective);
    }

    fn assignments(&self) -> Option<&[BlockId]> {
        Some(&self.state.assignments)
    }

    fn num_blocks(&self) -> u32 {
        self.state.block_weights.len() as u32
    }

    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        self.state.restore(assignments);
        true
    }
}

/// Shared mutable state of the flat `O(m + nk)` partitioners.
pub(crate) struct FlatState {
    pub(crate) assignments: Vec<BlockId>,
    pub(crate) node_weights: Vec<NodeWeight>,
    pub(crate) block_weights: Vec<NodeWeight>,
    conn: Vec<u64>,
    touched: Vec<BlockId>,
    capacity: NodeWeight,
    alpha: f64,
    gamma: f64,
}

impl FlatState {
    pub(crate) fn new<S: NodeStream>(k: u32, stream: &S, config: OnePassConfig) -> Self {
        let n = stream.num_nodes();
        FlatState {
            assignments: vec![UNASSIGNED; n],
            node_weights: vec![0; n],
            block_weights: vec![0; k as usize],
            conn: vec![0; k as usize],
            touched: Vec::new(),
            capacity: Partition::capacity(stream.total_node_weight(), k, config.epsilon),
            alpha: fennel_alpha(k, stream.num_edges(), n),
            gamma: config.gamma,
        }
    }

    /// Scores all blocks for `node` with `score(conn, weight, capacity, alpha,
    /// gamma)` and assigns it to the best feasible one (least loaded block if
    /// every block is full).
    pub(crate) fn assign<F>(&mut self, node: oms_graph::StreamedNode<'_>, score: F)
    where
        F: Fn(u64, NodeWeight, NodeWeight, f64, f64) -> f64,
    {
        // Connectivity towards already-assigned neighbors.
        for (u, w) in node.neighbors_weighted() {
            let b = self.assignments[u as usize];
            if b != UNASSIGNED {
                if self.conn[b as usize] == 0 {
                    self.touched.push(b);
                }
                self.conn[b as usize] += w;
            }
        }

        let k = self.block_weights.len();
        let mut best: Option<(usize, f64, NodeWeight)> = None;
        let mut fallback = 0usize;
        let mut fallback_load = f64::INFINITY;
        for b in 0..k {
            let weight = self.block_weights[b];
            let load = weight as f64 / self.capacity.max(1) as f64;
            if load < fallback_load {
                fallback_load = load;
                fallback = b;
            }
            if weight + node.weight > self.capacity {
                continue;
            }
            let s = score(self.conn[b], weight, self.capacity, self.alpha, self.gamma);
            match best {
                None => best = Some((b, s, weight)),
                Some((_, bs, bw)) => {
                    if s > bs || (s == bs && weight < bw) {
                        best = Some((b, s, weight));
                    }
                }
            }
        }
        let chosen = best.map(|(b, _, _)| b).unwrap_or(fallback);

        self.assignments[node.node as usize] = chosen as BlockId;
        self.node_weights[node.node as usize] = node.weight;
        self.block_weights[chosen] += node.weight;

        // Reset the connectivity scratchpad for the next node.
        for &b in &self.touched {
            self.conn[b as usize] = 0;
        }
        self.touched.clear();
    }

    /// Removes a node's previous assignment before it is re-scored (used
    /// by restreaming passes). The weight comes from the streamed node, so
    /// unassignment is correct even when the state was seeded from an
    /// existing partition and the node has not been streamed yet.
    pub(crate) fn unassign(&mut self, node: oms_graph::NodeId, weight: NodeWeight) {
        let b = self.assignments[node as usize];
        if b != UNASSIGNED {
            self.block_weights[b as usize] -= weight;
            self.assignments[node as usize] = UNASSIGNED;
        }
    }

    /// Seeds the state from an existing partition (refinement mode). The
    /// per-node weights fill in as the first pass streams them;
    /// [`FlatState::unassign`] takes the weight from the streamed node, so
    /// they are not needed up front.
    pub(crate) fn seed_from(&mut self, assignments: &[BlockId], block_weights: &[NodeWeight]) {
        self.assignments.copy_from_slice(assignments);
        self.block_weights.copy_from_slice(block_weights);
    }

    /// Replaces the assignment array and rebuilds the block weights (the
    /// executor's revert-on-worsen guard).
    pub(crate) fn restore(&mut self, assignments: &[BlockId]) {
        self.assignments.copy_from_slice(assignments);
        self.rebuild_block_weights();
    }

    fn rebuild_block_weights(&mut self) {
        self.block_weights.fill(0);
        for (v, &b) in self.assignments.iter().enumerate() {
            if b != UNASSIGNED {
                self.block_weights[b as usize] += self.node_weights[v];
            }
        }
    }

    pub(crate) fn into_partition(self, k: u32) -> Partition {
        Partition::from_assignments(k, self.assignments, &self.node_weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::InMemoryStream;

    /// Two 5-cliques joined by a single edge: any sensible 2-way streaming
    /// partitioner should separate the cliques.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        edges.push((0, 5));
        CsrGraph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn hashing_assigns_every_node() {
        let g = two_cliques();
        let p = Hashing::new(4, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert_eq!(p.num_nodes(), 10);
        assert_eq!(p.num_blocks(), 4);
        assert!(p.validate(&[1; 10]));
    }

    #[test]
    fn hashing_is_deterministic_per_seed() {
        let g = two_cliques();
        let a = Hashing::new(4, OnePassConfig::default().seed(3))
            .partition_graph(&g)
            .unwrap();
        let b = Hashing::new(4, OnePassConfig::default().seed(3))
            .partition_graph(&g)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fennel_respects_strict_balance_with_zero_epsilon() {
        // ε = 0 forces a perfect 5/5 split on ten unit-weight nodes.
        let g = two_cliques();
        let cfg = OnePassConfig::default().epsilon(0.0);
        let p = Fennel::new(2, cfg).partition_graph(&g).unwrap();
        assert!(p.is_balanced(0.0));
        assert_eq!(p.block_weights(), &[5, 5]);
    }

    #[test]
    fn ldg_separates_cliques() {
        // LDG's multiplicative penalty keeps a node with the block holding
        // more of its neighbors, so the two cliques end up separated and only
        // the single bridge edge is cut.
        let g = two_cliques();
        let cfg = OnePassConfig::default().epsilon(0.0);
        let p = Ldg::new(2, cfg).partition_graph(&g).unwrap();
        assert_eq!(p.edge_cut(&g), 1);
        assert!(p.is_balanced(0.0));
    }

    #[test]
    fn fennel_beats_hashing_on_structured_graph() {
        let g = oms_gen::planted_partition(400, 8, 0.15, 0.005, 5);
        let cfg = OnePassConfig::default();
        let fennel = Fennel::new(8, cfg).partition_graph(&g).unwrap();
        let hashing = Hashing::new(8, cfg).partition_graph(&g).unwrap();
        assert!(
            fennel.edge_cut(&g) < hashing.edge_cut(&g),
            "fennel {} vs hashing {}",
            fennel.edge_cut(&g),
            hashing.edge_cut(&g)
        );
    }

    #[test]
    fn ldg_beats_hashing_on_structured_graph() {
        let g = oms_gen::planted_partition(400, 8, 0.15, 0.005, 6);
        let cfg = OnePassConfig::default();
        let ldg = Ldg::new(8, cfg).partition_graph(&g).unwrap();
        let hashing = Hashing::new(8, cfg).partition_graph(&g).unwrap();
        assert!(ldg.edge_cut(&g) < hashing.edge_cut(&g));
    }

    #[test]
    fn all_baselines_respect_balance_on_random_graph() {
        let g = oms_gen::erdos_renyi_gnm(600, 3000, 9);
        for k in [2u32, 7, 16, 33] {
            let cfg = OnePassConfig::default();
            for p in [
                Fennel::new(k, cfg).partition_graph(&g).unwrap(),
                Ldg::new(k, cfg).partition_graph(&g).unwrap(),
            ] {
                assert!(
                    p.is_balanced(0.03 + 1e-9) || p.max_block_weight() <= (600 / k as u64) + 2,
                    "k={k} imbalance {}",
                    p.imbalance()
                );
                assert_eq!(p.num_nodes(), 600);
            }
        }
    }

    #[test]
    fn zero_blocks_is_rejected() {
        let g = two_cliques();
        assert!(Fennel::new(0, OnePassConfig::default())
            .partition_graph(&g)
            .is_err());
        assert!(Ldg::new(0, OnePassConfig::default())
            .partition_graph(&g)
            .is_err());
        assert!(Hashing::new(0, OnePassConfig::default())
            .partition_graph(&g)
            .is_err());
    }

    #[test]
    fn partitioner_names() {
        let cfg = OnePassConfig::default();
        assert_eq!(Fennel::new(2, cfg).name(), "fennel");
        assert_eq!(Ldg::new(2, cfg).name(), "ldg");
        assert_eq!(Hashing::new(2, cfg).name(), "hashing");
        assert_eq!(Fennel::new(5, cfg).num_blocks(), 5);
    }

    #[test]
    fn works_on_streams_with_isolated_nodes() {
        let g = CsrGraph::empty(20);
        let p = Fennel::new(4, OnePassConfig::default())
            .partition_stream(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(p.num_nodes(), 20);
        assert!(p.is_balanced(0.03));
    }

    #[test]
    fn single_block_puts_everything_together() {
        let g = two_cliques();
        let p = Fennel::new(1, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.used_blocks(), 1);
    }
}
