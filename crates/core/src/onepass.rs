//! Flat one-pass partitioning baselines: Hashing, LDG and Fennel.
//!
//! These are the non-buffered streaming state of the art the paper compares
//! against (§2.2). All three follow the same skeleton — load a node, score
//! all `k` blocks, assign permanently — and differ only in the scoring rule:
//!
//! * **Hashing** assigns `hash(v) mod k`; `O(n)` time, poor quality.
//! * **LDG** maximises `ω(N(v) ∩ Vᵢ)·(1 − c(Vᵢ)/L_max)`; `O(m + nk)` time.
//! * **Fennel** maximises `ω(N(v) ∩ Vᵢ) − α·γ·c(Vᵢ)^{γ−1}`; `O(m + nk)` time.

use crate::config::OnePassConfig;
use crate::executor::{BatchExecutor, NodeSink, PassTrajectory};
use crate::partition::{Partition, UNASSIGNED};
use crate::scorer::{fennel_alpha, hash_node};
use crate::{BlockId, PartitionError, Result};
use oms_graph::{CsrGraph, InMemoryStream, NodeStream, NodeWeight};

/// Common interface of all sequential streaming partitioners, flat or
/// hierarchical.
pub trait StreamingPartitioner {
    /// Partitions the nodes delivered by `stream` in a single pass (or a
    /// fixed number of passes for restreaming algorithms).
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition>;

    /// Like [`StreamingPartitioner::partition_stream`], but additionally
    /// returns the per-pass quality trajectory recorded by the multi-pass
    /// engine. Single-pass algorithms return an empty trajectory by
    /// default; restreaming algorithms override this.
    fn partition_stream_tracked<S: NodeStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Partition, PassTrajectory)> {
        Ok((self.partition_stream(stream)?, PassTrajectory::default()))
    }

    /// Number of blocks this partitioner produces.
    fn num_blocks(&self) -> u32;

    /// Short algorithm name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Convenience wrapper streaming an in-memory graph in natural order.
    fn partition_graph(&self, graph: &CsrGraph) -> Result<Partition> {
        self.partition_stream(&mut InMemoryStream::new(graph))
    }
}

fn check_k(k: u32) -> Result<()> {
    if k == 0 {
        Err(PartitionError::InvalidConfig(
            "the number of blocks k must be positive".into(),
        ))
    } else {
        Ok(())
    }
}

/// The Hashing baseline: `block(v) = hash(v) mod k`.
#[derive(Clone, Copy, Debug)]
pub struct Hashing {
    k: u32,
    config: OnePassConfig,
}

impl Hashing {
    /// Creates a Hashing partitioner for `k` blocks.
    pub fn new(k: u32, config: OnePassConfig) -> Self {
        Hashing { k, config }
    }
}

impl StreamingPartitioner for Hashing {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_k(self.k)?;
        let n = stream.num_nodes();
        let mut sink = HashingSink {
            assignments: vec![UNASSIGNED; n],
            node_weights: vec![0; n],
            k: self.k as u64,
            seed: self.config.seed,
        };
        BatchExecutor::default().run(stream, &mut sink)?;
        Ok(Partition::from_assignments(
            self.k,
            sink.assignments,
            &sink.node_weights,
        ))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "hashing"
    }
}

/// The linear deterministic greedy (LDG) baseline.
#[derive(Clone, Copy, Debug)]
pub struct Ldg {
    k: u32,
    config: OnePassConfig,
}

impl Ldg {
    /// Creates an LDG partitioner for `k` blocks.
    pub fn new(k: u32, config: OnePassConfig) -> Self {
        Ldg { k, config }
    }
}

impl StreamingPartitioner for Ldg {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_k(self.k)?;
        let mut sink = FlatSink::new(FlatState::new(
            self.k,
            stream,
            self.config,
            FlatObjective::Ldg,
        ));
        BatchExecutor::default().run(stream, &mut sink)?;
        Ok(sink.into_partition(self.k))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "ldg"
    }
}

/// The Fennel baseline (Tsourakakis et al.) with
/// `α = √k·m/n^{3/2}`, `γ = 1.5`.
#[derive(Clone, Copy, Debug)]
pub struct Fennel {
    k: u32,
    config: OnePassConfig,
}

impl Fennel {
    /// Creates a Fennel partitioner for `k` blocks.
    pub fn new(k: u32, config: OnePassConfig) -> Self {
        Fennel { k, config }
    }
}

impl StreamingPartitioner for Fennel {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_k(self.k)?;
        let mut sink = FlatSink::new(FlatState::new(
            self.k,
            stream,
            self.config,
            FlatObjective::Fennel,
        ));
        BatchExecutor::default().run(stream, &mut sink)?;
        Ok(sink.into_partition(self.k))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "fennel"
    }
}

/// The scoring rule of a flat one-pass algorithm, as a value.
///
/// The flat algorithms ([`Fennel`], [`Ldg`]) share one state machine and
/// differ only in how a candidate block is scored; this enum names the rule
/// so dynamic maintenance ([`RepairSink`]) can be constructed for whichever
/// flat algorithm a job selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlatObjective {
    /// Fennel's additive objective `conn − α·γ·c(Vᵢ)^{γ−1}`.
    Fennel,
    /// LDG's multiplicative objective `conn · (1 − c(Vᵢ)/L_max)`.
    Ldg,
}

impl FlatObjective {
    /// The objective of the *canonical* algorithm name (aliases must be
    /// resolved first, e.g. through the registry), or `None` when the
    /// algorithm is not a flat one-pass scorer and therefore supports no
    /// incremental repair.
    pub fn for_algorithm(name: &str) -> Option<FlatObjective> {
        match name {
            "fennel" | "refennel" => Some(FlatObjective::Fennel),
            "ldg" | "reldg" => Some(FlatObjective::Ldg),
            _ => None,
        }
    }

    /// Scores one candidate block: `conn` is the connectivity towards the
    /// block, `weight` its current load, `capacity` the balance limit
    /// `L_max` and `alpha`/`gamma` the Fennel parameters.
    pub fn score(
        &self,
        conn: u64,
        weight: NodeWeight,
        capacity: NodeWeight,
        alpha: f64,
        gamma: f64,
    ) -> f64 {
        self.combine(conn as f64, self.base(weight, capacity, alpha, gamma))
    }

    /// The pre-evaluated per-block penalty term of the objective: a pure
    /// function of the block's current load `weight` (and the fixed
    /// parameters), so callers only need to recompute it when that load
    /// changes. Combining it with a connectivity via
    /// [`FlatObjective::combine`] reproduces the direct objective bit for
    /// bit:
    ///
    /// * Fennel: `base = −(α·γ·c(Vᵢ)^{γ−1})`, score `= conn + base`
    ///   (IEEE 754 guarantees `a − b ≡ a + (−b)`);
    /// * LDG: `base = 1 − c(Vᵢ)/L_max`, score `= conn · base`
    ///   (the same operations in the same order as the direct form).
    ///
    /// This is the single definition of both objectives; the sequential
    /// `score_base` arena and the parallel kernels' per-thread caches both
    /// evaluate it.
    #[inline]
    pub fn base(&self, weight: NodeWeight, capacity: NodeWeight, alpha: f64, gamma: f64) -> f64 {
        match self {
            FlatObjective::Fennel => -(alpha * gamma * (weight as f64).powf(gamma - 1.0)),
            FlatObjective::Ldg => 1.0 - weight as f64 / capacity.max(1) as f64,
        }
    }

    /// Combines a connectivity with a penalty base pre-evaluated by
    /// [`FlatObjective::base`].
    #[inline]
    pub fn combine(&self, conn: f64, base: f64) -> f64 {
        match self {
            FlatObjective::Fennel => conn + base,
            FlatObjective::Ldg => conn * base,
        }
    }
}

/// The Hashing algorithm as a [`NodeSink`]: stateless per node, no scoring.
pub(crate) struct HashingSink {
    pub(crate) assignments: Vec<BlockId>,
    pub(crate) node_weights: Vec<NodeWeight>,
    pub(crate) k: u64,
    pub(crate) seed: u64,
}

impl NodeSink for HashingSink {
    fn process(&mut self, node: oms_graph::StreamedNode<'_>) {
        self.assignments[node.node as usize] =
            (hash_node(node.node, self.seed) % self.k) as BlockId;
        self.node_weights[node.node as usize] = node.weight;
    }

    fn assignments(&self) -> Option<&[BlockId]> {
        Some(&self.assignments)
    }

    fn num_blocks(&self) -> u32 {
        self.k as u32
    }

    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        self.assignments.copy_from_slice(assignments);
        true
    }
}

/// A flat one-pass algorithm as a [`NodeSink`]: [`FlatState`] plus its
/// scoring objective. From the second pass on (restreaming), each node is
/// unassigned before being re-scored; a *seeded* sink (refinement of an
/// existing partition) restreams from the very first pass.
pub(crate) struct FlatSink {
    state: FlatState,
    restreaming: bool,
    seeded: bool,
}

impl FlatSink {
    pub(crate) fn new(state: FlatState) -> Self {
        FlatSink {
            state,
            restreaming: false,
            seeded: false,
        }
    }

    /// A sink whose state was seeded from an existing partition: every pass
    /// (including the first) unassigns each node before re-scoring it.
    pub(crate) fn seeded(state: FlatState) -> Self {
        FlatSink {
            state,
            restreaming: true,
            seeded: true,
        }
    }

    pub(crate) fn into_partition(self, k: u32) -> Partition {
        self.state.into_partition(k)
    }
}

impl NodeSink for FlatSink {
    fn begin_pass(&mut self, pass: usize) {
        self.restreaming = self.seeded || pass > 0;
    }

    fn process(&mut self, node: oms_graph::StreamedNode<'_>) {
        if self.restreaming {
            self.state.unassign(node.node, node.weight);
        }
        self.state.assign(node);
    }

    fn end_pass(&mut self, _pass: usize) {
        self.state.flush_hot_counters();
    }

    fn assignments(&self) -> Option<&[BlockId]> {
        Some(&self.state.assignments)
    }

    fn num_blocks(&self) -> u32 {
        self.state.block_weights.len() as u32
    }

    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        self.state.restore(assignments);
        true
    }
}

/// Shared mutable state of the flat `O(m + nk)` partitioners.
///
/// The per-block penalty term of both objectives depends only on the block's
/// current load (and the fixed parameters `α`, `γ`, `L_max`), and a node
/// assignment changes the load of exactly one block — so the penalty is kept
/// pre-evaluated in the dense `score_base` arena and refreshed incrementally.
/// This turns Fennel's inner loop from `k` `powf` calls per node into one
/// `powf` per assignment plus `k` adds, without changing a single bit of the
/// scores:
///
/// * Fennel: `base[b] = −(α·γ·c(Vᵢ)^{γ−1})`, score `= conn + base[b]`
///   (IEEE 754 guarantees `a − b ≡ a + (−b)`).
/// * LDG: `base[b] = 1 − c(Vᵢ)/L_max`, score `= conn · base[b]`
///   (the same operations in the same order as the direct form).
pub(crate) struct FlatState {
    pub(crate) assignments: Vec<BlockId>,
    pub(crate) node_weights: Vec<NodeWeight>,
    pub(crate) block_weights: Vec<NodeWeight>,
    objective: FlatObjective,
    /// Pre-evaluated per-block penalty; `score_base[b]` is a pure function
    /// of `block_weights[b]`, refreshed whenever that load changes.
    score_base: Vec<f64>,
    conn: Vec<u64>,
    touched: Vec<BlockId>,
    capacity: NodeWeight,
    alpha: f64,
    gamma: f64,
    /// Hot-path tallies: nodes scored and degree ≤ 2 fast-path hits. Plain
    /// fields (one register add each on the scoring path) drained into the
    /// `oms-obs` counter registry at pass boundaries, so per-node work
    /// never touches the observer slot.
    scored: u64,
    fast_path: u64,
}

impl FlatState {
    pub(crate) fn new<S: NodeStream>(
        k: u32,
        stream: &S,
        config: OnePassConfig,
        objective: FlatObjective,
    ) -> Self {
        Self::with_counts(
            k,
            stream.num_nodes(),
            stream.num_edges(),
            stream.total_node_weight(),
            config,
            objective,
        )
    }

    /// [`FlatState::new`] from explicit counts instead of a stream (used by
    /// the dynamic layer, whose counts change as deltas arrive).
    pub(crate) fn with_counts(
        k: u32,
        n: usize,
        m: usize,
        total_weight: NodeWeight,
        config: OnePassConfig,
        objective: FlatObjective,
    ) -> Self {
        let mut state = FlatState {
            assignments: vec![UNASSIGNED; n],
            node_weights: vec![0; n],
            block_weights: vec![0; k as usize],
            objective,
            score_base: vec![0.0; k as usize],
            conn: vec![0; k as usize],
            touched: Vec::new(),
            capacity: Partition::capacity(total_weight, k, config.epsilon),
            alpha: fennel_alpha(k, m, n),
            gamma: config.gamma,
            scored: 0,
            fast_path: 0,
        };
        state.refresh_all_bases();
        state
    }

    pub(crate) fn objective(&self) -> FlatObjective {
        self.objective
    }

    /// Re-evaluates the penalty of one block from its current load.
    #[inline]
    fn refresh_base(&mut self, b: usize) {
        let w = self.block_weights[b];
        self.score_base[b] = self
            .objective
            .base(w, self.capacity, self.alpha, self.gamma);
    }

    /// Re-evaluates every block's penalty (bulk load changes and parameter
    /// retuning).
    fn refresh_all_bases(&mut self) {
        for b in 0..self.block_weights.len() {
            self.refresh_base(b);
        }
    }

    /// Scores all blocks for `node` under the state's objective and assigns
    /// it to the best feasible one (least loaded block if every block is
    /// full). Ties break towards the lighter block, then the lower index —
    /// identical to evaluating the objective directly for every block.
    pub(crate) fn assign(&mut self, node: oms_graph::StreamedNode<'_>) {
        self.scored += 1;
        // Degree-bucketed fast path: with at most two assigned neighbors the
        // connectivity fits in registers, skipping the dense gather arena and
        // its dirty-list reset entirely.
        if node.neighbors.len() <= 2 {
            self.fast_path += 1;
            let mut b0 = UNASSIGNED;
            let mut w0 = 0u64;
            let mut b1 = UNASSIGNED;
            let mut w1 = 0u64;
            for (u, w) in node.neighbors_weighted() {
                let b = self.assignments[u as usize];
                if b == UNASSIGNED {
                    continue;
                }
                if b == b0 {
                    w0 += w;
                } else if b0 == UNASSIGNED {
                    b0 = b;
                    w0 = w;
                } else {
                    b1 = b;
                    w1 = w;
                }
            }
            // `b` never equals UNASSIGNED inside the scan, so empty slots
            // contribute zero connectivity.
            let chosen = self.select_block(node.weight, |b| {
                (b as BlockId == b0) as u64 * w0 + (b as BlockId == b1) as u64 * w1
            });
            self.commit(node, chosen);
            return;
        }

        // General path: gather connectivity towards already-assigned
        // neighbors into the dense arena, tracking touched blocks so the
        // reset is O(distinct blocks), not O(k).
        for (u, w) in node.neighbors_weighted() {
            let b = self.assignments[u as usize];
            if b != UNASSIGNED {
                if self.conn[b as usize] == 0 {
                    self.touched.push(b);
                }
                self.conn[b as usize] += w;
            }
        }

        let chosen = self.select_block(node.weight, |b| self.conn[b]);
        self.commit(node, chosen);

        // Reset the connectivity scratchpad for the next node.
        for &b in &self.touched {
            self.conn[b as usize] = 0;
        }
        self.touched.clear();
    }

    /// The max-score feasible block (ties: lighter, then lower index), or
    /// the least relatively loaded block when no block can take the node.
    /// The select loop is branch-free in its hot comparisons: the score is
    /// computed for infeasible blocks too (the value is never used) and the
    /// running best is updated with conditional moves.
    #[inline(always)]
    fn select_block<C: Fn(usize) -> u64>(&self, node_weight: NodeWeight, conn_of: C) -> usize {
        let k = self.block_weights.len();
        let objective = self.objective;
        let mut has_best = false;
        let mut best_b = 0usize;
        let mut best_s = 0.0f64;
        let mut best_w: NodeWeight = 0;
        for b in 0..k {
            let weight = self.block_weights[b];
            let conn = conn_of(b) as f64;
            let s = objective.combine(conn, self.score_base[b]);
            let feasible = weight + node_weight <= self.capacity;
            let better = feasible && (!has_best || s > best_s || (s == best_s && weight < best_w));
            best_b = if better { b } else { best_b };
            best_s = if better { s } else { best_s };
            best_w = if better { weight } else { best_w };
            has_best |= better;
        }
        if has_best {
            best_b
        } else {
            self.least_loaded_block()
        }
    }

    /// The fallback target when every block is over capacity: the block with
    /// the smallest relative load, compared in `f64` exactly like the
    /// original inline scan (a `u64` weight compare could order differently
    /// for loads that round to the same double).
    fn least_loaded_block(&self) -> usize {
        let cap = self.capacity.max(1) as f64;
        let mut fallback = 0usize;
        let mut fallback_load = f64::INFINITY;
        for (b, &weight) in self.block_weights.iter().enumerate() {
            let load = weight as f64 / cap;
            if load < fallback_load {
                fallback_load = load;
                fallback = b;
            }
        }
        fallback
    }

    /// Records the assignment and refreshes the chosen block's penalty.
    #[inline]
    fn commit(&mut self, node: oms_graph::StreamedNode<'_>, chosen: usize) {
        self.assignments[node.node as usize] = chosen as BlockId;
        self.node_weights[node.node as usize] = node.weight;
        self.block_weights[chosen] += node.weight;
        self.refresh_base(chosen);
    }

    /// Removes a node's previous assignment before it is re-scored (used
    /// by restreaming passes). The weight comes from the streamed node, so
    /// unassignment is correct even when the state was seeded from an
    /// existing partition and the node has not been streamed yet.
    pub(crate) fn unassign(&mut self, node: oms_graph::NodeId, weight: NodeWeight) {
        let b = self.assignments[node as usize];
        if b != UNASSIGNED {
            self.block_weights[b as usize] -= weight;
            self.assignments[node as usize] = UNASSIGNED;
            self.refresh_base(b as usize);
        }
    }

    /// Overwrites one block's load with an authoritative value (the sharded
    /// engine's load-vector gossip) and refreshes its penalty.
    pub(crate) fn set_block_weight(&mut self, b: usize, w: NodeWeight) {
        self.block_weights[b] = w;
        self.refresh_base(b);
    }

    /// Seeds the state from an existing partition (refinement mode). The
    /// per-node weights fill in as the first pass streams them;
    /// [`FlatState::unassign`] takes the weight from the streamed node, so
    /// they are not needed up front.
    pub(crate) fn seed_from(&mut self, assignments: &[BlockId], block_weights: &[NodeWeight]) {
        self.assignments.copy_from_slice(assignments);
        self.block_weights.copy_from_slice(block_weights);
        self.refresh_all_bases();
    }

    /// Replaces the assignment array and rebuilds the block weights (the
    /// executor's revert-on-worsen guard).
    pub(crate) fn restore(&mut self, assignments: &[BlockId]) {
        self.assignments.copy_from_slice(assignments);
        self.rebuild_block_weights();
    }

    fn rebuild_block_weights(&mut self) {
        self.block_weights.fill(0);
        for (v, &b) in self.assignments.iter().enumerate() {
            if b != UNASSIGNED {
                self.block_weights[b as usize] += self.node_weights[v];
            }
        }
        self.refresh_all_bases();
    }

    pub(crate) fn into_partition(self, k: u32) -> Partition {
        Partition::from_assignments(k, self.assignments, &self.node_weights)
    }

    /// Drains the hot-path tallies (nodes scored, fast-path hits) for a
    /// flush into the observer's counter registry.
    pub(crate) fn take_hot_counters(&mut self) -> (u64, u64) {
        let out = (self.scored, self.fast_path);
        self.scored = 0;
        self.fast_path = 0;
        out
    }

    /// Drains the hot-path tallies into the installed observer's counters
    /// (a no-op that still zeroes the tallies when none is installed).
    pub(crate) fn flush_hot_counters(&mut self) {
        let (scored, fast_path) = self.take_hot_counters();
        oms_obs::counter_add(oms_obs::CounterId::NodesScored, scored);
        oms_obs::counter_add(oms_obs::CounterId::DegLe2FastPath, fast_path);
    }

    /// Extends the id space to `n` nodes; new slots start unassigned with
    /// weight 0. Never shrinks.
    pub(crate) fn grow(&mut self, n: usize) {
        if n > self.assignments.len() {
            self.assignments.resize(n, UNASSIGNED);
            self.node_weights.resize(n, 0);
        }
    }
}

/// The repair-capable face of a flat one-pass algorithm, for dynamic-graph
/// maintenance: the same `O(k)` scoring state the streaming pass uses
/// ([`Fennel`] / [`Ldg`]), exposed so single nodes can be re-scored in place
/// under the balance constraint `L_max` as the graph changes.
///
/// Differences from the one-shot sinks:
///
/// * [`RepairSink::rescore`] unassigns and re-scores *one* node against the
///   current assignment — the ReFennel step, applied locally.
/// * [`RepairSink::retune`] re-derives `L_max` and Fennel's `α` when node or
///   edge counts change (deltas shift both).
/// * The [`NodeSink`] impl restreams on *every* pass (seeded semantics), so
///   the multi-pass engine can run a full restream fallback over the live
///   graph, guarded against worsening the maintained assignment.
pub struct RepairSink {
    state: FlatState,
    config: OnePassConfig,
}

impl RepairSink {
    /// A repair sink for `k` blocks over an id space of `n` nodes with `m`
    /// edges and total node weight `total_weight`. All nodes start
    /// unassigned; use [`RepairSink::seed`] to adopt an existing partition.
    pub fn new(
        k: u32,
        n: usize,
        m: usize,
        total_weight: NodeWeight,
        config: OnePassConfig,
        objective: FlatObjective,
    ) -> Result<Self> {
        check_k(k)?;
        Ok(RepairSink {
            state: FlatState::with_counts(k, n, m, total_weight, config, objective),
            config,
        })
    }

    /// The scoring rule in use.
    pub fn objective(&self) -> FlatObjective {
        self.state.objective()
    }

    /// Adopts an existing partition: per-block loads are rebuilt from the
    /// assignments and `node_weights` (one entry per id-space slot; deleted
    /// or unassigned nodes must carry [`UNASSIGNED`]).
    pub fn seed(&mut self, assignments: &[BlockId], node_weights: &[NodeWeight]) {
        self.state.assignments.copy_from_slice(assignments);
        self.state.node_weights.copy_from_slice(node_weights);
        self.state.rebuild_block_weights();
    }

    /// Extends the id space to `n` nodes (new slots unassigned). Never
    /// shrinks: deleted ids stay allocated but unassigned.
    pub fn grow(&mut self, n: usize) {
        self.state.grow(n);
    }

    /// Re-derives the balance limit `L_max` and Fennel's `α` from the
    /// current graph counts. Call after deltas changed `n`, `m` or the
    /// total node weight.
    pub fn retune(&mut self, n: usize, m: usize, total_weight: NodeWeight) {
        let k = self.state.block_weights.len() as u32;
        self.state.capacity = Partition::capacity(total_weight, k, self.config.epsilon);
        self.state.alpha = fennel_alpha(k, m, n);
        // Both parameters feed the pre-evaluated penalties.
        self.state.refresh_all_bases();
    }

    /// Unassigns `node` (if assigned) and re-scores it against the current
    /// assignment, exactly like one restreaming step. Returns the block the
    /// node ends up in.
    pub fn rescore(&mut self, node: oms_graph::StreamedNode<'_>) -> BlockId {
        self.state.unassign(node.node, node.weight);
        self.state.assign(node);
        self.state.assignments[node.node as usize]
    }

    /// Records a node that joined the graph with `weight` but has not been
    /// scored yet (its slot must exist, see [`RepairSink::grow`]).
    pub fn admit(&mut self, node: oms_graph::NodeId, weight: NodeWeight) {
        self.state.node_weights[node as usize] = weight;
    }

    /// Removes `node` from its block (node deletion); its slot stays
    /// allocated but unassigned.
    pub fn forget(&mut self, node: oms_graph::NodeId, weight: NodeWeight) {
        self.state.unassign(node, weight);
        self.state.node_weights[node as usize] = 0;
    }

    /// The current assignment, one entry per id-space slot ([`UNASSIGNED`]
    /// for deleted or not-yet-scored nodes).
    pub fn assignments(&self) -> &[BlockId] {
        &self.state.assignments
    }

    /// The block of one node.
    pub fn assignment(&self, node: oms_graph::NodeId) -> BlockId {
        self.state.assignments[node as usize]
    }

    /// Current per-block loads.
    pub fn block_weights(&self) -> &[NodeWeight] {
        &self.state.block_weights
    }

    /// The balance limit `L_max` currently enforced.
    pub fn capacity(&self) -> NodeWeight {
        self.state.capacity
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u32 {
        self.state.block_weights.len() as u32
    }

    /// Drains the hot-path scoring tallies into the installed observer's
    /// counters. The dynamic layer calls this at batch boundaries, so
    /// per-delta repair steps pay only register adds.
    pub fn flush_hot_counters(&mut self) {
        self.state.flush_hot_counters();
    }
}

impl NodeSink for RepairSink {
    fn process(&mut self, node: oms_graph::StreamedNode<'_>) {
        self.rescore(node);
    }

    fn end_pass(&mut self, _pass: usize) {
        self.state.flush_hot_counters();
    }

    fn assignments(&self) -> Option<&[BlockId]> {
        Some(&self.state.assignments)
    }

    fn num_blocks(&self) -> u32 {
        RepairSink::num_blocks(self)
    }

    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        self.state.restore(assignments);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::InMemoryStream;

    /// Two 5-cliques joined by a single edge: any sensible 2-way streaming
    /// partitioner should separate the cliques.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        edges.push((0, 5));
        CsrGraph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn hashing_assigns_every_node() {
        let g = two_cliques();
        let p = Hashing::new(4, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert_eq!(p.num_nodes(), 10);
        assert_eq!(p.num_blocks(), 4);
        assert!(p.validate(&[1; 10]));
    }

    #[test]
    fn hashing_is_deterministic_per_seed() {
        let g = two_cliques();
        let a = Hashing::new(4, OnePassConfig::default().seed(3))
            .partition_graph(&g)
            .unwrap();
        let b = Hashing::new(4, OnePassConfig::default().seed(3))
            .partition_graph(&g)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fennel_respects_strict_balance_with_zero_epsilon() {
        // ε = 0 forces a perfect 5/5 split on ten unit-weight nodes.
        let g = two_cliques();
        let cfg = OnePassConfig::default().epsilon(0.0);
        let p = Fennel::new(2, cfg).partition_graph(&g).unwrap();
        assert!(p.is_balanced(0.0));
        assert_eq!(p.block_weights(), &[5, 5]);
    }

    #[test]
    fn ldg_separates_cliques() {
        // LDG's multiplicative penalty keeps a node with the block holding
        // more of its neighbors, so the two cliques end up separated and only
        // the single bridge edge is cut.
        let g = two_cliques();
        let cfg = OnePassConfig::default().epsilon(0.0);
        let p = Ldg::new(2, cfg).partition_graph(&g).unwrap();
        assert_eq!(p.edge_cut(&g), 1);
        assert!(p.is_balanced(0.0));
    }

    #[test]
    fn fennel_beats_hashing_on_structured_graph() {
        let g = oms_gen::planted_partition(400, 8, 0.15, 0.005, 5);
        let cfg = OnePassConfig::default();
        let fennel = Fennel::new(8, cfg).partition_graph(&g).unwrap();
        let hashing = Hashing::new(8, cfg).partition_graph(&g).unwrap();
        assert!(
            fennel.edge_cut(&g) < hashing.edge_cut(&g),
            "fennel {} vs hashing {}",
            fennel.edge_cut(&g),
            hashing.edge_cut(&g)
        );
    }

    #[test]
    fn ldg_beats_hashing_on_structured_graph() {
        let g = oms_gen::planted_partition(400, 8, 0.15, 0.005, 6);
        let cfg = OnePassConfig::default();
        let ldg = Ldg::new(8, cfg).partition_graph(&g).unwrap();
        let hashing = Hashing::new(8, cfg).partition_graph(&g).unwrap();
        assert!(ldg.edge_cut(&g) < hashing.edge_cut(&g));
    }

    #[test]
    fn all_baselines_respect_balance_on_random_graph() {
        let g = oms_gen::erdos_renyi_gnm(600, 3000, 9);
        for k in [2u32, 7, 16, 33] {
            let cfg = OnePassConfig::default();
            for p in [
                Fennel::new(k, cfg).partition_graph(&g).unwrap(),
                Ldg::new(k, cfg).partition_graph(&g).unwrap(),
            ] {
                assert!(
                    p.is_balanced(0.03 + 1e-9) || p.max_block_weight() <= (600 / k as u64) + 2,
                    "k={k} imbalance {}",
                    p.imbalance()
                );
                assert_eq!(p.num_nodes(), 600);
            }
        }
    }

    #[test]
    fn zero_blocks_is_rejected() {
        let g = two_cliques();
        assert!(Fennel::new(0, OnePassConfig::default())
            .partition_graph(&g)
            .is_err());
        assert!(Ldg::new(0, OnePassConfig::default())
            .partition_graph(&g)
            .is_err());
        assert!(Hashing::new(0, OnePassConfig::default())
            .partition_graph(&g)
            .is_err());
    }

    #[test]
    fn partitioner_names() {
        let cfg = OnePassConfig::default();
        assert_eq!(Fennel::new(2, cfg).name(), "fennel");
        assert_eq!(Ldg::new(2, cfg).name(), "ldg");
        assert_eq!(Hashing::new(2, cfg).name(), "hashing");
        assert_eq!(Fennel::new(5, cfg).num_blocks(), 5);
    }

    #[test]
    fn works_on_streams_with_isolated_nodes() {
        let g = CsrGraph::empty(20);
        let p = Fennel::new(4, OnePassConfig::default())
            .partition_stream(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(p.num_nodes(), 20);
        assert!(p.is_balanced(0.03));
    }

    #[test]
    fn single_block_puts_everything_together() {
        let g = two_cliques();
        let p = Fennel::new(1, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.used_blocks(), 1);
    }
}
