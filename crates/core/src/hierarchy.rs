//! Hierarchy and distance specifications.
//!
//! A homogeneous communication topology is described by two strings
//! (§2.1 of the paper):
//!
//! * `S = a1:a2:…:aℓ` — each processor has `a1` cores, each node `a2`
//!   processors, each rack `a3` nodes, … The total number of PEs is
//!   `k = Π aᵢ`.
//! * `D = d1:d2:…:dℓ` — two cores in the same processor communicate at cost
//!   `d1`, in the same node but different processors at `d2`, and so on.
//!
//! The paper's default configuration is `S = 4:16:r`, `D = 1:10:100`.

use crate::{BlockId, PartitionError, Result};

/// A homogeneous hierarchy `S = a1:a2:…:aℓ`.
///
/// `a1` is the *lowest* (cheapest) level. All factors must be ≥ 2, matching
/// the paper's assumption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchySpec {
    factors: Vec<u32>,
}

impl HierarchySpec {
    /// Creates a hierarchy from its factors, `a1` first.
    pub fn new(factors: Vec<u32>) -> Result<Self> {
        if factors.is_empty() {
            return Err(PartitionError::InvalidSpec(
                "hierarchy needs at least one level".into(),
            ));
        }
        if factors.iter().any(|&a| a < 2) {
            return Err(PartitionError::InvalidSpec(
                "every hierarchy factor must be at least 2".into(),
            ));
        }
        let k: u64 = factors.iter().map(|&a| a as u64).product();
        if k > u32::MAX as u64 {
            return Err(PartitionError::InvalidSpec(format!(
                "hierarchy produces k = {k} blocks, which exceeds the supported maximum"
            )));
        }
        Ok(HierarchySpec { factors })
    }

    /// Parses a colon-separated string such as `"4:16:8"`.
    pub fn parse(s: &str) -> Result<Self> {
        let factors: std::result::Result<Vec<u32>, _> = s
            .split(':')
            .map(|part| part.trim().parse::<u32>())
            .collect();
        match factors {
            Ok(f) => HierarchySpec::new(f),
            Err(_) => Err(PartitionError::InvalidSpec(format!(
                "cannot parse hierarchy string '{s}'"
            ))),
        }
    }

    /// The factors `a1, …, aℓ` (lowest level first).
    pub fn factors(&self) -> &[u32] {
        &self.factors
    }

    /// Number of hierarchy levels `ℓ`.
    pub fn num_levels(&self) -> usize {
        self.factors.len()
    }

    /// Total number of PEs / leaf blocks `k = Π aᵢ`.
    pub fn total_blocks(&self) -> u32 {
        self.factors.iter().product()
    }

    /// Number of level-`i` groups a single PE is contained in, i.e. the
    /// number of PEs sharing a level-`i` group: `Π_{r≤i} a_r`.
    /// `i` is 1-based, matching the paper's notation.
    pub fn pes_per_group(&self, level: usize) -> u32 {
        assert!(level >= 1 && level <= self.num_levels());
        self.factors[..level].iter().product()
    }

    /// Decomposes a PE id into its per-level coordinates
    /// `(x1, …, xℓ)` with `id = x1 + a1·(x2 + a2·(x3 + …))`.
    pub fn coordinates(&self, pe: BlockId) -> Vec<u32> {
        let mut rest = pe;
        self.factors
            .iter()
            .map(|&a| {
                let coord = rest % a;
                rest /= a;
                coord
            })
            .collect()
    }

    /// The lowest hierarchy level shared by two PEs: `0` if they are the same
    /// PE, `1` if they share a processor, …, `ℓ` if they only share the
    /// topmost level.
    ///
    /// The communication cost between the PEs is `d_level` (and `0` for the
    /// same PE).
    pub fn shared_level(&self, a: BlockId, b: BlockId) -> usize {
        if a == b {
            return 0;
        }
        let mut ra = a;
        let mut rb = b;
        for (i, &f) in self.factors.iter().enumerate() {
            ra /= f;
            rb /= f;
            if ra == rb {
                return i + 1;
            }
        }
        self.num_levels()
    }

    /// Human-readable `a1:a2:…:aℓ` form.
    pub fn to_string_spec(&self) -> String {
        self.factors
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(":")
    }
}

/// Distances `D = d1:d2:…:dℓ` between PEs per shared hierarchy level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceSpec {
    distances: Vec<u64>,
}

impl DistanceSpec {
    /// Creates a distance specification, `d1` first.
    pub fn new(distances: Vec<u64>) -> Result<Self> {
        if distances.is_empty() {
            return Err(PartitionError::InvalidSpec(
                "distance specification needs at least one level".into(),
            ));
        }
        Ok(DistanceSpec { distances })
    }

    /// Parses a colon-separated string such as `"1:10:100"`.
    pub fn parse(s: &str) -> Result<Self> {
        let distances: std::result::Result<Vec<u64>, _> = s
            .split(':')
            .map(|part| part.trim().parse::<u64>())
            .collect();
        match distances {
            Ok(d) => DistanceSpec::new(d),
            Err(_) => Err(PartitionError::InvalidSpec(format!(
                "cannot parse distance string '{s}'"
            ))),
        }
    }

    /// The paper's default `D = 1:10:100` for three-level hierarchies.
    pub fn paper_default() -> Self {
        DistanceSpec {
            distances: vec![1, 10, 100],
        }
    }

    /// Distance values `d1, …, dℓ`.
    pub fn distances(&self) -> &[u64] {
        &self.distances
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.distances.len()
    }

    /// Distance between two PEs given the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy has more levels than this distance spec.
    pub fn distance(&self, hierarchy: &HierarchySpec, a: BlockId, b: BlockId) -> u64 {
        assert!(
            hierarchy.num_levels() <= self.num_levels(),
            "distance spec has fewer levels than the hierarchy"
        );
        let level = hierarchy.shared_level(a, b);
        if level == 0 {
            0
        } else {
            self.distances[level - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_hierarchy() {
        let h = HierarchySpec::parse("4:16:8").unwrap();
        assert_eq!(h.factors(), &[4, 16, 8]);
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.total_blocks(), 512);
        assert_eq!(h.to_string_spec(), "4:16:8");
    }

    #[test]
    fn invalid_hierarchies_are_rejected() {
        assert!(HierarchySpec::parse("").is_err());
        assert!(HierarchySpec::parse("4:x").is_err());
        assert!(HierarchySpec::parse("4:1:8").is_err());
        assert!(HierarchySpec::new(vec![]).is_err());
    }

    #[test]
    fn coordinates_roundtrip() {
        let h = HierarchySpec::parse("4:16:8").unwrap();
        for pe in [0u32, 1, 5, 63, 64, 200, 511] {
            let c = h.coordinates(pe);
            assert_eq!(c.len(), 3);
            let rebuilt = c[0] + 4 * (c[1] + 16 * c[2]);
            assert_eq!(rebuilt, pe);
        }
    }

    #[test]
    fn shared_level_matches_topology_semantics() {
        // S = 2:2 → 4 PEs. PEs {0,1} share a processor, {2,3} share one too;
        // all four share the node.
        let h = HierarchySpec::parse("2:2").unwrap();
        assert_eq!(h.shared_level(0, 0), 0);
        assert_eq!(h.shared_level(0, 1), 1);
        assert_eq!(h.shared_level(2, 3), 1);
        assert_eq!(h.shared_level(0, 2), 2);
        assert_eq!(h.shared_level(1, 3), 2);
    }

    #[test]
    fn pes_per_group_products() {
        let h = HierarchySpec::parse("4:16:8").unwrap();
        assert_eq!(h.pes_per_group(1), 4);
        assert_eq!(h.pes_per_group(2), 64);
        assert_eq!(h.pes_per_group(3), 512);
    }

    #[test]
    fn distance_lookup_uses_shared_level() {
        let h = HierarchySpec::parse("4:16:2").unwrap();
        let d = DistanceSpec::paper_default();
        assert_eq!(d.distance(&h, 7, 7), 0);
        assert_eq!(d.distance(&h, 0, 1), 1); // same processor
        assert_eq!(d.distance(&h, 0, 4), 10); // same node, different processor
        assert_eq!(d.distance(&h, 0, 64), 100); // different node
    }

    #[test]
    fn parse_distance_spec() {
        let d = DistanceSpec::parse("1:10:100").unwrap();
        assert_eq!(d.distances(), &[1, 10, 100]);
        assert!(DistanceSpec::parse("1:oops").is_err());
        assert!(DistanceSpec::parse("").is_err());
    }

    #[test]
    #[should_panic]
    fn distance_with_too_few_levels_panics() {
        let h = HierarchySpec::parse("2:2:2:2").unwrap();
        let d = DistanceSpec::paper_default();
        d.distance(&h, 0, 15);
    }

    #[test]
    fn huge_hierarchy_is_rejected() {
        assert!(HierarchySpec::new(vec![65536, 65536, 4]).is_err());
    }
}
