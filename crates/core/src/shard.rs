//! Sharded streaming partitioning: an S-way bulk-synchronous drive loop
//! with deterministic, seeded message exchange.
//!
//! The paper's streaming partitioner is inherently sequential — every node
//! scores against the load vector left behind by *all* previous nodes. A
//! sharded deployment (the ROADMAP's "serve millions of users" target)
//! cannot afford that total order: the stream is split across `S` shard
//! workers, each owning
//!
//! * a contiguous **block range** `[s·k/S, (s+1)·k/S)` for which its load
//!   values are authoritative, and
//! * a contiguous **slice of each round** of the node stream.
//!
//! Rounds are bulk-synchronous: `S · round_nodes` nodes are buffered, each
//! worker greedily assigns its slice against its own full replica of the
//! scoring state (`FlatState`), and then the workers reconcile through two
//! phases of explicit messages:
//!
//! 1. **Deltas** — every worker sends each block owner the net load change
//!    its round inflicted on that owner's blocks, and broadcasts its
//!    assignments (node, weight, block) to every other worker so all
//!    replicas agree on who lives where.
//! 2. **Gossip** — every owner broadcasts the authoritative load sub-vector
//!    of its block range, which overwrites the corresponding entries of
//!    every other replica.
//!
//! After phase 2 all `S` replicas are identical, so the next round starts
//! from a consistent global view no matter which worker a node lands on.
//! Message *content* is commutative within a phase (disjoint per-node
//! assignments, additive load deltas, disjoint gossip ranges), so the final
//! state does not depend on delivery order — but the delivery order itself
//! is still fixed by a seeded shuffle and folded into a running log hash, so
//! two runs with the same seed produce bit-identical message logs. That is
//! the property CI gates on: on the 1-CPU box determinism is the point, not
//! wall-clock.
//!
//! With `S = 1` there are no messages and every "round" degenerates to an
//! in-order replay of the buffered slice against the single replica — the
//! sequence of `FlatState` transitions is exactly the classic engine's,
//! so the result is byte-identical to [`Fennel`](crate::Fennel) /
//! [`Ldg`](crate::Ldg) (and their restreaming variants) by construction.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Mutex;

use oms_graph::{EdgeWeight, NodeId, NodeStream, NodeWeight, StreamedNode};
use oms_obs::{CounterId, Event, HistId};
use rayon::prelude::*;

use crate::config::OnePassConfig;
use crate::executor::{BatchExecutor, NodeSink, PassTrajectory};
use crate::onepass::{FlatObjective, FlatState};
use crate::partition::{BlockId, Partition, UNASSIGNED};
use crate::{PartitionError, Result};

/// Upper bound on the number of stream nodes each shard processes per
/// round.
///
/// Smaller rounds exchange messages more often (fresher load views, more
/// traffic); larger rounds amortize the barrier but let replicas drift
/// further within a round. The effective round size is additionally capped
/// by the balance-driven `auto_round_nodes` bound.
pub const DEFAULT_ROUND_NODES: usize = 256;

/// Balance-driven round-size cap.
///
/// Within a round every worker assigns against the round-start load view,
/// so in the worst case the whole round's weight (`S · round_nodes` nodes)
/// lands on a single block before anyone notices — the block can overshoot
/// the capacity it appeared to have by the round's total weight. Capping
/// the round at `n / (4·k·S)` nodes per shard bounds that overshoot by a
/// quarter of the average block load, which keeps S>1 runs inside the
/// golden quality bounds; the floor of 4 keeps rounds (and the message
/// amortization) from degenerating on tiny inputs.
fn auto_round_nodes(n: usize, k: u32, shards: usize) -> usize {
    (n / (4 * (k as usize).max(1) * shards.max(1))).max(4)
}

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64) and seeded shuffle
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, high-quality, dependency-free. Seeds the per-round
/// delivery shuffle.
struct SplitMix64(u64);

impl SplitMix64 {
    /// One RNG stream per (seed, pass, round, phase) so no two shuffles
    /// share state.
    fn for_phase(seed: u64, pass: u64, round: u64, phase: u64) -> Self {
        let mut mix = SplitMix64(
            seed ^ pass.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03)
                ^ phase.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7),
        );
        // One warm-up step decorrelates nearby (pass, round) seeds.
        mix.next_u64();
        mix
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (modulo bias is irrelevant here — the
    /// shuffle only needs reproducibility, not statistical perfection).
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Seeded Fisher–Yates: the reproducible delivery order of one phase.
fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.below(i + 1));
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// One inter-shard message. All reconciliation between rounds travels as
/// these — shard workers never read each other's state directly.
enum Message {
    /// Phase 1, worker → block owner: net load change this worker's round
    /// inflicted on one of the owner's blocks.
    LoadDelta {
        /// The block whose load changed.
        block: BlockId,
        /// Signed net weight change (moves out are negative).
        delta: i64,
    },
    /// Phase 1, worker → every other worker: one assignment made this
    /// round. Carrying the weight keeps every replica's `node_weights`
    /// complete, so the executor's revert guard can rebuild any replica.
    Assign {
        /// The assigned node.
        node: NodeId,
        /// Its node weight.
        weight: NodeWeight,
        /// The block it now lives in.
        block: BlockId,
    },
    /// Phase 2, block owner → every other worker: the authoritative load
    /// sub-vector of the owner's contiguous block range.
    LoadVector {
        /// First block of the range.
        start: BlockId,
        /// Authoritative loads for `start..start + weights.len()`.
        weights: Vec<NodeWeight>,
    },
}

struct Envelope {
    from: usize,
    to: usize,
    msg: Message,
}

/// Per-run message statistics of the sharded engine, reported through
/// [`PartitionReport`](crate::PartitionReport).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shard workers.
    pub shards: usize,
    /// Synchronization rounds executed (across all passes).
    pub rounds: u64,
    /// Messages sent by each shard, indexed by shard.
    pub messages_sent: Vec<u64>,
    /// Messages received by each shard, indexed by shard.
    pub messages_received: Vec<u64>,
    /// Load reconciliation messages (deltas plus gossiped sub-vectors).
    pub load_messages: u64,
    /// Assignment broadcast messages.
    pub assignment_messages: u64,
    /// FNV-1a hash over the full delivery-ordered message log. Two runs
    /// with the same seed must agree bit-for-bit.
    pub log_hash: u64,
}

impl ShardStats {
    fn new(shards: usize) -> Self {
        ShardStats {
            shards,
            rounds: 0,
            messages_sent: vec![0; shards],
            messages_received: vec![0; shards],
            load_messages: 0,
            assignment_messages: 0,
            log_hash: FNV_OFFSET,
        }
    }

    /// Total messages exchanged over the run.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent.iter().sum()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

#[inline]
fn fnv_fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

// ---------------------------------------------------------------------------
// Round buffer and shard workers
// ---------------------------------------------------------------------------

/// One buffered stream node: an index into the buffer's flattened neighbor
/// and edge-weight arenas.
struct BufNode {
    node: NodeId,
    weight: NodeWeight,
    start: usize,
    len: usize,
    /// Whether the source stream carried explicit edge weights for this
    /// node (an empty `edge_weights` slice means unweighted).
    weighted: bool,
}

/// SoA buffer holding one round of stream nodes; reused across rounds.
#[derive(Default)]
struct RoundBuffer {
    nodes: Vec<BufNode>,
    neighbors: Vec<NodeId>,
    edge_weights: Vec<EdgeWeight>,
}

impl RoundBuffer {
    fn push(&mut self, node: StreamedNode<'_>) {
        let start = self.neighbors.len();
        self.neighbors.extend_from_slice(node.neighbors);
        let weighted = !node.edge_weights.is_empty();
        if weighted {
            self.edge_weights.extend_from_slice(node.edge_weights);
        }
        self.nodes.push(BufNode {
            node: node.node,
            weight: node.weight,
            start,
            len: node.neighbors.len(),
            weighted,
        });
    }

    /// Reconstructs the borrowed view the sinks consume.
    fn streamed(&self, i: usize) -> StreamedNode<'_> {
        let b = &self.nodes[i];
        StreamedNode {
            node: b.node,
            weight: b.weight,
            neighbors: &self.neighbors[b.start..b.start + b.len],
            edge_weights: if b.weighted {
                &self.edge_weights[b.start..b.start + b.len]
            } else {
                &[]
            },
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.neighbors.clear();
        self.edge_weights.clear();
    }
}

/// One assignment made by a worker within a round, pending exchange.
struct Move {
    node: NodeId,
    weight: NodeWeight,
    old: BlockId,
    new: BlockId,
}

/// A shard worker: a full replica of the scoring state plus the moves of
/// the current round, pending exchange.
struct ShardWorker {
    state: FlatState,
    moves: Vec<Move>,
}

impl ShardWorker {
    /// Greedily assigns `range` of the round buffer against this worker's
    /// replica, recording each move for the exchange phase.
    fn run_chunk(&mut self, buffer: &RoundBuffer, range: Range<usize>, restreaming: bool) {
        for i in range {
            let node = buffer.streamed(i);
            let old = self.state.assignments[node.node as usize];
            if restreaming {
                self.state.unassign(node.node, node.weight);
            }
            self.state.assign(node);
            let new = self.state.assignments[node.node as usize];
            self.moves.push(Move {
                node: node.node,
                weight: node.weight,
                old,
                new,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// The sharded sink
// ---------------------------------------------------------------------------

/// [`NodeSink`] implementing the S-way bulk-synchronous round loop. Plugs
/// into [`BatchExecutor::run_restream`] like any other sink, so multi-pass
/// restreaming, convergence tracking and the revert guard all apply
/// unchanged.
pub(crate) struct ShardedSink {
    workers: Vec<ShardWorker>,
    /// Contiguous owned block range per shard.
    block_ranges: Vec<Range<usize>>,
    /// Owning shard of each block.
    owner_of_block: Vec<u32>,
    buffer: RoundBuffer,
    round_nodes: usize,
    seed: u64,
    pass: usize,
    restreaming: bool,
    stats: ShardStats,
}

impl ShardedSink {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        k: u32,
        shards: usize,
        n: usize,
        m: usize,
        total_weight: NodeWeight,
        config: OnePassConfig,
        objective: FlatObjective,
        round_nodes: usize,
    ) -> Self {
        debug_assert!(shards >= 1);
        let workers = (0..shards)
            .map(|_| ShardWorker {
                state: FlatState::with_counts(k, n, m, total_weight, config, objective),
                moves: Vec::new(),
            })
            .collect();
        let block_ranges: Vec<Range<usize>> = (0..shards)
            .map(|s| (s * k as usize) / shards..((s + 1) * k as usize) / shards)
            .collect();
        let mut owner_of_block = vec![0u32; k as usize];
        for (s, range) in block_ranges.iter().enumerate() {
            for b in range.clone() {
                owner_of_block[b] = s as u32;
            }
        }
        ShardedSink {
            workers,
            block_ranges,
            owner_of_block,
            buffer: RoundBuffer::default(),
            round_nodes: round_nodes.max(1).min(auto_round_nodes(n, k, shards)),
            seed: config.seed,
            pass: 0,
            restreaming: false,
            stats: ShardStats::new(shards),
        }
    }

    pub(crate) fn stats(&self) -> &ShardStats {
        &self.stats
    }

    pub(crate) fn into_partition(mut self, k: u32) -> Partition {
        self.workers.remove(0).state.into_partition(k)
    }

    /// Assigns the buffered round — each worker its contiguous slice — and
    /// reconciles the replicas through the two-phase exchange.
    fn flush_round(&mut self) {
        if self.buffer.nodes.is_empty() {
            return;
        }
        let shards = self.workers.len();
        let round_nodes = self.round_nodes;
        let restreaming = self.restreaming;
        let buffer = &self.buffer;
        if shards == 1 {
            // Fast path: no threads, no messages. The replay below is
            // exactly the classic sequential engine.
            self.workers[0].run_chunk(buffer, 0..buffer.nodes.len(), restreaming);
        } else {
            crate::executor::build_pool(shards).install(|| {
                self.workers
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(s, worker)| {
                        let lo = (s * round_nodes).min(buffer.nodes.len());
                        let hi = ((s + 1) * round_nodes).min(buffer.nodes.len());
                        worker.run_chunk(buffer, lo..hi, restreaming);
                    });
            });
        }
        let before = self.stats.total_messages();
        self.exchange();
        let messages = self.stats.total_messages() - before;
        oms_obs::observe(Event::ShardRound {
            round: self.stats.rounds,
            messages,
        });
        oms_obs::hist_record(HistId::ShardRoundMessages, messages);
        self.stats.rounds += 1;
        self.buffer.clear();
    }

    /// The two-phase message exchange reconciling all replicas after a
    /// round. See the module docs for the protocol.
    fn exchange(&mut self) {
        let shards = self.workers.len();
        if shards == 1 {
            self.workers[0].moves.clear();
            return;
        }

        // Phase 1: per-owner load deltas plus assignment broadcasts.
        let mut envelopes: Vec<Envelope> = Vec::new();
        for s in 0..shards {
            // Net per-block load change of this worker's slice; BTreeMap
            // iteration gives a deterministic emission order.
            let mut deltas: BTreeMap<BlockId, i64> = BTreeMap::new();
            for mv in &self.workers[s].moves {
                if mv.old != UNASSIGNED {
                    *deltas.entry(mv.old).or_insert(0) -= mv.weight as i64;
                }
                if mv.new != UNASSIGNED {
                    *deltas.entry(mv.new).or_insert(0) += mv.weight as i64;
                }
            }
            for (&block, &delta) in &deltas {
                let owner = self.owner_of_block[block as usize] as usize;
                if delta != 0 && owner != s {
                    envelopes.push(Envelope {
                        from: s,
                        to: owner,
                        msg: Message::LoadDelta { block, delta },
                    });
                }
            }
            for mv in &self.workers[s].moves {
                if mv.new == UNASSIGNED {
                    continue;
                }
                for t in 0..shards {
                    if t != s {
                        envelopes.push(Envelope {
                            from: s,
                            to: t,
                            msg: Message::Assign {
                                node: mv.node,
                                weight: mv.weight,
                                block: mv.new,
                            },
                        });
                    }
                }
            }
        }
        let phase1_messages = envelopes.len() as u64;
        self.deliver(envelopes, 1);
        oms_obs::observe(Event::ExchangePhase {
            round: self.stats.rounds,
            phase: 1,
            messages: phase1_messages,
        });

        // Phase 2: owners gossip their now-authoritative sub-vectors.
        let mut envelopes: Vec<Envelope> = Vec::new();
        for s in 0..shards {
            let range = self.block_ranges[s].clone();
            if range.is_empty() {
                continue;
            }
            let weights = self.workers[s].state.block_weights[range.clone()].to_vec();
            for t in 0..shards {
                if t != s {
                    envelopes.push(Envelope {
                        from: s,
                        to: t,
                        msg: Message::LoadVector {
                            start: range.start as BlockId,
                            weights: weights.clone(),
                        },
                    });
                }
            }
        }
        let phase2_messages = envelopes.len() as u64;
        self.deliver(envelopes, 2);
        oms_obs::observe(Event::ExchangePhase {
            round: self.stats.rounds,
            phase: 2,
            messages: phase2_messages,
        });

        for worker in &mut self.workers {
            worker.moves.clear();
        }
    }

    /// Shuffles one phase's envelopes into the seeded delivery order, then
    /// applies each to its recipient while folding it into the stats and
    /// the log hash.
    fn deliver(&mut self, mut envelopes: Vec<Envelope>, phase: u64) {
        let mut rng = SplitMix64::for_phase(self.seed, self.pass as u64, self.stats.rounds, phase);
        shuffle(&mut envelopes, &mut rng);
        for env in envelopes {
            self.record(&env, phase);
            let state = &mut self.workers[env.to].state;
            match env.msg {
                Message::LoadDelta { block, delta } => {
                    let current = state.block_weights[block as usize] as i64;
                    let next = current + delta;
                    // Every unassigned weight was part of the round-start
                    // load, so no partial sum of deltas can drive a block
                    // negative.
                    debug_assert!(next >= 0, "load delta drove block {block} negative");
                    state.set_block_weight(block as usize, next.max(0) as NodeWeight);
                }
                Message::Assign {
                    node,
                    weight,
                    block,
                } => {
                    state.assignments[node as usize] = block;
                    state.node_weights[node as usize] = weight;
                }
                Message::LoadVector { start, weights } => {
                    for (i, &w) in weights.iter().enumerate() {
                        state.set_block_weight(start as usize + i, w);
                    }
                }
            }
        }
    }

    fn record(&mut self, env: &Envelope, phase: u64) {
        self.stats.messages_sent[env.from] += 1;
        self.stats.messages_received[env.to] += 1;
        let mut h = self.stats.log_hash;
        for word in [phase, env.from as u64, env.to as u64] {
            h = fnv_fold(h, word);
        }
        match &env.msg {
            Message::LoadDelta { block, delta } => {
                self.stats.load_messages += 1;
                h = fnv_fold(h, 1);
                h = fnv_fold(h, *block as u64);
                h = fnv_fold(h, *delta as u64);
            }
            Message::Assign {
                node,
                weight,
                block,
            } => {
                self.stats.assignment_messages += 1;
                h = fnv_fold(h, 2);
                h = fnv_fold(h, *node as u64);
                h = fnv_fold(h, *weight);
                h = fnv_fold(h, *block as u64);
            }
            Message::LoadVector { start, weights } => {
                self.stats.load_messages += 1;
                h = fnv_fold(h, 3);
                h = fnv_fold(h, *start as u64);
                h = fnv_fold(h, weights.len() as u64);
                for &w in weights {
                    h = fnv_fold(h, w);
                }
            }
        }
        self.stats.log_hash = h;
    }
}

impl NodeSink for ShardedSink {
    fn begin_pass(&mut self, pass: usize) {
        debug_assert!(self.buffer.nodes.is_empty());
        self.pass = pass;
        self.restreaming = pass > 0;
    }

    fn process(&mut self, node: StreamedNode<'_>) {
        self.buffer.push(node);
        if self.buffer.nodes.len() >= self.workers.len() * self.round_nodes {
            self.flush_round();
        }
    }

    fn end_pass(&mut self, _pass: usize) {
        self.flush_round();
        // Worker replicas score on pool threads where no observer is
        // installed, so their hot tallies are drained here on the driver
        // thread instead of flushed in place.
        let (mut scored, mut fast_path) = (0u64, 0u64);
        for worker in &mut self.workers {
            let (s, f) = worker.state.take_hot_counters();
            scored += s;
            fast_path += f;
        }
        oms_obs::counter_add(CounterId::NodesScored, scored);
        oms_obs::counter_add(CounterId::DegLe2FastPath, fast_path);
    }

    fn assignments(&self) -> Option<&[BlockId]> {
        // All replicas agree between rounds; replica 0 speaks for the run.
        Some(&self.workers[0].state.assignments)
    }

    fn num_blocks(&self) -> u32 {
        self.workers[0].state.block_weights.len() as u32
    }

    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        // The revert guard rewinds *every* replica; each rebuilds its block
        // weights from its (complete) node weights.
        for worker in &mut self.workers {
            worker.state.restore(assignments);
        }
        true
    }
}

// ---------------------------------------------------------------------------
// The public partitioner
// ---------------------------------------------------------------------------

/// Sharded flat partitioner: Fennel or LDG driven through the S-way
/// bulk-synchronous engine.
///
/// With `shards == 1` the run is byte-identical to the classic sequential
/// engine ([`Fennel`](crate::Fennel), [`Ldg`](crate::Ldg), and their
/// restreaming wrappers); with `shards > 1` the assignment quality stays
/// within the golden bounds while the message log — hash, counts, delivery
/// order — is a pure function of the seed.
pub struct ShardedFlat {
    k: u32,
    config: OnePassConfig,
    objective: FlatObjective,
    shards: usize,
    passes: usize,
    convergence: f64,
    round_nodes: usize,
    last_stats: Mutex<Option<ShardStats>>,
}

impl ShardedFlat {
    /// Creates a sharded partitioner with `shards` workers.
    pub fn new(k: u32, config: OnePassConfig, objective: FlatObjective, shards: usize) -> Self {
        ShardedFlat {
            k,
            config,
            objective,
            shards,
            passes: 1,
            convergence: 0.0,
            round_nodes: DEFAULT_ROUND_NODES,
            last_stats: Mutex::new(None),
        }
    }

    /// Sets the number of restreaming passes (default 1).
    pub fn passes(mut self, passes: usize) -> Self {
        self.passes = passes;
        self
    }

    /// Sets the convergence threshold of multi-pass runs (default 0).
    pub fn convergence(mut self, convergence: f64) -> Self {
        self.convergence = convergence;
        self
    }

    /// Sets the per-shard round size (default [`DEFAULT_ROUND_NODES`]).
    /// Mostly a testing knob: smaller rounds force more exchanges.
    pub fn round_nodes(mut self, round_nodes: usize) -> Self {
        self.round_nodes = round_nodes.max(1);
        self
    }

    /// Message statistics of the most recent run, if any.
    pub fn last_stats(&self) -> Option<ShardStats> {
        self.last_stats.lock().unwrap().clone()
    }

    fn run_engine(
        &self,
        stream: &mut dyn NodeStream,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        if self.shards == 0 {
            return Err(PartitionError::InvalidConfig(
                "sharded engine needs at least one shard".into(),
            ));
        }
        if self.passes == 0 {
            return Err(PartitionError::InvalidConfig(
                "restreaming needs at least one pass".into(),
            ));
        }
        let mut sink = ShardedSink::new(
            self.k,
            self.shards,
            stream.num_nodes(),
            stream.num_edges(),
            stream.total_node_weight(),
            self.config,
            self.objective,
            self.round_nodes,
        );
        let executor = BatchExecutor::default();
        let opts = crate::restream::options(self.passes, self.convergence, tracked);
        let trajectory = executor.run_restream(stream, &mut sink, &opts)?;
        let stats = sink.stats();
        oms_obs::observe(Event::ShardSummary {
            shards: stats.shards as u32,
            rounds: stats.rounds,
            messages: stats.total_messages(),
            load_messages: stats.load_messages,
            assignment_messages: stats.assignment_messages,
            log_hash: stats.log_hash,
        });
        oms_obs::counter_add(CounterId::ShardRounds, stats.rounds);
        oms_obs::counter_add(CounterId::ShardMessages, stats.total_messages());
        oms_obs::counter_add(CounterId::ShardLoadMessages, stats.load_messages);
        oms_obs::counter_add(
            CounterId::ShardAssignmentMessages,
            stats.assignment_messages,
        );
        *self.last_stats.lock().unwrap() = Some(sink.stats().clone());
        Ok((sink.into_partition(self.k), trajectory))
    }
}

impl crate::api::Partitioner for ShardedFlat {
    fn name(&self) -> String {
        match self.objective {
            FlatObjective::Fennel => "fennel".to_string(),
            FlatObjective::Ldg => "ldg".to_string(),
        }
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        self.run_engine(stream, false).map(|(p, _)| p)
    }

    fn partition_tracked(
        &self,
        stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        self.run_engine(stream, true)
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        self.last_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Partitioner;
    use crate::onepass::{Fennel, Ldg, StreamingPartitioner};
    use crate::restream::{ReFennel, ReLdg};
    use oms_graph::{CsrGraph, InMemoryStream};

    fn test_graph() -> CsrGraph {
        // A graph big enough for several rounds at tiny round sizes:
        // a ring with chords.
        let n = 300u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push((v, (v + 1) % n));
            if v % 7 == 0 {
                edges.push((v, (v + n / 2) % n));
            }
        }
        CsrGraph::from_edges(n as usize, &edges).unwrap()
    }

    #[test]
    fn one_shard_matches_sequential_fennel_and_ldg() {
        let g = test_graph();
        let config = OnePassConfig::default();
        for (objective, classic) in [
            (
                FlatObjective::Fennel,
                Fennel::new(8, config).partition_stream(&mut InMemoryStream::new(&g)),
            ),
            (
                FlatObjective::Ldg,
                Ldg::new(8, config).partition_stream(&mut InMemoryStream::new(&g)),
            ),
        ] {
            let classic = classic.unwrap();
            let sharded = ShardedFlat::new(8, config, objective, 1)
                .partition(&mut InMemoryStream::new(&g))
                .unwrap();
            assert_eq!(
                classic.assignments(),
                sharded.assignments(),
                "{objective:?} S=1 must be byte-identical"
            );
        }
    }

    #[test]
    fn one_shard_matches_restreaming() {
        let g = test_graph();
        let config = OnePassConfig::default();
        let classic = ReFennel::new(8, config, 4)
            .partition_stream(&mut InMemoryStream::new(&g))
            .unwrap();
        let sharded = ShardedFlat::new(8, config, FlatObjective::Fennel, 1)
            .passes(4)
            .partition(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(classic.assignments(), sharded.assignments());

        let classic = ReLdg::new(8, config, 3)
            .partition_stream(&mut InMemoryStream::new(&g))
            .unwrap();
        let sharded = ShardedFlat::new(8, config, FlatObjective::Ldg, 1)
            .passes(3)
            .partition(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(classic.assignments(), sharded.assignments());
    }

    #[test]
    fn one_shard_run_exchanges_no_messages() {
        let g = test_graph();
        let p = ShardedFlat::new(8, OnePassConfig::default(), FlatObjective::Fennel, 1);
        p.partition(&mut InMemoryStream::new(&g)).unwrap();
        let stats = p.last_stats().unwrap();
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.total_messages(), 0);
        assert_eq!(stats.log_hash, FNV_OFFSET);
    }

    #[test]
    fn sharded_runs_are_valid_and_deterministic() {
        let g = test_graph();
        let config = OnePassConfig::default();
        for shards in [2, 4] {
            let run = |_: usize| {
                let p = ShardedFlat::new(8, config, FlatObjective::Fennel, shards)
                    .passes(3)
                    .round_nodes(16);
                let part = p.partition(&mut InMemoryStream::new(&g)).unwrap();
                (part, p.last_stats().unwrap())
            };
            let (p1, s1) = run(0);
            let (p2, s2) = run(1);
            assert!(p1.validate(&vec![1; g.num_nodes()]));
            assert_eq!(
                p1.assignments(),
                p2.assignments(),
                "S={shards}: same seed must reproduce the partition"
            );
            assert_eq!(
                s1, s2,
                "S={shards}: same seed must reproduce the message log"
            );
            assert_eq!(s1.shards, shards);
            assert!(s1.total_messages() > 0);
            assert!(s1.rounds > 0);
            assert_eq!(
                s1.messages_sent.iter().sum::<u64>(),
                s1.messages_received.iter().sum::<u64>()
            );
            assert_eq!(
                s1.total_messages(),
                s1.load_messages + s1.assignment_messages
            );
        }
    }

    #[test]
    fn different_seeds_change_the_message_log_hash() {
        let g = test_graph();
        let hash = |seed: u64| {
            let p = ShardedFlat::new(
                8,
                OnePassConfig::default().seed(seed),
                FlatObjective::Fennel,
                2,
            )
            .round_nodes(16);
            p.partition(&mut InMemoryStream::new(&g)).unwrap();
            p.last_stats().unwrap().log_hash
        };
        assert_ne!(hash(1), hash(2));
    }

    #[test]
    fn replicas_stay_consistent_between_rounds() {
        // Drive the sink manually and check that after every exchange all
        // replicas agree on assignments, node weights, and block loads.
        let g = test_graph();
        let mut stream = InMemoryStream::new(&g);
        let mut sink = ShardedSink::new(
            8,
            4,
            stream.num_nodes(),
            stream.num_edges(),
            stream.total_node_weight(),
            OnePassConfig::default(),
            FlatObjective::Fennel,
            8,
        );
        BatchExecutor::default()
            .run(&mut stream, &mut sink)
            .unwrap();
        let reference = &sink.workers[0].state;
        for worker in &sink.workers[1..] {
            assert_eq!(reference.assignments, worker.state.assignments);
            assert_eq!(reference.node_weights, worker.state.node_weights);
            assert_eq!(reference.block_weights, worker.state.block_weights);
        }
        let total: NodeWeight = reference.block_weights.iter().sum();
        assert_eq!(total, g.num_nodes() as NodeWeight);
    }
}
