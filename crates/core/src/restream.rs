//! Restreaming extensions: ReFennel, ReLDG, ReHashing and restreamed OMS
//! ("remapping").
//!
//! Restreaming (Nishimura & Ugander) performs several passes over the same
//! stream; from the second pass on, a node's previous assignment is removed
//! before it is re-scored, so each pass can only improve on the information
//! available to the previous one. The paper lists remapping through
//! restreaming as a natural extension of OMS (§3.2); this module provides it
//! for the flat baselines and the multi-section algorithm.
//!
//! All types here are thin wrappers around the shared multi-pass engine
//! ([`BatchExecutor::run_restream`]): they plug their scoring sink into the
//! executor, which rewinds the stream between passes, records the per-pass
//! quality trajectory, stops early once the partition converges and reverts
//! a pass that worsened the edge cut. [`refine_partition`] exposes the same
//! loop as restreaming *refinement* of an existing partition, used by the
//! in-memory algorithms to support `passes > 1`.

use crate::config::{OmsConfig, OnePassConfig};
use crate::executor::{BatchExecutor, PassTrajectory, RestreamOptions};
use crate::oms::{OmsSink, OnlineMultiSection};
use crate::onepass::{FlatObjective, FlatSink, FlatState, HashingSink, StreamingPartitioner};
use crate::partition::{Partition, UNASSIGNED};
use crate::{PartitionError, Result};
use oms_graph::NodeStream;

fn check_passes(passes: usize) -> Result<()> {
    if passes == 0 {
        Err(PartitionError::InvalidConfig(
            "restreaming needs at least one pass".into(),
        ))
    } else {
        Ok(())
    }
}

/// The engine options for `passes` passes with convergence threshold
/// `convergence`. Multi-pass runs are always quality-tracked so that the
/// early exit and the revert guard apply no matter how the caller obtains
/// the partition; a single pass only pays for tracking when the caller asked
/// for the trajectory.
pub(crate) fn options(passes: usize, convergence: f64, tracked: bool) -> RestreamOptions {
    if passes > 1 || tracked {
        RestreamOptions::tracked(passes, convergence)
    } else {
        RestreamOptions::fixed(passes)
    }
}

/// Restreaming Fennel (ReFennel): up to `passes` passes of the Fennel
/// objective, unassigning each node before re-scoring it.
#[derive(Clone, Copy, Debug)]
pub struct ReFennel {
    k: u32,
    config: OnePassConfig,
    passes: usize,
    convergence: f64,
}

impl ReFennel {
    /// Creates a ReFennel partitioner running up to `passes` passes.
    pub fn new(k: u32, config: OnePassConfig, passes: usize) -> Self {
        ReFennel {
            k,
            config,
            passes,
            convergence: 0.0,
        }
    }

    /// Sets the relative edge-cut improvement below which the run stops.
    pub fn convergence(mut self, min_improvement: f64) -> Self {
        self.convergence = min_improvement.max(0.0);
        self
    }

    fn run<S: NodeStream>(
        &self,
        stream: &mut S,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        check_passes(self.passes)?;
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        let mut sink = FlatSink::new(FlatState::new(
            self.k,
            stream,
            self.config,
            FlatObjective::Fennel,
        ));
        let trajectory = BatchExecutor::default().run_restream(
            stream,
            &mut sink,
            &options(self.passes, self.convergence, tracked),
        )?;
        Ok((sink.into_partition(self.k), trajectory))
    }
}

impl StreamingPartitioner for ReFennel {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        Ok(self.run(stream, false)?.0)
    }

    fn partition_stream_tracked<S: NodeStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Partition, PassTrajectory)> {
        self.run(stream, true)
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "refennel"
    }
}

/// Restreaming LDG (ReLDG).
#[derive(Clone, Copy, Debug)]
pub struct ReLdg {
    k: u32,
    config: OnePassConfig,
    passes: usize,
    convergence: f64,
}

impl ReLdg {
    /// Creates a ReLDG partitioner running up to `passes` passes.
    pub fn new(k: u32, config: OnePassConfig, passes: usize) -> Self {
        ReLdg {
            k,
            config,
            passes,
            convergence: 0.0,
        }
    }

    /// Sets the relative edge-cut improvement below which the run stops.
    pub fn convergence(mut self, min_improvement: f64) -> Self {
        self.convergence = min_improvement.max(0.0);
        self
    }

    fn run<S: NodeStream>(
        &self,
        stream: &mut S,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        check_passes(self.passes)?;
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        let mut sink = FlatSink::new(FlatState::new(
            self.k,
            stream,
            self.config,
            FlatObjective::Ldg,
        ));
        let trajectory = BatchExecutor::default().run_restream(
            stream,
            &mut sink,
            &options(self.passes, self.convergence, tracked),
        )?;
        Ok((sink.into_partition(self.k), trajectory))
    }
}

impl StreamingPartitioner for ReLdg {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        Ok(self.run(stream, false)?.0)
    }

    fn partition_stream_tracked<S: NodeStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Partition, PassTrajectory)> {
        self.run(stream, true)
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "reldg"
    }
}

/// Restreaming Hashing: provided for registry uniformity (`passes=N` works
/// for every algorithm). The hash of a node never changes, so the second
/// pass moves nothing and the engine's fixed-point exit fires immediately.
#[derive(Clone, Copy, Debug)]
pub struct ReHashing {
    k: u32,
    config: OnePassConfig,
    passes: usize,
    convergence: f64,
}

impl ReHashing {
    /// Creates a restreamed Hashing partitioner running up to `passes`
    /// passes.
    pub fn new(k: u32, config: OnePassConfig, passes: usize) -> Self {
        ReHashing {
            k,
            config,
            passes,
            convergence: 0.0,
        }
    }

    /// Sets the relative edge-cut improvement below which the run stops.
    pub fn convergence(mut self, min_improvement: f64) -> Self {
        self.convergence = min_improvement.max(0.0);
        self
    }

    fn run<S: NodeStream>(
        &self,
        stream: &mut S,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        check_passes(self.passes)?;
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        let n = stream.num_nodes();
        let mut sink = HashingSink {
            assignments: vec![UNASSIGNED; n],
            node_weights: vec![0; n],
            k: self.k as u64,
            seed: self.config.seed,
        };
        let trajectory = BatchExecutor::default().run_restream(
            stream,
            &mut sink,
            &options(self.passes, self.convergence, tracked),
        )?;
        Ok((
            Partition::from_assignments(self.k, sink.assignments, &sink.node_weights),
            trajectory,
        ))
    }
}

impl StreamingPartitioner for ReHashing {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        Ok(self.run(stream, false)?.0)
    }

    fn partition_stream_tracked<S: NodeStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Partition, PassTrajectory)> {
        self.run(stream, true)
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "rehashing"
    }
}

/// Restreamed online multi-section: iteratively improves a hierarchical
/// partition / process mapping by re-running the multi-section descent.
#[derive(Clone, Debug)]
pub struct ReOms {
    oms: OnlineMultiSection,
    passes: usize,
    convergence: f64,
}

impl ReOms {
    /// Wraps an [`OnlineMultiSection`] instance for up to `passes`
    /// restreaming passes.
    pub fn new(oms: OnlineMultiSection, passes: usize) -> Self {
        ReOms {
            oms,
            passes,
            convergence: 0.0,
        }
    }

    /// Restreamed nh-OMS for `k` blocks.
    pub fn flat(k: u32, config: OmsConfig, passes: usize) -> Result<Self> {
        Ok(ReOms {
            oms: OnlineMultiSection::flat(k, config)?,
            passes,
            convergence: 0.0,
        })
    }

    /// Sets the relative edge-cut improvement below which the run stops.
    pub fn convergence(mut self, min_improvement: f64) -> Self {
        self.convergence = min_improvement.max(0.0);
        self
    }

    fn run<S: NodeStream>(
        &self,
        stream: &mut S,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        check_passes(self.passes)?;
        let mut sink = OmsSink::new(&self.oms, stream);
        let trajectory = BatchExecutor::default().run_restream(
            stream,
            &mut sink,
            &options(self.passes, self.convergence, tracked),
        )?;
        Ok((sink.into_partition(), trajectory))
    }
}

impl StreamingPartitioner for ReOms {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        Ok(self.run(stream, false)?.0)
    }

    fn partition_stream_tracked<S: NodeStream>(
        &self,
        stream: &mut S,
    ) -> Result<(Partition, PassTrajectory)> {
        self.run(stream, true)
    }

    fn num_blocks(&self) -> u32 {
        self.oms.tree().num_blocks()
    }

    fn name(&self) -> &'static str {
        "reoms"
    }
}

/// Restreaming refinement of an existing partition.
///
/// Seeds a Fennel-scored flat sink with `seed`, then runs up to `passes`
/// unassign-and-re-score passes over the stream under the balance
/// constraint derived from `config` — the multi-pass bridge for algorithms
/// that are not themselves streaming (multilevel, rms): the seed becomes
/// pass 0 of the trajectory and the engine's guard ensures the result is
/// never worse than it. Works on any stream source (the graph is never
/// materialised here).
pub fn refine_partition(
    stream: &mut dyn NodeStream,
    seed: Partition,
    config: OnePassConfig,
    passes: usize,
    convergence: f64,
) -> Result<(Partition, PassTrajectory)> {
    check_passes(passes)?;
    let k = seed.num_blocks();
    if k == 0 {
        return Err(PartitionError::InvalidConfig("k must be positive".into()));
    }
    let mut state = FlatState::new(k, &stream, config, FlatObjective::Fennel);
    state.seed_from(seed.assignments(), seed.block_weights());
    let mut sink = FlatSink::seeded(state);
    let trajectory = BatchExecutor::default().run_restream_seeded(
        stream,
        &mut sink,
        &RestreamOptions::tracked(passes, convergence),
        Some(seed.assignments()),
    )?;
    if trajectory.num_passes() <= 1 {
        // Nothing beyond the seed was accepted (already optimal, or the
        // only refinement pass was reverted): the seed *is* the result.
        return Ok((seed, trajectory));
    }
    Ok((sink.into_partition(k), trajectory))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onepass::{Fennel, Hashing};
    use oms_gen::planted_partition;
    use oms_graph::InMemoryStream;

    #[test]
    fn refennel_with_one_pass_equals_fennel() {
        let g = planted_partition(300, 8, 0.12, 0.01, 3);
        let cfg = OnePassConfig::default();
        let once = Fennel::new(8, cfg).partition_graph(&g).unwrap();
        let re = ReFennel::new(8, cfg, 1).partition_graph(&g).unwrap();
        assert_eq!(once, re);
    }

    #[test]
    fn refennel_never_worsens_the_cut() {
        let g = planted_partition(500, 8, 0.1, 0.01, 5);
        let cfg = OnePassConfig::default();
        let once = Fennel::new(8, cfg).partition_graph(&g).unwrap();
        let re = ReFennel::new(8, cfg, 3).partition_graph(&g).unwrap();
        assert!(
            re.edge_cut(&g) <= once.edge_cut(&g),
            "restreaming should not worsen the cut: {} vs {}",
            re.edge_cut(&g),
            once.edge_cut(&g)
        );
        assert!(re.is_balanced(0.031));
    }

    #[test]
    fn reldg_multiple_passes_stay_balanced() {
        let g = planted_partition(400, 4, 0.1, 0.01, 7);
        let p = ReLdg::new(4, OnePassConfig::default(), 3)
            .partition_graph(&g)
            .unwrap();
        assert!(p.is_balanced(0.031));
        assert_eq!(p.num_nodes(), 400);
    }

    #[test]
    fn reoms_one_pass_equals_oms() {
        let g = planted_partition(300, 8, 0.12, 0.01, 9);
        let oms = OnlineMultiSection::flat(8, OmsConfig::default()).unwrap();
        let once = oms.partition_graph(&g).unwrap();
        let re = ReOms::new(oms, 1).partition_graph(&g).unwrap();
        assert_eq!(once, re);
    }

    #[test]
    fn reoms_improves_or_matches_cut() {
        let g = planted_partition(600, 16, 0.08, 0.004, 11);
        let once = OnlineMultiSection::flat(16, OmsConfig::default())
            .unwrap()
            .partition_graph(&g)
            .unwrap();
        let re = ReOms::flat(16, OmsConfig::default(), 3)
            .unwrap()
            .partition_graph(&g)
            .unwrap();
        // The engine's revert guard makes this a hard guarantee now.
        assert!(re.edge_cut(&g) <= once.edge_cut(&g));
        assert!(re.is_balanced(0.031));
    }

    #[test]
    fn rehashing_is_a_fixed_point_after_one_pass() {
        let g = planted_partition(300, 4, 0.1, 0.01, 13);
        let cfg = OnePassConfig::default().seed(5);
        let once = Hashing::new(8, cfg).partition_graph(&g).unwrap();
        let re = ReHashing::new(8, cfg, 4);
        let (p, trajectory) = re
            .partition_stream_tracked(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(once, p, "hashing never moves a node across passes");
        assert!(
            trajectory.converged,
            "the fixed-point exit must fire before the pass budget"
        );
        assert!(trajectory.num_passes() <= 2, "{trajectory:?}");
    }

    #[test]
    fn tracked_trajectories_are_non_increasing_and_balanced() {
        let g = planted_partition(500, 8, 0.1, 0.008, 17);
        let cfg = OnePassConfig::default();
        let (p, trajectory) = ReFennel::new(8, cfg, 4)
            .partition_stream_tracked(&mut InMemoryStream::new(&g))
            .unwrap();
        assert!(!trajectory.stats.is_empty());
        assert!(trajectory.is_non_increasing(), "{trajectory:?}");
        assert_eq!(
            trajectory.final_edge_cut().unwrap(),
            p.edge_cut(&g),
            "the last accepted pass is the returned partition"
        );
        // Every pass honours L_max = ceil((1+ε)·c(V)/k); the ceiling allows
        // an imbalance slightly above ε itself.
        let allowed = Partition::capacity(500, 8, 0.03) as f64 / (500.0 / 8.0) - 1.0;
        for stats in &trajectory.stats {
            assert!(stats.imbalance <= allowed + 1e-9, "{stats:?}");
        }
    }

    #[test]
    fn convergence_threshold_stops_early() {
        let g = planted_partition(500, 8, 0.1, 0.008, 19);
        let cfg = OnePassConfig::default();
        // A 100 % improvement requirement can never be met: exactly one
        // additional pass runs, then the threshold exit fires.
        let (_, trajectory) = ReFennel::new(8, cfg, 6)
            .convergence(1.0)
            .partition_stream_tracked(&mut InMemoryStream::new(&g))
            .unwrap();
        assert!(trajectory.num_passes() <= 2, "{trajectory:?}");
        assert!(trajectory.converged);
    }

    #[test]
    fn refinement_never_worsens_the_seed() {
        let g = planted_partition(400, 8, 0.1, 0.01, 23);
        let seed_partition = Hashing::new(8, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        let seed_cut = seed_partition.edge_cut(&g);
        let (refined, trajectory) = refine_partition(
            &mut InMemoryStream::new(&g),
            seed_partition,
            OnePassConfig::default(),
            3,
            0.0,
        )
        .unwrap();
        assert_eq!(trajectory.stats[0].edge_cut, seed_cut, "pass 0 = the seed");
        assert!(
            refined.edge_cut(&g) <= seed_cut,
            "refinement must not worsen the seed: {} vs {seed_cut}",
            refined.edge_cut(&g)
        );
        assert!(trajectory.is_non_increasing(), "{trajectory:?}");
    }

    #[test]
    fn zero_passes_is_rejected() {
        let g = planted_partition(100, 4, 0.1, 0.01, 13);
        assert!(ReFennel::new(4, OnePassConfig::default(), 0)
            .partition_graph(&g)
            .is_err());
        assert!(ReLdg::new(4, OnePassConfig::default(), 0)
            .partition_graph(&g)
            .is_err());
        assert!(ReHashing::new(4, OnePassConfig::default(), 0)
            .partition_graph(&g)
            .is_err());
        assert!(ReOms::flat(4, OmsConfig::default(), 0)
            .unwrap()
            .partition_graph(&g)
            .is_err());
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(
            ReFennel::new(2, OnePassConfig::default(), 2).name(),
            "refennel"
        );
        assert_eq!(ReLdg::new(2, OnePassConfig::default(), 2).name(), "reldg");
        assert_eq!(
            ReHashing::new(2, OnePassConfig::default(), 2).name(),
            "rehashing"
        );
        assert_eq!(
            ReOms::flat(2, OmsConfig::default(), 2).unwrap().name(),
            "reoms"
        );
    }
}
