//! Restreaming extensions: ReFennel, ReLDG and restreamed OMS ("remapping").
//!
//! Restreaming (Nishimura & Ugander) performs several passes over the same
//! stream; from the second pass on, a node's previous assignment is removed
//! before it is re-scored, so each pass can only improve on the information
//! available to the previous one. The paper lists remapping through
//! restreaming as a natural extension of OMS (§3.2); this module provides it
//! for both the flat baselines and the multi-section algorithm.

use crate::config::{OmsConfig, OnePassConfig};
use crate::executor::BatchExecutor;
use crate::oms::{OmsSink, OnlineMultiSection};
use crate::onepass::{fennel_objective, ldg_objective, FlatSink, FlatState, StreamingPartitioner};
use crate::partition::Partition;
use crate::{PartitionError, Result};
use oms_graph::NodeStream;

fn check_passes(passes: usize) -> Result<()> {
    if passes == 0 {
        Err(PartitionError::InvalidConfig(
            "restreaming needs at least one pass".into(),
        ))
    } else {
        Ok(())
    }
}

/// Restreaming Fennel (ReFennel): `passes` passes of the Fennel objective,
/// unassigning each node before re-scoring it.
#[derive(Clone, Copy, Debug)]
pub struct ReFennel {
    k: u32,
    config: OnePassConfig,
    passes: usize,
}

impl ReFennel {
    /// Creates a ReFennel partitioner running `passes` passes.
    pub fn new(k: u32, config: OnePassConfig, passes: usize) -> Self {
        ReFennel { k, config, passes }
    }
}

impl StreamingPartitioner for ReFennel {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_passes(self.passes)?;
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        let mut sink = FlatSink::new(
            FlatState::new(self.k, stream, self.config),
            fennel_objective,
        );
        BatchExecutor::default().run_passes(stream, &mut sink, self.passes)?;
        Ok(sink.into_partition(self.k))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "refennel"
    }
}

/// Restreaming LDG (ReLDG).
#[derive(Clone, Copy, Debug)]
pub struct ReLdg {
    k: u32,
    config: OnePassConfig,
    passes: usize,
}

impl ReLdg {
    /// Creates a ReLDG partitioner running `passes` passes.
    pub fn new(k: u32, config: OnePassConfig, passes: usize) -> Self {
        ReLdg { k, config, passes }
    }
}

impl StreamingPartitioner for ReLdg {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_passes(self.passes)?;
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig("k must be positive".into()));
        }
        let mut sink = FlatSink::new(FlatState::new(self.k, stream, self.config), ldg_objective);
        BatchExecutor::default().run_passes(stream, &mut sink, self.passes)?;
        Ok(sink.into_partition(self.k))
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn name(&self) -> &'static str {
        "reldg"
    }
}

/// Restreamed online multi-section: iteratively improves a hierarchical
/// partition / process mapping by re-running the multi-section descent.
#[derive(Clone, Debug)]
pub struct ReOms {
    oms: OnlineMultiSection,
    passes: usize,
}

impl ReOms {
    /// Wraps an [`OnlineMultiSection`] instance for `passes` restreaming
    /// passes.
    pub fn new(oms: OnlineMultiSection, passes: usize) -> Self {
        ReOms { oms, passes }
    }

    /// Restreamed nh-OMS for `k` blocks.
    pub fn flat(k: u32, config: OmsConfig, passes: usize) -> Result<Self> {
        Ok(ReOms {
            oms: OnlineMultiSection::flat(k, config)?,
            passes,
        })
    }
}

impl StreamingPartitioner for ReOms {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        check_passes(self.passes)?;
        let mut sink = OmsSink::new(&self.oms, stream);
        BatchExecutor::default().run_passes(stream, &mut sink, self.passes)?;
        Ok(sink.into_partition())
    }

    fn num_blocks(&self) -> u32 {
        self.oms.tree().num_blocks()
    }

    fn name(&self) -> &'static str {
        "reoms"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onepass::Fennel;
    use oms_gen::planted_partition;

    #[test]
    fn refennel_with_one_pass_equals_fennel() {
        let g = planted_partition(300, 8, 0.12, 0.01, 3);
        let cfg = OnePassConfig::default();
        let once = Fennel::new(8, cfg).partition_graph(&g).unwrap();
        let re = ReFennel::new(8, cfg, 1).partition_graph(&g).unwrap();
        assert_eq!(once, re);
    }

    #[test]
    fn refennel_never_hurts_much_and_usually_improves() {
        let g = planted_partition(500, 8, 0.1, 0.01, 5);
        let cfg = OnePassConfig::default();
        let once = Fennel::new(8, cfg).partition_graph(&g).unwrap();
        let re = ReFennel::new(8, cfg, 3).partition_graph(&g).unwrap();
        assert!(
            re.edge_cut(&g) <= once.edge_cut(&g),
            "restreaming should not worsen the cut: {} vs {}",
            re.edge_cut(&g),
            once.edge_cut(&g)
        );
        assert!(re.is_balanced(0.031));
    }

    #[test]
    fn reldg_multiple_passes_stay_balanced() {
        let g = planted_partition(400, 4, 0.1, 0.01, 7);
        let p = ReLdg::new(4, OnePassConfig::default(), 3)
            .partition_graph(&g)
            .unwrap();
        assert!(p.is_balanced(0.031));
        assert_eq!(p.num_nodes(), 400);
    }

    #[test]
    fn reoms_one_pass_equals_oms() {
        let g = planted_partition(300, 8, 0.12, 0.01, 9);
        let oms = OnlineMultiSection::flat(8, OmsConfig::default()).unwrap();
        let once = oms.partition_graph(&g).unwrap();
        let re = ReOms::new(oms, 1).partition_graph(&g).unwrap();
        assert_eq!(once, re);
    }

    #[test]
    fn reoms_improves_or_matches_cut() {
        let g = planted_partition(600, 16, 0.08, 0.004, 11);
        let once = OnlineMultiSection::flat(16, OmsConfig::default())
            .unwrap()
            .partition_graph(&g)
            .unwrap();
        let re = ReOms::flat(16, OmsConfig::default(), 3)
            .unwrap()
            .partition_graph(&g)
            .unwrap();
        assert!(re.edge_cut(&g) <= once.edge_cut(&g) + 5);
        assert!(re.is_balanced(0.031));
    }

    #[test]
    fn zero_passes_is_rejected() {
        let g = planted_partition(100, 4, 0.1, 0.01, 13);
        assert!(ReFennel::new(4, OnePassConfig::default(), 0)
            .partition_graph(&g)
            .is_err());
        assert!(ReLdg::new(4, OnePassConfig::default(), 0)
            .partition_graph(&g)
            .is_err());
        assert!(ReOms::flat(4, OmsConfig::default(), 0)
            .unwrap()
            .partition_graph(&g)
            .is_err());
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(
            ReFennel::new(2, OnePassConfig::default(), 2).name(),
            "refennel"
        );
        assert_eq!(ReLdg::new(2, OnePassConfig::default(), 2).name(), "reldg");
        assert_eq!(
            ReOms::flat(2, OmsConfig::default(), 2).unwrap().name(),
            "reoms"
        );
    }
}
