//! # oms-core
//!
//! The heart of the reproduction: **online recursive multi-section** (OMS),
//! a one-pass streaming algorithm that computes hierarchical graph
//! partitionings and process mappings on the fly, plus the one-pass
//! state-of-the-art baselines it is compared against (Fennel, LDG, Hashing).
//!
//! ## Streaming partitioning in one pass
//!
//! All algorithms in this crate follow the one-pass model: a node arrives
//! together with its adjacency list and is immediately and permanently
//! assigned to a block. The only global quantities available are `n`, `m`
//! and the total node weight.
//!
//! * [`Hashing`], [`Ldg`] and [`Fennel`] are the flat `k`-way baselines
//!   (§2.2 of the paper).
//! * [`OnlineMultiSection`] is the paper's contribution (§3): each node is
//!   routed down a *multi-section tree* — either the communication hierarchy
//!   `S = a1:a2:…:aℓ` (process mapping, "OMS") or an artificial recursive
//!   `b`-section tree for arbitrary `k` (plain partitioning, "nh-OMS").
//! * [`executor`] is the single drive loop behind all of them: the
//!   [`BatchExecutor`] pulls [`NodeBatch`](oms_graph::NodeBatch)es from any
//!   stream (overlapping disk ingest with scoring) and dispatches them
//!   sequentially to a [`NodeSink`], in parallel over edge-mass-balanced
//!   chunks, or batch-wise to buffered algorithms.
//! * [`parallel`] contains the shared-memory parallel scoring kernels
//!   (§3.4), driven through the executor's parallel dispatch with atomic
//!   block-weight updates.
//! * [`restream`] contains the multi-pass restreaming extensions (ReFennel /
//!   ReLDG style, §3.2), all thin wrappers around the executor's multi-pass
//!   engine: the stream is rewound between passes, a per-pass quality
//!   trajectory is recorded, runs stop early on convergence, and a pass
//!   that worsened the cut is reverted. [`refine_partition`] reuses the
//!   same loop to refine partitions of non-streaming algorithms.
//! * [`api`] is the unified entry point: an object-safe [`Partitioner`]
//!   trait, the [`JobSpec`] string format + factory (including the `buf=`
//!   key of the buffered algorithms contributed by `oms-multilevel`), and
//!   the shared dispatch registry every frontend resolves algorithms
//!   against.
//!
//! ## Quick example
//!
//! Any algorithm can be selected, configured and run from one job string:
//!
//! ```
//! use oms_core::JobSpec;
//! use oms_graph::{CsrGraph, InMemoryStream};
//!
//! let graph = CsrGraph::from_edges(8, &[
//!     (0, 1), (1, 2), (2, 3), (3, 0),      // one community
//!     (4, 5), (5, 6), (6, 7), (7, 4),      // another community
//!     (0, 4),                              // a single bridge
//! ]).unwrap();
//! // OMS on a 2×2 hierarchy (k = 4 PEs), with the mapping objective J.
//! let job: JobSpec = "oms:2:2@dist=1:10".parse().unwrap();
//! let report = job.build().unwrap()
//!     .run(&mut InMemoryStream::new(&graph)).unwrap();
//! assert_eq!(report.partition.num_blocks(), 4);
//! assert_eq!(report.partition.assignments().len(), 8);
//! assert!(report.mapping_cost.unwrap() >= report.edge_cut);
//! ```
//!
//! The concrete types remain available for compile-time dispatch:
//!
//! ```
//! use oms_core::{OnlineMultiSection, OmsConfig, HierarchySpec, StreamingPartitioner};
//! # use oms_graph::{CsrGraph, InMemoryStream};
//! # let graph = CsrGraph::from_edges(2, &[(0, 1)]).unwrap();
//! let hierarchy = HierarchySpec::parse("2:2").unwrap();   // k = 4 PEs
//! let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
//! let partition = oms.partition_stream(&mut InMemoryStream::new(&graph)).unwrap();
//! assert_eq!(partition.num_blocks(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod executor;
pub mod hierarchy;
pub mod mstree;
pub mod oms;
pub mod onepass;
pub mod parallel;
pub mod partition;
pub mod restream;
pub mod scorer;
pub mod shard;

pub use api::{
    find_algorithm, materialize_stream, register_algorithm, registered_algorithms, stream_edge_cut,
    AlgorithmInfo, JobShape, JobSpec, PartitionReport, Partitioner, RepairPolicy,
};
pub use config::{AlphaMode, OmsConfig, OnePassConfig, ScorerKind};
pub use executor::{
    measure_pass, BatchExecutor, NodeSink, PassStats, PassTrajectory, RestreamOptions,
};
pub use hierarchy::{DistanceSpec, HierarchySpec};
pub use mstree::MultisectionTree;
pub use oms::OnlineMultiSection;
pub use onepass::{Fennel, FlatObjective, Hashing, Ldg, RepairSink, StreamingPartitioner};
pub use partition::{BlockId, Partition, UNASSIGNED};
pub use restream::{refine_partition, ReFennel, ReHashing, ReLdg, ReOms};
pub use shard::{ShardStats, ShardedFlat};

/// Errors produced by the partitioning algorithms.
#[derive(Debug)]
pub enum PartitionError {
    /// A hierarchy or distance string could not be parsed.
    InvalidSpec(String),
    /// The requested configuration is inconsistent (e.g. `k = 0`).
    InvalidConfig(String),
    /// The underlying graph stream failed.
    Graph(oms_graph::GraphError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InvalidSpec(msg) => write!(f, "invalid specification: {msg}"),
            PartitionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PartitionError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<oms_graph::GraphError> for PartitionError {
    fn from(e: oms_graph::GraphError) -> Self {
        PartitionError::Graph(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PartitionError>;
